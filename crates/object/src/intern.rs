//! Hash-consed object interning: each structurally distinct [`Value`] is
//! stored once in a process-global [`Pool`] and addressed by a copyable
//! [`ObjRef`] id.
//!
//! The paper's **Obj** domain (Section 4) is tree-shaped, but evaluation
//! produces massively *shared* trees: every member of a powerset shares
//! all of its subtrees with other members, every round of an inflationary
//! fixpoint re-derives mostly-identical tuples, and invention (Thm 2.2 /
//! 6.1) nests the same objects ever deeper. Hash-consing turns those
//! trees into a DAG: children are interned before parents, so two values
//! are structurally equal **iff** their `ObjRef` ids are equal, and every
//! node's structural hash, size, set-depth, and active-domain fingerprint
//! are computed exactly once, at intern time.
//!
//! Ordering: [`ObjRef`]'s own derived `Ord` is *id order* (allocation
//! order) — meaningful only as an arbitrary total order for hash maps.
//! The canonical *structural* order of values (atoms < tuples < sets,
//! lexicographic — the order that defines canonical set form, trace
//! streams, and checkpoint payloads) is exposed as [`Pool::cmp_refs`],
//! which agrees bit-for-bit with `Value`'s derived `Ord` while
//! short-circuiting on id-equal subtrees. See DESIGN.md §15.
//!
//! Concurrency: the pool is sharded 16 ways by structural hash, each
//! shard behind its own `RwLock`, so `uset-par` workers intern
//! concurrently without serializing on one lock. Records are
//! append-only (`Arc`-shared), so readers hold a lock only long enough
//! to clone an `Arc`, never across recursion — no lock-order hazards.
//! Ids are deterministic *within* one interleaving but not across runs;
//! nothing observable (states, stats, traces, checkpoints) ever depends
//! on id values, only on id *equality*, which is interleaving-free.
//!
//! The layer is advisory and behavior-transparent: the `USET_INTERN`
//! knob (default **on**; `off`/`0`/`false` disables) only switches
//! constant-factor representation choices. Engines must produce
//! bit-identical states, work counters, and trace bytes either way —
//! `tests/intern_diff.rs` enforces this differentially.

use crate::atom::Atom;
use crate::flatten::Inventor;
use crate::value::Value;
use std::cell::RefCell;
use std::cmp::Ordering as CmpOrd;
use std::collections::{BTreeSet, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Shard count (must be a power of two; 16 keeps par workers at widths
/// 1–8 from serializing while keeping the array small).
const SHARD_COUNT: usize = 16;
/// Bits of an [`ObjRef`] holding the shard number.
const SHARD_BITS: u32 = 4;
/// Bits of an [`ObjRef`] holding the within-shard index.
const IDX_BITS: u32 = 32 - SHARD_BITS;
/// Mask extracting the within-shard index.
const IDX_MASK: u32 = (1 << IDX_BITS) - 1;

/// A copyable id naming one interned object in the global [`Pool`].
///
/// Equality of ids is structural equality of the objects they name.
/// The derived `Ord` is **id order** (allocation order), suitable for
/// hash/sort containers but unrelated to the canonical structural order
/// of values — use [`Pool::cmp_refs`] for that.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjRef(u32);

impl ObjRef {
    fn new(shard: usize, idx: usize) -> ObjRef {
        debug_assert!(shard < SHARD_COUNT);
        assert!(
            idx <= IDX_MASK as usize,
            "intern pool shard overflow (2^{IDX_BITS} objects)"
        );
        ObjRef(((shard as u32) << IDX_BITS) | idx as u32)
    }

    fn shard(self) -> usize {
        (self.0 >> IDX_BITS) as usize
    }

    fn idx(self) -> usize {
        (self.0 & IDX_MASK) as usize
    }

    /// The raw 32-bit id (diagnostics only; ids are process-local).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// A fast non-cryptographic hasher (FxHash-style multiply-rotate mix) —
/// the workspace has no external hash crates, and SipHash's per-probe
/// cost defeats the point of id-keyed lookups.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] — use for maps keyed on [`ObjRef`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// One mixing step of the structural hash.
#[inline]
fn mix(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// Finalizer spreading entropy into the high (shard-selecting) bits.
#[inline]
fn finalize(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// Variant seeds keeping atom/tuple/set hashes in distinct families.
const TAG_ATOM: u64 = 0x11;
const TAG_TUPLE: u64 = 0x22;
const TAG_SET: u64 = 0x33;

/// Metadata of a leaf atom node.
fn atom_meta(a: Atom) -> Meta {
    Meta {
        hash: finalize(mix(TAG_ATOM, a.id())),
        size: 1,
        depth: 0,
        adom_fp: 1u64 << (finalize(a.id()) & 63),
        invented: Inventor::is_invented(a),
    }
}

/// Cached per-node metadata, computed once at intern time.
#[derive(Clone, Copy, Debug)]
pub struct Meta {
    /// 64-bit structural hash (equal values hash equal; used for shard
    /// selection and bucket lookup).
    pub hash: u64,
    /// Structural size — the number of constructor nodes, exactly
    /// [`Value::size`].
    pub size: u64,
    /// Set-nesting depth, exactly [`Value::set_depth`] — the quantity
    /// the U031 invention-depth lint and Theorem 2.2's hierarchy bound.
    pub depth: u32,
    /// 64-bit Bloom fingerprint of the active domain: bit `mix(a) & 63`
    /// set for every atom `a` in `adom`. A clear bit proves absence; a
    /// set bit is only a maybe.
    pub adom_fp: u64,
    /// True iff the object mentions any invented surrogate atom
    /// ([`Inventor::is_invented`]) — lets the invention semantics strip
    /// and test without re-walking `adom`.
    pub invented: bool,
}

/// One interned node: children are ids, so structure is a DAG.
#[derive(PartialEq, Eq, Debug)]
enum Node {
    Atom(Atom),
    Tuple(Box<[ObjRef]>),
    /// Members in canonical *structural* order (ascending, distinct).
    Set(Box<[ObjRef]>),
}

/// An interned record: node plus its cached metadata.
#[derive(Debug)]
struct Rec {
    node: Node,
    meta: Meta,
}

#[derive(Default)]
struct ShardInner {
    /// Structural hash → candidate indices (collisions are rare; each
    /// candidate is confirmed by node equality, which is id-equality of
    /// children and therefore O(arity), never a deep walk).
    by_hash: HashMap<u64, Vec<u32>, FxBuildHasher>,
    /// Append-only record store; `Arc` so readers can drop the lock
    /// before recursing.
    recs: Vec<Arc<Rec>>,
}

#[derive(Default)]
struct Shard {
    inner: RwLock<ShardInner>,
}

/// Cumulative pool counters (process-global, monotone).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Distinct objects stored (intern misses).
    pub objects_interned: u64,
    /// Intern calls answered by an existing record.
    pub intern_hits: u64,
    /// Estimated heap bytes the hits avoided re-allocating (each hit
    /// saves roughly one node's worth of storage).
    pub bytes_shared_estimate: u64,
}

impl InternStats {
    /// Counter movement since an earlier snapshot (for per-evaluation
    /// attribution).
    pub fn delta_since(&self, earlier: &InternStats) -> InternStats {
        InternStats {
            objects_interned: self.objects_interned - earlier.objects_interned,
            intern_hits: self.intern_hits - earlier.intern_hits,
            bytes_shared_estimate: self.bytes_shared_estimate - earlier.bytes_shared_estimate,
        }
    }
}

/// The hash-consing pool. One process-global instance ([`Pool::global`])
/// is shared by every engine and every `uset-par` worker.
pub struct Pool {
    shards: [Shard; SHARD_COUNT],
    objects_interned: AtomicU64,
    intern_hits: AtomicU64,
    bytes_shared: AtomicU64,
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// `USET_INTERN` knob state: 0 = unread, 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// True iff the interning layer is switched on (`USET_INTERN`, default
/// on; `off` / `0` / `false` disable). The knob gates *representation
/// choices* (sidecars, id-keyed buckets, shared serialization) — never
/// observable behavior.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = match std::env::var("USET_INTERN") {
                Ok(v) => !matches!(
                    v.to_ascii_lowercase().as_str(),
                    "off" | "0" | "false" | "no"
                ),
                Err(_) => true,
            };
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Programmatic override of the `USET_INTERN` knob (tests and benches;
/// avoids `set_var` races under the threaded test harness).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Rough per-node heap footprint used for `bytes_shared_estimate`.
fn node_bytes(node: &Node) -> u64 {
    match node {
        Node::Atom(_) => 16,
        Node::Tuple(ch) | Node::Set(ch) => 48 + 4 * ch.len() as u64,
    }
}

/// Entries kept in the per-thread whole-value memo before it is cleared.
const MEMO_CAP: usize = 8192;

thread_local! {
    /// Per-thread memo of whole-value intern results against the global
    /// pool: `value → (id, rough bytes a re-intern would have walked)`.
    /// The pool is append-only and ids are stable for the process
    /// lifetime, so entries never go stale — the cap only bounds memory.
    /// This turns the hot "re-intern a value the engine keeps probing"
    /// case (sidecar membership tests, `fast_*` metadata reads) into one
    /// tree hash plus one equality check, with no shard locking at all.
    static MEMO: RefCell<HashMap<Value, (ObjRef, u64), FxBuildHasher>> =
        RefCell::new(HashMap::default());
}

impl Pool {
    fn new() -> Pool {
        Pool {
            shards: Default::default(),
            objects_interned: AtomicU64::new(0),
            intern_hits: AtomicU64::new(0),
            bytes_shared: AtomicU64::new(0),
        }
    }

    /// The process-global pool.
    pub fn global() -> &'static Pool {
        GLOBAL.get_or_init(Pool::new)
    }

    /// Current cumulative counters.
    pub fn stats(&self) -> InternStats {
        InternStats {
            objects_interned: self.objects_interned.load(Ordering::Relaxed),
            intern_hits: self.intern_hits.load(Ordering::Relaxed),
            bytes_shared_estimate: self.bytes_shared.load(Ordering::Relaxed),
        }
    }

    fn rec(&self, r: ObjRef) -> Arc<Rec> {
        let guard = self.shards[r.shard()]
            .inner
            .read()
            .expect("pool shard poisoned");
        Arc::clone(&guard.recs[r.idx()])
    }

    /// The cached metadata of an interned object.
    pub fn meta(&self, r: ObjRef) -> Meta {
        self.rec(r).meta
    }

    /// Store (or find) a node with precomputed metadata.
    fn intern_node(&self, node: Node, meta: Meta) -> ObjRef {
        let shard_no = (meta.hash >> (64 - SHARD_BITS)) as usize & (SHARD_COUNT - 1);
        let shard = &self.shards[shard_no];
        {
            let guard = shard.inner.read().expect("pool shard poisoned");
            if let Some(ids) = guard.by_hash.get(&meta.hash) {
                for &i in ids {
                    if guard.recs[i as usize].node == node {
                        self.intern_hits.fetch_add(1, Ordering::Relaxed);
                        self.bytes_shared
                            .fetch_add(node_bytes(&node), Ordering::Relaxed);
                        return ObjRef::new(shard_no, i as usize);
                    }
                }
            }
        }
        let mut guard = shard.inner.write().expect("pool shard poisoned");
        // Re-probe under the write lock: another thread may have interned
        // the same node between our read and write sections.
        if let Some(ids) = guard.by_hash.get(&meta.hash) {
            for &i in ids {
                if guard.recs[i as usize].node == node {
                    self.intern_hits.fetch_add(1, Ordering::Relaxed);
                    self.bytes_shared
                        .fetch_add(node_bytes(&node), Ordering::Relaxed);
                    return ObjRef::new(shard_no, i as usize);
                }
            }
        }
        let idx = guard.recs.len();
        let r = ObjRef::new(shard_no, idx);
        guard.by_hash.entry(meta.hash).or_default().push(idx as u32);
        guard.recs.push(Arc::new(Rec { node, meta }));
        self.objects_interned.fetch_add(1, Ordering::Relaxed);
        r
    }

    /// Intern an atom.
    pub fn intern_atom(&self, a: Atom) -> ObjRef {
        self.intern_node(Node::Atom(a), atom_meta(a))
    }

    fn combine_meta(&self, tag: u64, children: &[ObjRef], is_set: bool) -> Meta {
        let mut hash = mix(tag, children.len() as u64);
        let mut size = 1u64;
        let mut depth = 0u32;
        let mut adom_fp = 0u64;
        let mut invented = false;
        for &c in children {
            let m = self.meta(c);
            hash = mix(hash, m.hash);
            size += m.size;
            depth = depth.max(m.depth);
            adom_fp |= m.adom_fp;
            invented |= m.invented;
        }
        if is_set {
            depth += 1;
        }
        Meta {
            hash: finalize(hash),
            size,
            depth,
            adom_fp,
            invented,
        }
    }

    /// Intern a tuple node from already-interned children.
    pub fn tuple_of(&self, children: &[ObjRef]) -> ObjRef {
        let meta = self.combine_meta(TAG_TUPLE, children, false);
        self.intern_node(Node::Tuple(children.into()), meta)
    }

    /// Intern a set node from children already in ascending structural
    /// order with no duplicates (the canonical form `BTreeSet` iteration
    /// yields).
    pub fn set_of_sorted(&self, children: Vec<ObjRef>) -> ObjRef {
        debug_assert!(
            children
                .windows(2)
                .all(|w| self.cmp_refs(w[0], w[1]) == CmpOrd::Less),
            "set children must be strictly ascending in structural order"
        );
        let meta = self.combine_meta(TAG_SET, &children, true);
        self.intern_node(Node::Set(children.into_boxed_slice()), meta)
    }

    /// Intern a value (children before parents). Repeated calls on
    /// structurally equal values return the same id.
    pub fn intern(&self, v: &Value) -> ObjRef {
        if let Value::Atom(a) = v {
            return self.intern_atom(*a);
        }
        // The memo is keyed against the global pool's ids; a privately
        // constructed pool (tests) skips it.
        if !std::ptr::eq(self, Pool::global()) {
            return self.intern_with_meta(v).0;
        }
        if let Some((r, bytes)) = MEMO.with(|m| m.borrow().get(v).copied()) {
            self.intern_hits.fetch_add(1, Ordering::Relaxed);
            self.bytes_shared.fetch_add(bytes, Ordering::Relaxed);
            return r;
        }
        let (r, meta) = self.intern_with_meta(v);
        MEMO.with(|m| {
            let mut m = m.borrow_mut();
            if m.len() >= MEMO_CAP {
                m.clear();
            }
            // ~48 bytes per constructor node is the same rough footprint
            // `node_bytes` charges, summed over the whole tree.
            m.insert(v.clone(), (r, 48 * meta.size));
        });
        r
    }

    /// Recursive intern carrying each child's [`Meta`] up the call, so a
    /// parent combines metadata from values already in hand instead of
    /// re-reading (and re-locking) its children's shard records.
    fn intern_with_meta(&self, v: &Value) -> (ObjRef, Meta) {
        match v {
            Value::Atom(a) => {
                let meta = atom_meta(*a);
                (self.intern_node(Node::Atom(*a), meta), meta)
            }
            Value::Tuple(items) => self.intern_children(items.iter(), items.len(), false),
            // BTreeSet iterates ascending in the canonical structural
            // order, which is exactly the order set nodes store.
            Value::Set(items) => self.intern_children(items.iter(), items.len(), true),
        }
    }

    fn intern_children<'a, I>(&self, items: I, len: usize, is_set: bool) -> (ObjRef, Meta)
    where
        I: Iterator<Item = &'a Value>,
    {
        let tag = if is_set { TAG_SET } else { TAG_TUPLE };
        let mut children = Vec::with_capacity(len);
        let mut hash = mix(tag, len as u64);
        let mut size = 1u64;
        let mut depth = 0u32;
        let mut adom_fp = 0u64;
        let mut invented = false;
        for c in items {
            let (r, m) = self.intern_with_meta(c);
            children.push(r);
            hash = mix(hash, m.hash);
            size += m.size;
            depth = depth.max(m.depth);
            adom_fp |= m.adom_fp;
            invented |= m.invented;
        }
        if is_set {
            depth += 1;
        }
        let meta = Meta {
            hash: finalize(hash),
            size,
            depth,
            adom_fp,
            invented,
        };
        let children = children.into_boxed_slice();
        let node = if is_set {
            Node::Set(children)
        } else {
            Node::Tuple(children)
        };
        (self.intern_node(node, meta), meta)
    }

    /// Intern the tuple `[args...]` without materializing a `Value::Tuple`
    /// — the probe path negative literals use to test membership of a
    /// bound row.
    pub fn intern_tuple_slice<'a, I>(&self, args: I) -> ObjRef
    where
        I: IntoIterator<Item = &'a Value>,
    {
        let children: Vec<ObjRef> = args.into_iter().map(|v| self.intern(v)).collect();
        self.tuple_of(&children)
    }

    /// Reconstruct the tree-form value an id names.
    pub fn resolve(&self, r: ObjRef) -> Value {
        let rec = self.rec(r);
        match &rec.node {
            Node::Atom(a) => Value::Atom(*a),
            Node::Tuple(ch) => Value::Tuple(ch.iter().map(|&c| self.resolve(c)).collect()),
            Node::Set(ch) => {
                let members: BTreeSet<Value> = ch.iter().map(|&c| self.resolve(c)).collect();
                debug_assert_eq!(members.len(), ch.len());
                Value::Set(members)
            }
        }
    }

    /// Canonical structural comparison of two interned objects — agrees
    /// bit-for-bit with `Value`'s derived `Ord` (atoms < tuples < sets,
    /// lexicographic within a variant) while short-circuiting on
    /// id-equal subtrees.
    pub fn cmp_refs(&self, a: ObjRef, b: ObjRef) -> CmpOrd {
        if a == b {
            return CmpOrd::Equal;
        }
        let (ra, rb) = (self.rec(a), self.rec(b));
        match (&ra.node, &rb.node) {
            (Node::Atom(x), Node::Atom(y)) => x.cmp(y),
            (Node::Atom(_), _) => CmpOrd::Less,
            (_, Node::Atom(_)) => CmpOrd::Greater,
            (Node::Tuple(x), Node::Tuple(y)) => self.cmp_ref_seq(x, y),
            (Node::Tuple(_), Node::Set(_)) => CmpOrd::Less,
            (Node::Set(_), Node::Tuple(_)) => CmpOrd::Greater,
            (Node::Set(x), Node::Set(y)) => self.cmp_ref_seq(x, y),
        }
    }

    /// Lexicographic comparison of child sequences, then length — the
    /// order `Vec<Value>` and `BTreeSet<Value>` derive.
    fn cmp_ref_seq(&self, xs: &[ObjRef], ys: &[ObjRef]) -> CmpOrd {
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            match self.cmp_refs(x, y) {
                CmpOrd::Equal => continue,
                ord => return ord,
            }
        }
        xs.len().cmp(&ys.len())
    }

    /// Membership `elem ∈ set` by binary search over the set node's
    /// sorted children; `None` if `set` is not a set node.
    pub fn set_contains_ref(&self, set: ObjRef, elem: ObjRef) -> Option<bool> {
        let rec = self.rec(set);
        let Node::Set(ch) = &rec.node else {
            return None;
        };
        Some(ch.binary_search_by(|&c| self.cmp_refs(c, elem)).is_ok())
    }

    /// Union of two interned sets as a sorted-merge over child ids,
    /// deduplicating by id equality; `None` if either is not a set.
    /// This is the pool-level n-way merge behind `Value::union_into` —
    /// shared subtrees are compared by id, never re-walked.
    pub fn union_sets(&self, a: ObjRef, b: ObjRef) -> Option<ObjRef> {
        if a == b {
            let rec = self.rec(a);
            return matches!(rec.node, Node::Set(_)).then_some(a);
        }
        let (ra, rb) = (self.rec(a), self.rec(b));
        let (Node::Set(xs), Node::Set(ys)) = (&ra.node, &rb.node) else {
            return None;
        };
        if xs.is_empty() {
            return Some(b);
        }
        if ys.is_empty() {
            return Some(a);
        }
        let mut merged = Vec::with_capacity(xs.len() + ys.len());
        let (mut i, mut j) = (0, 0);
        while i < xs.len() && j < ys.len() {
            match self.cmp_refs(xs[i], ys[j]) {
                CmpOrd::Less => {
                    merged.push(xs[i]);
                    i += 1;
                }
                CmpOrd::Greater => {
                    merged.push(ys[j]);
                    j += 1;
                }
                CmpOrd::Equal => {
                    merged.push(xs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&xs[i..]);
        merged.extend_from_slice(&ys[j..]);
        Some(self.set_of_sorted(merged))
    }

    /// Total objects currently stored (diagnostics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.read().expect("pool shard poisoned").recs.len())
            .sum()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The cached [`Meta`] of `v` when this thread has already interned it
/// (whole-value memo hit) and the knob is on. Deliberately read-only:
/// a metadata query must never be the *reason* a value gets interned —
/// on enumeration-heavy paths most values are seen exactly once, and
/// interning each would cost a full locked tree walk to answer a
/// question a plain early-exit walk answers cheaper.
fn memo_meta(v: &Value) -> Option<Meta> {
    if !enabled() {
        return None;
    }
    if let Value::Atom(a) = v {
        return Some(atom_meta(*a));
    }
    let r = MEMO.with(|m| m.borrow().get(v).map(|&(r, _)| r))?;
    Some(Pool::global().meta(r))
}

/// Gated fast path for [`Value::size`]: answered from cached metadata
/// when interning is on and the value is already pooled on this thread,
/// the plain recursive walk otherwise.
pub fn fast_size(v: &Value) -> usize {
    match memo_meta(v) {
        Some(m) => m.size as usize,
        None => v.size(),
    }
}

/// Gated fast path for [`Value::set_depth`] (the U031 invention-depth
/// lint's hot query), answered from cached metadata when interning is
/// on and the value is already pooled on this thread.
pub fn fast_set_depth(v: &Value) -> usize {
    match memo_meta(v) {
        Some(m) => m.depth as usize,
        None => v.set_depth(),
    }
}

/// Gated fast path for "does `v` mention an invented surrogate atom" —
/// the invention semantics' strip/witness test. Falls back to walking
/// `adom` when interning is off or the value is not already pooled.
pub fn fast_has_invented(v: &Value) -> bool {
    match memo_meta(v) {
        Some(m) => m.invented,
        None => v.adom().into_iter().any(Inventor::is_invented),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, set, tuple};

    fn pool() -> &'static Pool {
        Pool::global()
    }

    #[test]
    fn intern_is_idempotent_and_resolve_roundtrips() {
        let v = set([tuple([atom(1), atom(2)]), atom(3), set([atom(1)])]);
        let a = pool().intern(&v);
        let b = pool().intern(&v.clone());
        assert_eq!(a, b, "structurally equal values share one id");
        assert_eq!(pool().resolve(a), v);
    }

    #[test]
    fn distinct_values_get_distinct_ids() {
        let a = pool().intern(&set([atom(1)]));
        let b = pool().intern(&set([atom(2)]));
        let c = pool().intern(&tuple([atom(1)]));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn meta_matches_value_accessors() {
        let vals = [
            atom(7),
            tuple([atom(1), set([atom(2), atom(3)])]),
            set([set([set([atom(9)])]), atom(0)]),
            Value::empty_set(),
        ];
        for v in vals {
            let m = pool().meta(pool().intern(&v));
            assert_eq!(m.size as usize, v.size(), "size of {v}");
            assert_eq!(m.depth as usize, v.set_depth(), "depth of {v}");
            for a in v.adom() {
                let bit = 1u64 << (finalize(a.id()) & 63);
                assert_ne!(m.adom_fp & bit, 0, "adom fingerprint covers {a}");
            }
            assert!(!m.invented);
        }
        let mut inv = Inventor::new();
        let surrogate = Value::Atom(inv.fresh());
        let wrapped = set([tuple([atom(1), surrogate])]);
        assert!(pool().meta(pool().intern(&wrapped)).invented);
    }

    #[test]
    fn cmp_refs_agrees_with_value_ord() {
        let samples = [
            atom(0),
            atom(5),
            Value::Atom(Atom::named("z")),
            tuple([atom(1)]),
            tuple([atom(1), atom(2)]),
            tuple([atom(2)]),
            Value::empty_set(),
            set([atom(1)]),
            set([atom(1), atom(2)]),
            set([tuple([atom(1), atom(9)])]),
            set([set([atom(3)])]),
        ];
        for x in &samples {
            for y in &samples {
                let rx = pool().intern(x);
                let ry = pool().intern(y);
                assert_eq!(
                    pool().cmp_refs(rx, ry),
                    x.cmp(y),
                    "structural order of {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn set_contains_ref_is_membership() {
        let s = set([atom(1), tuple([atom(2), atom(3)]), set([atom(4)])]);
        let sid = pool().intern(&s);
        for member in [atom(1), tuple([atom(2), atom(3)]), set([atom(4)])] {
            let m = pool().intern(&member);
            assert_eq!(pool().set_contains_ref(sid, m), Some(true), "{member} ∈ s");
        }
        let absent = pool().intern(&atom(99));
        assert_eq!(pool().set_contains_ref(sid, absent), Some(false));
        let not_set = pool().intern(&atom(1));
        assert_eq!(pool().set_contains_ref(not_set, absent), None);
    }

    #[test]
    fn union_sets_matches_value_union() {
        let a = set([atom(1), atom(3), set([atom(5)])]);
        let b = set([atom(2), atom(3), tuple([atom(4), atom(4)])]);
        let (ra, rb) = (pool().intern(&a), pool().intern(&b));
        let u = pool().union_sets(ra, rb).unwrap();
        let expect = Value::set_of(
            a.as_set()
                .unwrap()
                .iter()
                .chain(b.as_set().unwrap().iter())
                .cloned(),
        );
        assert_eq!(pool().resolve(u), expect);
        // Degenerate shapes: empty sides share, non-sets refuse.
        let empty = pool().intern(&Value::empty_set());
        assert_eq!(pool().union_sets(ra, empty), Some(ra));
        assert_eq!(pool().union_sets(empty, rb), Some(rb));
        assert_eq!(pool().union_sets(ra, pool().intern(&atom(1))), None);
    }

    #[test]
    fn hits_count_and_bytes_accumulate() {
        let before = pool().stats();
        let v = set([tuple([atom(1001), atom(1002)]), atom(1003)]);
        pool().intern(&v);
        let mid = pool().stats().delta_since(&before);
        assert!(mid.objects_interned >= 1, "first intern stores nodes");
        pool().intern(&v);
        let after = pool().stats().delta_since(&before);
        assert!(
            after.intern_hits > mid.intern_hits,
            "re-interning the same value hits"
        );
        assert!(after.bytes_shared_estimate > mid.bytes_shared_estimate);
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        let v = set([
            tuple([atom(41), atom(42)]),
            set([atom(43), tuple([atom(44), atom(45)])]),
        ]);
        let ids: Vec<ObjRef> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let v = v.clone();
                    s.spawn(move || Pool::global().intern(&v))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(pool().resolve(ids[0]), v);
    }

    #[test]
    fn knob_gates_fast_paths_not_correctness() {
        let v = set([set([atom(77)]), atom(78)]);
        let was = enabled();
        set_enabled(true);
        assert_eq!(fast_size(&v), v.size());
        assert_eq!(fast_set_depth(&v), v.set_depth());
        assert!(!fast_has_invented(&v));
        set_enabled(false);
        assert_eq!(fast_size(&v), v.size());
        assert_eq!(fast_set_depth(&v), v.set_depth());
        assert!(!fast_has_invented(&v));
        set_enabled(was);
    }
}
