//! Lists — the Section 7 remark, made executable.
//!
//! The paper closes by noting that "analogous results hold in other cases
//! where untyped sets can be simulated[, such as] the use of list
//! structures and the use of a freely interpreted function symbol". This
//! module provides the simulation: lists are encoded as right-nested
//! `[head, tail]` pairs terminated by a `nil` constant, and the two
//! capabilities untyped sets supply to the completeness proofs —
//! *arbitrarily long ordered sequences of distinct objects over a fixed
//! atom set* and *pairing* — are reproduced:
//!
//! * [`list_chain`] builds the list analogue of the ordinal chain:
//!   `nil; cons(a, nil); cons(a, cons(a, nil)); …` — distinct, strictly
//!   ordered by length, constant active domain;
//! * [`cons`]/[`head`]/[`tail`] give the free-pairing view (a freely
//!   interpreted binary function symbol is exactly `cons` read as an
//!   uninterpreted constructor).
//!
//! Round-trips with finite sets ([`list_from_values`], [`list_to_values`])
//! connect the encodings.

use crate::atom::Atom;
use crate::value::Value;

/// The `nil` terminator (a named constant; part of the query's `C`).
pub fn nil() -> Value {
    Value::Atom(Atom::named("list:nil"))
}

/// `cons(head, tail)` as the pair `[head, tail]`.
pub fn cons(head: Value, tail: Value) -> Value {
    Value::Tuple(vec![head, tail])
}

/// The head of a non-empty list.
pub fn head(list: &Value) -> Option<&Value> {
    if is_nil(list) {
        return None;
    }
    list.project(0)
}

/// The tail of a non-empty list.
pub fn tail(list: &Value) -> Option<&Value> {
    if is_nil(list) {
        return None;
    }
    list.project(1)
}

/// Is this the empty list?
pub fn is_nil(v: &Value) -> bool {
    *v == nil()
}

/// Is this value a well-formed list (`nil` or cons cells ending in `nil`)?
pub fn is_list(v: &Value) -> bool {
    let mut cur = v;
    loop {
        if is_nil(cur) {
            return true;
        }
        match cur.as_tuple() {
            Some(items) if items.len() == 2 => cur = &items[1],
            _ => return false,
        }
    }
}

/// Build a list from values (first element becomes the head).
pub fn list_from_values<I: IntoIterator<Item = Value>>(items: I) -> Value {
    let items: Vec<Value> = items.into_iter().collect();
    let mut out = nil();
    for v in items.into_iter().rev() {
        out = cons(v, out);
    }
    out
}

/// Flatten a list back to its elements (None if not a list).
pub fn list_to_values(list: &Value) -> Option<Vec<Value>> {
    let mut out = Vec::new();
    let mut cur = list;
    loop {
        if is_nil(cur) {
            return Some(out);
        }
        let items = cur.as_tuple()?;
        if items.len() != 2 {
            return None;
        }
        // must stay: the flattened element list owns its cells
        out.push(items[0].clone());
        cur = &items[1];
    }
}

/// Length of a list (None if not a list).
pub fn list_len(list: &Value) -> Option<usize> {
    list_to_values(list).map(|v| v.len())
}

/// The list analogue of the ordinal chain: `len`-many lists
/// `nil, [a|nil], [a,a|nil], …` — distinct, strictly ordered by length,
/// built from a single atom. This is the "untyped sets can be simulated by
/// lists" device: substituting these for the set chain in the Theorem
/// 4.1(b)/5.1 constructions changes nothing else.
pub fn list_chain(seed: Atom, len: usize) -> Vec<Value> {
    let mut out = Vec::with_capacity(len);
    let mut cur = nil();
    for _ in 0..len {
        // must stay: `cur` is both emitted and extended by the next step
        out.push(cur.clone());
        cur = cons(Value::Atom(seed), cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, set};
    use std::collections::BTreeSet;

    #[test]
    fn cons_head_tail() {
        let l = cons(atom(1), cons(atom(2), nil()));
        assert_eq!(head(&l), Some(&atom(1)));
        assert_eq!(tail(&l).and_then(head), Some(&atom(2)));
        assert_eq!(head(&nil()), None);
        assert_eq!(tail(&nil()), None);
    }

    #[test]
    fn list_roundtrip() {
        let vals = vec![atom(3), set([atom(1)]), atom(3)];
        let l = list_from_values(vals.clone());
        assert!(is_list(&l));
        assert_eq!(list_to_values(&l), Some(vals));
        assert_eq!(list_len(&l), Some(3));
        assert_eq!(list_to_values(&nil()), Some(vec![]));
    }

    #[test]
    fn non_lists_detected() {
        assert!(!is_list(&atom(1)));
        assert!(!is_list(&cons(atom(1), atom(2)))); // improper tail
        assert!(is_list(&nil()));
        assert_eq!(list_to_values(&atom(1)), None);
    }

    #[test]
    fn list_chain_has_the_chain_properties() {
        let c = list_chain(Atom::new(0), 6);
        // distinct
        let distinct: BTreeSet<_> = c.iter().cloned().collect();
        assert_eq!(distinct.len(), 6);
        // strictly ordered by length, constant adom, all lists
        for (k, v) in c.iter().enumerate() {
            assert!(is_list(v));
            assert_eq!(list_len(v), Some(k));
            assert!(v.adom().len() <= 2, "seed + nil only");
        }
        // lists preserve order under the canonical value order by length
        for w in c.windows(2) {
            assert!(w[0].size() < w[1].size());
        }
    }

    #[test]
    fn lists_are_preserved_by_renaming_with_fixed_constants() {
        // nil is a constant; renaming non-constant atoms keeps list shape
        use crate::perm::Permutation;
        let l = list_from_values([atom(1), atom(2)]);
        let sigma = Permutation::swap(Atom::new(1), Atom::new(9));
        let renamed = sigma.apply_value(&l);
        assert!(is_list(&renamed));
        assert_eq!(list_to_values(&renamed), Some(vec![atom(9), atom(2)]));
    }
}
