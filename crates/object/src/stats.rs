//! Work counters for the deductive engines.
//!
//! Wall-clock alone cannot distinguish "the engine did less work" from
//! "the machine was faster", so the engines in `uset-deductive` thread an
//! [`EvalStats`] through their fixpoints and the bench harness reports
//! these counts alongside timing. The semi-naive ablations assert on them
//! directly: a correct semi-naive engine derives strictly fewer tuples
//! than the naive engine on recursive workloads.

/// Cumulative work counters for one evaluation (or several, when reused
/// across strata — counters only ever accumulate).
///
/// The first six fields are *work* counters: they measure what the engine
/// logically did and must be bit-identical across representation choices
/// (interning on/off, parallel widths, checkpoint resume). The `intern_*`
/// fields are *advisory* pool-attribution counters: they describe how the
/// hash-consing layer served that work, legitimately differ between an
/// interned and a plain run (or across a kill/resume that re-warms the
/// pool), and are therefore excluded from equality, `Display`, and the
/// checkpoint codec.
#[derive(Clone, Copy, Debug, Default, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds executed.
    pub rounds: u64,
    /// Rule firings (one per rule × round × delta-rewriting variant).
    pub rules_fired: u64,
    /// Tuples derived before deduplication — the raw join output volume,
    /// the number a semi-naive engine exists to shrink.
    pub tuples_derived: u64,
    /// Hash-index probes that replaced full relation scans.
    pub index_probes: u64,
    /// Join literals that had a ground column available but still fell
    /// back to a full relation scan (no usable index at that position) —
    /// the benchable signal that an indexing opportunity was missed.
    pub scan_fallbacks: u64,
    /// Largest total fact count observed in the evolving state.
    pub peak_facts: usize,
    /// Distinct objects the hash-consing pool stored during this
    /// evaluation (advisory; see the struct docs).
    pub objects_interned: u64,
    /// Intern calls the pool answered from an existing record —
    /// each one is a deep traversal (hash/compare/clone) that the
    /// sharing avoided (advisory).
    pub intern_hits: u64,
    /// Estimated heap bytes structural sharing avoided allocating
    /// (advisory).
    pub bytes_shared_estimate: u64,
}

/// Equality covers the work counters only: interned and plain runs of
/// the same program must compare equal even though their pool
/// attribution differs.
impl PartialEq for EvalStats {
    fn eq(&self, other: &EvalStats) -> bool {
        self.rounds == other.rounds
            && self.rules_fired == other.rules_fired
            && self.tuples_derived == other.tuples_derived
            && self.index_probes == other.index_probes
            && self.scan_fallbacks == other.scan_fallbacks
            && self.peak_facts == other.peak_facts
    }
}

impl EvalStats {
    /// Record the current total fact count, keeping the running peak.
    pub fn observe_facts(&mut self, facts: usize) {
        self.peak_facts = self.peak_facts.max(facts);
    }

    /// Fold another evaluation's counters into this one (counts add,
    /// peaks max) — for callers that evaluate in phases with separate
    /// stats.
    pub fn absorb(&mut self, other: &EvalStats) {
        self.rounds += other.rounds;
        self.rules_fired += other.rules_fired;
        self.tuples_derived += other.tuples_derived;
        self.index_probes += other.index_probes;
        self.scan_fallbacks += other.scan_fallbacks;
        self.peak_facts = self.peak_facts.max(other.peak_facts);
        self.objects_interned += other.objects_interned;
        self.intern_hits += other.intern_hits;
        self.bytes_shared_estimate += other.bytes_shared_estimate;
    }

    /// Attribute pool counter movement to this evaluation: callers
    /// snapshot [`crate::Pool::stats`] on entry and pass the delta on
    /// exit.
    pub fn note_intern(&mut self, delta: &crate::intern::InternStats) {
        self.objects_interned += delta.objects_interned;
        self.intern_hits += delta.intern_hits;
        self.bytes_shared_estimate += delta.bytes_shared_estimate;
    }
}

/// `Display` prints the work counters only (the stable six-field line
/// examples and traces were built against); pool attribution is read
/// from the fields or [`crate::Pool::stats`] directly.
impl std::fmt::Display for EvalStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rounds={} rules_fired={} tuples_derived={} index_probes={} scan_fallbacks={} peak_facts={}",
            self.rounds,
            self.rules_fired,
            self.tuples_derived,
            self.index_probes,
            self.scan_fallbacks,
            self.peak_facts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::EvalStats;

    #[test]
    fn absorb_adds_counts_and_maxes_peak() {
        let mut a = EvalStats {
            rounds: 2,
            rules_fired: 10,
            tuples_derived: 100,
            index_probes: 5,
            scan_fallbacks: 2,
            peak_facts: 40,
            ..EvalStats::default()
        };
        let b = EvalStats {
            rounds: 3,
            rules_fired: 1,
            tuples_derived: 1,
            index_probes: 1,
            scan_fallbacks: 1,
            peak_facts: 7,
            ..EvalStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.rules_fired, 11);
        assert_eq!(a.tuples_derived, 101);
        assert_eq!(a.index_probes, 6);
        assert_eq!(a.scan_fallbacks, 3);
        assert_eq!(a.peak_facts, 40);
    }

    #[test]
    fn observe_facts_tracks_peak() {
        let mut s = EvalStats::default();
        s.observe_facts(3);
        s.observe_facts(9);
        s.observe_facts(6);
        assert_eq!(s.peak_facts, 9);
    }

    #[test]
    fn intern_counters_are_advisory() {
        let mut a = EvalStats {
            rounds: 1,
            ..EvalStats::default()
        };
        let mut b = a;
        b.objects_interned = 100;
        b.intern_hits = 50;
        b.bytes_shared_estimate = 4096;
        // Same work, different pool attribution: still equal, same line.
        assert_eq!(a, b);
        assert_eq!(a.to_string(), b.to_string());
        assert!(!a.to_string().contains("intern"));
        // ...but absorb carries them for the bench harness.
        a.absorb(&b);
        assert_eq!(a.objects_interned, 100);
        assert_eq!(a.intern_hits, 50);
        assert_eq!(a.rounds, 2);
    }
}
