//! # uset-object — the complex-object data model
//!
//! This crate is the substrate shared by every query language in the
//! reproduction of Hull & Su, *Untyped Sets, Invention, and Computable
//! Queries* (PODS 1989). It provides:
//!
//! * a countably infinite universal domain **U** of [`Atom`]s (Section 2 of
//!   the paper), with optional human-readable names for constants;
//! * [`Value`]s — the objects built from atoms with the tuple and set
//!   constructors, with a canonical total order so that set equality is
//!   structural and deterministic;
//! * [`Type`]s (the paper's *types*: `U`, `{T}`, `[T1..Tn]`) and [`RType`]s
//!   (the paper's *relaxed types* of Section 4, which add the universal
//!   rtype `Obj`);
//! * [`Schema`]s, [`Instance`]s and [`Database`] instances, with active
//!   domains (`adom`);
//! * permutations of **U** and the machinery for checking *C-genericity*
//!   of query functions ([`perm`]);
//! * enumeration of constructive domains `cons_T(X)` ([`cons`]), which is
//!   finite for types and depth-bounded for rtypes mentioning `Obj`;
//! * LDM-style flattening of arbitrary complex objects into flat
//!   `{[U,U,U,U]}` relations with invented surrogate identifiers
//!   ([`flatten`]) — the representation used in the proof of Theorem 6.3;
//! * the evaluation substrate shared by the deductive engines:
//!   first-column hash indexes over instances ([`index`]) and work
//!   counters ([`stats`]).
//!
//! The crate is deliberately free of interior mutability and global state
//! except for the process-wide atom name interner (which only affects
//! `Display` output, never semantics) and the hash-consing object pool
//! ([`intern`]), which is advisory: it changes how objects are stored
//! and compared, never what any evaluation computes.

pub mod atom;
pub mod cons;
pub mod database;
pub mod error;
pub mod flatten;
pub mod index;
pub mod intern;
pub mod lists;
pub mod perm;
pub mod rtype;
pub mod stats;
pub mod value;

pub use atom::Atom;
pub use database::{Database, Instance, Schema};
pub use error::{ObjectError, Result};
pub use index::{ColumnIndex, IndexSet};
pub use intern::{InternStats, ObjRef, Pool};
pub use rtype::{RType, Type};
pub use stats::EvalStats;
pub use value::Value;

/// Convenience constructor: an atomic value.
pub fn atom(id: u64) -> Value {
    Value::Atom(Atom::new(id))
}

/// Convenience constructor: a named atomic value (interned).
pub fn named(name: &str) -> Value {
    Value::Atom(Atom::named(name))
}

/// Convenience constructor: a tuple value.
pub fn tuple<I: IntoIterator<Item = Value>>(items: I) -> Value {
    Value::Tuple(items.into_iter().collect())
}

/// Convenience constructor: a set value (duplicates collapse).
pub fn set<I: IntoIterator<Item = Value>>(items: I) -> Value {
    Value::set_of(items)
}
