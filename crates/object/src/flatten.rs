//! LDM-style flattening of complex objects into flat `{[U,U,U,U]}` relations.
//!
//! The proof of Theorem 6.3 removes the rtype `Obj` by "flattening" each
//! element of `cons_Obj(adom(d,Q))` into an object of type `{[U,U,U,U]}`
//! using invented values — the representation of complex objects from the
//! Logical Data Model (Kuper & Vardi 1984). This module implements that
//! encoding concretely and invertibly:
//!
//! Each sub-object gets a fresh surrogate atom (an *invented value*). The
//! encoding of an object is a set of 4-tuples `[id, kind, key, child]`:
//!
//! * `[id, ATOM, a, a]` — node `id` is the atom `a`;
//! * `[id, TUPLE, pos_k, child]` — node `id` is a tuple whose `k`-th
//!   component (`pos_k` drawn from a fixed ladder of position constants) is
//!   node `child`;
//! * `[id, SET, child, child]` — node `id` is a set containing node `child`;
//! * `[id, EMPTYSET, id, id]` — node `id` is the empty set (sets with no
//!   members need an explicit witness row).
//!
//! `kind` markers and position constants come from the named-constant pool,
//! so the encoding is generic relative to that finite constant set `C` —
//! exactly the discipline of the paper.

use crate::atom::Atom;
use crate::database::Instance;
use crate::error::{ObjectError, Result};
use crate::value::Value;
use std::collections::BTreeMap;

/// Kind marker: atom node.
pub fn kind_atom() -> Atom {
    Atom::named("#atom")
}
/// Kind marker: tuple node.
pub fn kind_tuple() -> Atom {
    Atom::named("#tuple")
}
/// Kind marker: set node (one row per member).
pub fn kind_set() -> Atom {
    Atom::named("#set")
}
/// Kind marker: empty-set node.
pub fn kind_empty_set() -> Atom {
    Atom::named("#emptyset")
}

/// The `k`-th tuple-position constant.
pub fn position(k: usize) -> Atom {
    Atom::named(&format!("#pos{k}"))
}

/// Allocator of invented surrogate atoms, outside any workload's adom.
#[derive(Debug)]
pub struct Inventor {
    next: u64,
}

/// Invented atoms are numbered downward from just below the named range, so
/// they cannot collide with ordinary workload atoms (which count up from 0)
/// in any realistic run.
const INVENT_BASE: u64 = (1 << 62) - 1;

impl Inventor {
    /// A fresh inventor.
    pub fn new() -> Self {
        Inventor { next: INVENT_BASE }
    }

    /// Produce the next invented atom.
    pub fn fresh(&mut self) -> Atom {
        let a = Atom::new(self.next);
        self.next -= 1;
        a
    }

    /// True iff the atom was produced by *some* inventor with default
    /// numbering (used by the invention semantics to strip invented values).
    pub fn is_invented(a: Atom) -> bool {
        !a.is_named() && a.id() > INVENT_BASE - (1 << 32) && a.id() <= INVENT_BASE
    }
}

impl Default for Inventor {
    fn default() -> Self {
        Inventor::new()
    }
}

/// The result of flattening: the root surrogate and the flat encoding rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flattened {
    /// Surrogate atom denoting the encoded object.
    pub root: Atom,
    /// Rows `[id, kind, key, child]` as a flat instance of `{[U,U,U,U]}`.
    pub rows: Instance,
}

/// Flatten an object into `{[U,U,U,U]}` rows with invented surrogates.
///
/// Structure sharing: identical sub-objects receive the same surrogate, so
/// the encoding of a set avoids duplicate sub-trees (and decoding is
/// insensitive to sharing).
pub fn flatten(v: &Value, inventor: &mut Inventor) -> Flattened {
    let mut rows = Instance::empty();
    let mut memo: BTreeMap<Value, Atom> = BTreeMap::new();
    let root = flatten_rec(v, inventor, &mut rows, &mut memo);
    Flattened { root, rows }
}

fn flatten_rec(
    v: &Value,
    inventor: &mut Inventor,
    rows: &mut Instance,
    memo: &mut BTreeMap<Value, Atom>,
) -> Atom {
    if let Some(&id) = memo.get(v) {
        return id;
    }
    let id = inventor.fresh();
    // must stay: the memo key outlives the borrowed subtree
    memo.insert(v.clone(), id);
    match v {
        Value::Atom(a) => {
            rows.insert(Value::Tuple(vec![
                Value::Atom(id),
                Value::Atom(kind_atom()),
                Value::Atom(*a),
                Value::Atom(*a),
            ]));
        }
        Value::Tuple(items) => {
            for (k, item) in items.iter().enumerate() {
                let child = flatten_rec(item, inventor, rows, memo);
                rows.insert(Value::Tuple(vec![
                    Value::Atom(id),
                    Value::Atom(kind_tuple()),
                    Value::Atom(position(k)),
                    Value::Atom(child),
                ]));
            }
            if items.is_empty() {
                // zero-length tuples are not legal types but tolerate them
                rows.insert(Value::Tuple(vec![
                    Value::Atom(id),
                    Value::Atom(kind_tuple()),
                    Value::Atom(position(0)),
                    Value::Atom(id),
                ]));
            }
        }
        Value::Set(items) => {
            if items.is_empty() {
                rows.insert(Value::Tuple(vec![
                    Value::Atom(id),
                    Value::Atom(kind_empty_set()),
                    Value::Atom(id),
                    Value::Atom(id),
                ]));
            } else {
                for item in items {
                    let child = flatten_rec(item, inventor, rows, memo);
                    rows.insert(Value::Tuple(vec![
                        Value::Atom(id),
                        Value::Atom(kind_set()),
                        Value::Atom(child),
                        Value::Atom(child),
                    ]));
                }
            }
        }
    }
    id
}

/// Reconstruct the object denoted by `root` from flat encoding rows.
pub fn unflatten(root: Atom, rows: &Instance) -> Result<Value> {
    // index rows by id
    let mut by_id: BTreeMap<Atom, Vec<(Atom, Atom, Atom)>> = BTreeMap::new();
    for row in rows.iter() {
        let items = row
            .as_tuple()
            .ok_or_else(|| ObjectError::MalformedEncoding(format!("non-tuple row {row}")))?;
        if items.len() != 4 {
            return Err(ObjectError::MalformedEncoding(format!(
                "row of arity {} (expected 4)",
                items.len()
            )));
        }
        let get = |i: usize| -> Result<Atom> {
            items[i]
                .as_atom()
                .ok_or_else(|| ObjectError::MalformedEncoding(format!("non-atomic field in {row}")))
        };
        by_id
            .entry(get(0)?)
            .or_default()
            .push((get(1)?, get(2)?, get(3)?));
    }
    unflatten_rec(root, &by_id, 0)
}

fn unflatten_rec(
    id: Atom,
    by_id: &BTreeMap<Atom, Vec<(Atom, Atom, Atom)>>,
    depth: usize,
) -> Result<Value> {
    // encodings produced by `flatten` are DAGs; cycles mean corruption
    if depth > 512 {
        return Err(ObjectError::MalformedEncoding(
            "cycle or excessive depth in encoding".to_owned(),
        ));
    }
    let rows = by_id
        .get(&id)
        .ok_or_else(|| ObjectError::MalformedEncoding(format!("no rows for node {id}")))?;
    let kind = rows[0].0;
    if rows.iter().any(|(k, _, _)| *k != kind) {
        return Err(ObjectError::MalformedEncoding(format!(
            "node {id} has conflicting kinds"
        )));
    }
    if kind == kind_atom() {
        if rows.len() != 1 || rows[0].1 != rows[0].2 {
            return Err(ObjectError::MalformedEncoding(format!(
                "bad atom node {id}"
            )));
        }
        Ok(Value::Atom(rows[0].1))
    } else if kind == kind_empty_set() {
        Ok(Value::empty_set())
    } else if kind == kind_set() {
        let mut members = std::collections::BTreeSet::new();
        for (_, child, _) in rows {
            members.insert(unflatten_rec(*child, by_id, depth + 1)?);
        }
        Ok(Value::Set(members))
    } else if kind == kind_tuple() {
        let mut by_pos: BTreeMap<usize, Atom> = BTreeMap::new();
        for (_, pos, child) in rows {
            let pos_name = pos.name().ok_or_else(|| {
                ObjectError::MalformedEncoding(format!("non-position key in tuple node {id}"))
            })?;
            let k: usize = pos_name
                .strip_prefix("#pos")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    ObjectError::MalformedEncoding(format!("bad position {pos_name}"))
                })?;
            // a position may be witnessed by several identical rows, but
            // two different children for one slot is an ambiguous encoding,
            // not something to resolve by row order
            if let Some(prev) = by_pos.insert(k, *child) {
                if prev != *child {
                    return Err(ObjectError::MalformedEncoding(format!(
                        "conflicting children {prev} and {child} at position {k} in node {id}"
                    )));
                }
            }
        }
        let mut items = Vec::with_capacity(by_pos.len());
        for k in 0..by_pos.len() {
            let child = by_pos.get(&k).ok_or_else(|| {
                ObjectError::MalformedEncoding(format!("gap at position {k} in node {id}"))
            })?;
            items.push(unflatten_rec(*child, by_id, depth + 1)?);
        }
        Ok(Value::Tuple(items))
    } else {
        Err(ObjectError::MalformedEncoding(format!(
            "unknown kind marker {kind}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, set, tuple};

    fn roundtrip(v: &Value) {
        let mut inv = Inventor::new();
        let flat = flatten(v, &mut inv);
        // encoding really is flat {[U,U,U,U]}
        use crate::rtype::Type;
        flat.rows
            .check_rtype(&Type::atomic_tuple(4).to_rtype())
            .unwrap();
        let back = unflatten(flat.root, &flat.rows).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn roundtrip_atom() {
        roundtrip(&atom(5));
    }

    #[test]
    fn roundtrip_empty_set() {
        roundtrip(&Value::empty_set());
    }

    #[test]
    fn roundtrip_nested() {
        roundtrip(&set([
            tuple([atom(1), set([atom(2), atom(3)])]),
            Value::empty_set(),
            atom(4),
        ]));
    }

    #[test]
    fn roundtrip_deep_ordinal_chain() {
        let chain = crate::cons::ordinal_chain(Atom::new(0), 6);
        roundtrip(chain.last().unwrap());
    }

    #[test]
    fn sharing_collapses_identical_subobjects() {
        // {[a,a],[a,b]} — atom a appears three times but is encoded once
        let v = set([tuple([atom(1), atom(1)]), tuple([atom(1), atom(2)])]);
        let mut inv = Inventor::new();
        let flat = flatten(&v, &mut inv);
        let atom_rows = flat
            .rows
            .iter()
            .filter(|r| r.project(1) == Some(&Value::Atom(kind_atom())))
            .count();
        assert_eq!(atom_rows, 2); // one node per distinct atom
    }

    #[test]
    fn invented_atoms_are_recognized() {
        let mut inv = Inventor::new();
        let a = inv.fresh();
        let b = inv.fresh();
        assert_ne!(a, b);
        assert!(Inventor::is_invented(a));
        assert!(Inventor::is_invented(b));
        assert!(!Inventor::is_invented(Atom::new(0)));
        assert!(!Inventor::is_invented(Atom::named("c")));
    }

    #[test]
    fn unflatten_rejects_garbage() {
        // missing root
        assert!(unflatten(Atom::new(1), &Instance::empty()).is_err());
        // wrong arity
        let bad = Instance::from_values([tuple([atom(1), atom(2)])]);
        assert!(unflatten(Atom::new(1), &bad).is_err());
        // cyclic set encoding: {id, SET, id, id} points at itself
        let id = Atom::new(3);
        let cyc = Instance::from_values([tuple([
            Value::Atom(id),
            Value::Atom(kind_set()),
            Value::Atom(id),
            Value::Atom(id),
        ])]);
        assert!(unflatten(id, &cyc).is_err());
    }

    #[test]
    fn unflatten_rejects_ambiguous_tuple_position() {
        // node 10 is a tuple whose position 0 is claimed by two different
        // atom children — decoding must refuse rather than pick one
        let node = Atom::new(10);
        let (c1, c2) = (Atom::new(11), Atom::new(12));
        let mut rows = Vec::new();
        for child in [c1, c2] {
            rows.push(tuple([
                Value::Atom(node),
                Value::Atom(kind_tuple()),
                Value::Atom(position(0)),
                Value::Atom(child),
            ]));
            rows.push(tuple([
                Value::Atom(child),
                Value::Atom(kind_atom()),
                atom(1),
                atom(1),
            ]));
        }
        let err = unflatten(node, &Instance::from_values(rows)).unwrap_err();
        assert!(matches!(err, ObjectError::MalformedEncoding(_)));
        assert!(err.to_string().contains("position 0"), "{err}");
    }

    #[test]
    fn encoding_uses_only_input_atoms_constants_and_invented() {
        let v = set([atom(1), tuple([atom(2), atom(3)])]);
        let mut inv = Inventor::new();
        let flat = flatten(&v, &mut inv);
        for a in flat.rows.adom() {
            assert!(
                a.is_named() || Inventor::is_invented(a) || v.adom().contains(&a),
                "unexpected atom {a} in encoding"
            );
        }
    }
}
