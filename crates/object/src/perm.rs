//! Permutations of **U** and the *C-genericity* test.
//!
//! A query function `f` is *C-generic* if `f ∘ σ = σ ∘ f` for every
//! permutation `σ` of **U** fixing the finite constant set `C` pointwise
//! (Section 2). Since a database instance mentions only finitely many atoms,
//! genericity on an instance can be tested exhaustively against all
//! permutations of the mentioned atoms (extended with some fresh atoms to
//! catch functions that smuggle in unmentioned values).

use crate::atom::Atom;
use crate::database::{Database, Instance};
use std::collections::{BTreeMap, BTreeSet};

/// A finitely supported permutation of **U**: identity outside its map.
///
/// The map is required to be a bijection on its domain with domain = range,
/// so the whole function really is a permutation of **U**.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Permutation {
    map: BTreeMap<Atom, Atom>,
}

impl Permutation {
    /// The identity permutation.
    pub fn identity() -> Self {
        Permutation::default()
    }

    /// Build from explicit (from, to) pairs.
    ///
    /// # Panics
    /// Panics if the pairs do not describe a bijection with equal domain and
    /// range (which would fail to extend to a permutation of **U**).
    pub fn from_pairs<I: IntoIterator<Item = (Atom, Atom)>>(pairs: I) -> Self {
        let map: BTreeMap<Atom, Atom> = pairs.into_iter().collect();
        let domain: BTreeSet<Atom> = map.keys().copied().collect();
        let range: BTreeSet<Atom> = map.values().copied().collect();
        assert_eq!(
            domain.len(),
            map.len(),
            "duplicate source atom in permutation"
        );
        assert_eq!(domain, range, "permutation domain and range differ");
        Permutation { map }
    }

    /// The transposition swapping two atoms.
    pub fn swap(a: Atom, b: Atom) -> Self {
        if a == b {
            Permutation::identity()
        } else {
            Permutation::from_pairs([(a, b), (b, a)])
        }
    }

    /// Apply to a single atom.
    pub fn apply_atom(&self, a: Atom) -> Atom {
        self.map.get(&a).copied().unwrap_or(a)
    }

    /// Apply to an object (extending σ naturally, as in the paper).
    pub fn apply_value(&self, v: &crate::value::Value) -> crate::value::Value {
        v.map_atoms(&mut |a| self.apply_atom(a))
    }

    /// Apply to an instance.
    pub fn apply_instance(&self, inst: &Instance) -> Instance {
        inst.map_atoms(&mut |a| self.apply_atom(a))
    }

    /// Apply to a database.
    pub fn apply_database(&self, db: &Database) -> Database {
        db.map_atoms(&mut |a| self.apply_atom(a))
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Permutation) -> Permutation {
        let mut support: BTreeSet<Atom> = self.map.keys().copied().collect();
        support.extend(other.map.keys().copied());
        let map = support
            .into_iter()
            .map(|a| (a, self.apply_atom(other.apply_atom(a))))
            .filter(|(a, b)| a != b)
            .collect();
        Permutation { map }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            map: self.map.iter().map(|(a, b)| (*b, *a)).collect(),
        }
    }

    /// True iff every atom in `fixed` is a fixpoint.
    pub fn fixes(&self, fixed: &BTreeSet<Atom>) -> bool {
        fixed.iter().all(|a| self.apply_atom(*a) == *a)
    }
}

/// Enumerate all permutations of the given atoms (identity outside them).
///
/// Exponential in `atoms.len()`; intended for small genericity tests.
pub fn all_permutations(atoms: &[Atom]) -> Vec<Permutation> {
    let mut result = Vec::new();
    let mut images: Vec<Atom> = atoms.to_vec();
    permute_rec(&mut images, 0, atoms, &mut result);
    result
}

fn permute_rec(images: &mut Vec<Atom>, k: usize, atoms: &[Atom], out: &mut Vec<Permutation>) {
    if k == images.len() {
        out.push(Permutation::from_pairs(
            atoms.iter().copied().zip(images.iter().copied()),
        ));
        return;
    }
    for i in k..images.len() {
        images.swap(k, i);
        permute_rec(images, k + 1, atoms, out);
        images.swap(k, i);
    }
}

/// The outcome of a query used in genericity testing: a value or the
/// paper's undefined result `?`.
pub type QueryOutcome = Option<Instance>;

/// Test C-genericity of a query on a particular input database: for every
/// permutation σ of `adom(d) ∪ fresh` fixing `constants`, check
/// `f(σ(d)) = σ(f(d))` (with `?` mapping to `?`).
///
/// `fresh_atoms` adds atoms *not* in the input, catching functions whose
/// output depends on unmentioned domain elements. Returns the first
/// violating permutation, or `None` if generic on this input.
pub fn find_genericity_violation(
    f: &mut dyn FnMut(&Database) -> QueryOutcome,
    d: &Database,
    constants: &BTreeSet<Atom>,
    fresh_atoms: &[Atom],
) -> Option<Permutation> {
    let mut atoms: Vec<Atom> = d
        .adom()
        .into_iter()
        .filter(|a| !constants.contains(a))
        .collect();
    for fa in fresh_atoms {
        if !atoms.contains(fa) && !constants.contains(fa) {
            atoms.push(*fa);
        }
    }
    let base = f(d);
    for sigma in all_permutations(&atoms) {
        let permuted_in = sigma.apply_database(d);
        let lhs = f(&permuted_in);
        let rhs = base.as_ref().map(|inst| sigma.apply_instance(inst));
        if lhs != rhs {
            return Some(sigma);
        }
    }
    None
}

/// Test that a query is (input-)domain-preserving w.r.t. `constants` on a
/// particular input: `outdom(f,d) ⊆ indom(f,d) ∪ C`.
pub fn is_domain_preserving(
    output: &QueryOutcome,
    d: &Database,
    constants: &BTreeSet<Atom>,
) -> bool {
    match output {
        None => true,
        Some(inst) => {
            let indom = d.adom();
            inst.adom()
                .iter()
                .all(|a| indom.contains(a) || constants.contains(a))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, tuple};

    fn a(i: u64) -> Atom {
        Atom::new(i)
    }

    #[test]
    fn identity_and_swap() {
        let id = Permutation::identity();
        assert_eq!(id.apply_atom(a(5)), a(5));
        let sw = Permutation::swap(a(1), a(2));
        assert_eq!(sw.apply_atom(a(1)), a(2));
        assert_eq!(sw.apply_atom(a(2)), a(1));
        assert_eq!(sw.apply_atom(a(3)), a(3));
        assert_eq!(Permutation::swap(a(1), a(1)), id);
    }

    #[test]
    fn compose_and_inverse() {
        let s1 = Permutation::swap(a(1), a(2));
        let s2 = Permutation::swap(a(2), a(3));
        let c = s1.compose(&s2); // apply s2 first: 2→3, then s1: 3→3; so 2→3
        assert_eq!(c.apply_atom(a(1)), a(2)); // 1 →(s2) 1 →(s1) 2
        assert_eq!(c.apply_atom(a(2)), a(3)); // 2 →(s2) 3 →(s1) 3
        assert_eq!(c.apply_atom(a(3)), a(1)); // 3 →(s2) 2 →(s1) 1
        let inv = c.inverse();
        assert_eq!(inv.compose(&c), Permutation::identity());
        assert_eq!(c.compose(&inv), Permutation::identity());
    }

    #[test]
    #[should_panic(expected = "domain and range differ")]
    fn non_bijection_rejected() {
        let _ = Permutation::from_pairs([(a(1), a(2))]);
    }

    #[test]
    fn all_permutations_count() {
        assert_eq!(all_permutations(&[]).len(), 1);
        assert_eq!(all_permutations(&[a(1)]).len(), 1);
        assert_eq!(all_permutations(&[a(1), a(2), a(3)]).len(), 6);
        // all distinct
        let perms = all_permutations(&[a(1), a(2), a(3), a(4)]);
        let set: std::collections::BTreeSet<_> = perms.iter().map(|p| format!("{p:?}")).collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn generic_query_passes() {
        // identity query on R is generic
        let mut f = |db: &Database| Some(db.get("R"));
        let mut db = Database::empty();
        db.set("R", Instance::from_rows([[atom(1), atom(2)]]));
        let violation = find_genericity_violation(&mut f, &db, &BTreeSet::new(), &[a(10), a(11)]);
        assert!(violation.is_none());
    }

    #[test]
    fn non_generic_query_caught() {
        // a query that outputs tuples containing the *smallest* atom id is
        // not generic: it inspects atom identity
        let mut f = |db: &Database| {
            let min = db.adom().into_iter().next()?;
            Some(Instance::from_values([Value::Atom(min)]))
        };
        use crate::value::Value;
        let mut db = Database::empty();
        db.set("R", Instance::from_rows([[atom(1), atom(2)]]));
        let violation = find_genericity_violation(&mut f, &db, &BTreeSet::new(), &[]);
        assert!(violation.is_some());
    }

    #[test]
    fn constant_using_query_is_c_generic() {
        use crate::value::Value;
        let c = Atom::named("c-generic-test");
        // f outputs {c} iff R nonempty: generic w.r.t. C={c}
        let mut f = move |db: &Database| {
            if db.get("R").is_empty() {
                Some(Instance::empty())
            } else {
                Some(Instance::from_values([Value::Atom(c)]))
            }
        };
        let mut db = Database::empty();
        db.set("R", Instance::from_rows([[atom(1), atom(2)]]));
        let constants: BTreeSet<Atom> = [c].into_iter().collect();
        assert!(find_genericity_violation(&mut f, &db, &constants, &[a(9)]).is_none());
        // but without declaring c a constant it is caught
        let violation = find_genericity_violation(&mut f, &db, &BTreeSet::new(), &[]);
        // permuting adom atoms does not move c, but σ(f(d)) only moves
        // adom atoms too, so this particular f is still generic-looking
        // unless c itself is permuted; include c among fresh atoms:
        let violation2 = find_genericity_violation(&mut f, &db, &BTreeSet::new(), &[c]);
        assert!(violation.is_none());
        assert!(violation2.is_some());
    }

    #[test]
    fn domain_preservation() {
        let mut db = Database::empty();
        db.set("R", Instance::from_rows([[atom(1), atom(2)]]));
        let ok = Some(Instance::from_values([tuple([atom(2), atom(1)])]));
        let bad = Some(Instance::from_values([atom(99)]));
        let empty_c = BTreeSet::new();
        assert!(is_domain_preserving(&ok, &db, &empty_c));
        assert!(!is_domain_preserving(&bad, &db, &empty_c));
        let with_c: BTreeSet<Atom> = [Atom::new(99)].into_iter().collect();
        assert!(is_domain_preserving(&bad, &db, &with_c));
        assert!(is_domain_preserving(&None, &db, &empty_c));
    }
}
