//! Error type shared by the data-model operations.

use std::fmt;

/// Errors raised by data-model operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjectError {
    /// A value did not conform to the expected type.
    TypeMismatch {
        /// Rendered expected type.
        expected: String,
        /// Rendered offending value.
        value: String,
    },
    /// A schema referred to a relation name that the instance lacks.
    MissingRelation(String),
    /// A schema listed the same predicate name twice.
    DuplicateRelation(String),
    /// An enumeration or construction exceeded its configured bound.
    BoundExceeded {
        /// What was being enumerated.
        what: &'static str,
        /// The configured bound.
        bound: usize,
    },
    /// A flattened encoding was malformed and could not be decoded.
    MalformedEncoding(String),
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::TypeMismatch { expected, value } => {
                write!(f, "value {value} does not have type {expected}")
            }
            ObjectError::MissingRelation(name) => {
                write!(f, "database has no relation named {name:?}")
            }
            ObjectError::DuplicateRelation(name) => {
                write!(f, "schema lists relation {name:?} more than once")
            }
            ObjectError::BoundExceeded { what, bound } => {
                write!(f, "enumeration of {what} exceeded bound {bound}")
            }
            ObjectError::MalformedEncoding(msg) => {
                write!(f, "malformed flat encoding: {msg}")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

/// Result alias for data-model operations.
pub type Result<T> = std::result::Result<T, ObjectError>;
