//! Atoms — elements of the countably infinite universal domain **U**.
//!
//! The paper assumes a countably infinite domain of uninterpreted atomic
//! objects. We realize **U** as the 64-bit integers. Finitely many atoms can
//! be given human-readable names (used for the constants `C` appearing in
//! queries, for tape punctuation in examples, and for printing); names live
//! in a process-wide interner in a reserved id range so they can never
//! collide with numeric atoms allocated by workloads.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Ids at or above this bound are reserved for named atoms.
const NAMED_BASE: u64 = 1 << 62;

/// An element of the universal domain **U**.
///
/// Atoms are uninterpreted: query languages in this workspace may test atoms
/// for equality but may not inspect their ids (doing so would break
/// genericity — see [`crate::perm`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom(u64);

struct Interner {
    by_name: HashMap<String, u64>,
    by_id: HashMap<u64, String>,
    next: u64,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            by_name: HashMap::new(),
            by_id: HashMap::new(),
            next: NAMED_BASE,
        })
    })
}

impl Atom {
    /// An anonymous atom with the given id.
    ///
    /// # Panics
    /// Panics if `id` falls in the reserved named range (≥ 2⁶²); workloads
    /// have the entire range below that available.
    pub fn new(id: u64) -> Self {
        assert!(
            id < NAMED_BASE,
            "atom id {id} is in the reserved named range"
        );
        Atom(id)
    }

    /// The named atom for `name`, interning it on first use.
    ///
    /// The same name always yields the same atom within a process.
    pub fn named(name: &str) -> Self {
        let mut int = interner().lock().expect("atom interner poisoned");
        if let Some(&id) = int.by_name.get(name) {
            return Atom(id);
        }
        let id = int.next;
        int.next += 1;
        int.by_name.insert(name.to_owned(), id);
        int.by_id.insert(id, name.to_owned());
        Atom(id)
    }

    /// The raw id (stable within a process; opaque to query languages).
    pub fn id(self) -> u64 {
        self.0
    }

    /// The interned name, if this atom was created via [`Atom::named`].
    pub fn name(self) -> Option<String> {
        if self.0 < NAMED_BASE {
            return None;
        }
        interner()
            .lock()
            .expect("atom interner poisoned")
            .by_id
            .get(&self.0)
            .cloned()
    }

    /// True if this atom carries an interned name.
    pub fn is_named(self) -> bool {
        self.0 >= NAMED_BASE
    }

    /// Construct an atom directly from a raw id, including the named range.
    ///
    /// Used by permutation machinery which must be a bijection on all of
    /// **U**; not intended for building workloads.
    pub fn from_raw(id: u64) -> Self {
        Atom(id)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(name) => write!(f, "'{name}"),
            None => write!(f, "a{}", self.0),
        }
    }
}

impl From<u64> for Atom {
    fn from(id: u64) -> Self {
        Atom::new(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_atoms_roundtrip() {
        let a = Atom::new(42);
        assert_eq!(a.id(), 42);
        assert_eq!(a.name(), None);
        assert!(!a.is_named());
        assert_eq!(format!("{a}"), "a42");
    }

    #[test]
    fn named_atoms_are_interned() {
        let a = Atom::named("alice");
        let b = Atom::named("alice");
        let c = Atom::named("bob");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name().as_deref(), Some("alice"));
        assert!(a.is_named());
        assert_eq!(format!("{a}"), "'alice");
    }

    #[test]
    fn named_and_numeric_never_collide() {
        let named = Atom::named("zero");
        let numeric = Atom::new(0);
        assert_ne!(named, numeric);
    }

    #[test]
    #[should_panic(expected = "reserved named range")]
    fn reserved_range_is_rejected() {
        let _ = Atom::new(NAMED_BASE);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = [Atom::new(3), Atom::new(1), Atom::named("x"), Atom::new(2)];
        v.sort();
        assert_eq!(v[0], Atom::new(1));
        assert_eq!(v[1], Atom::new(2));
        assert_eq!(v[2], Atom::new(3));
        assert!(v[3].is_named());
    }
}
