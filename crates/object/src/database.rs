//! Schemas, instances, and database instances.
//!
//! A database schema is a sequence `⟨P1:T1, …, Pn:Tn⟩` of distinct predicate
//! names with rtypes; an instance assigns each `Pi` a finite set of objects
//! of `dom(Ti)`. Query languages in this workspace consume and produce
//! [`Instance`]s, with whole databases as named collections.

use crate::atom::Atom;
use crate::error::{ObjectError, Result};
use crate::intern::{self, FxBuildHasher, ObjRef, Pool};
use crate::rtype::{RType, Type};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Process-global source of instance mutation stamps. Every constructed
/// or mutated [`Instance`] takes a fresh stamp, so two instances (or two
/// successive states of one instance) never share a version unless one is
/// an unmutated clone of the other — which is exactly the case where
/// serving a cached index built against the older one is still correct.
static INSTANCE_VERSION: AtomicU64 = AtomicU64::new(1);

fn next_version() -> u64 {
    INSTANCE_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// An instance of a type: a finite set of objects.
///
/// Besides its members, an instance carries a *mutation version*
/// ([`Instance::version`]): an opaque stamp renewed (from a process-global
/// counter) by every mutating operation. Caches keyed on an instance's
/// contents — notably [`crate::IndexSet`] — remember the stamp they were
/// built against and rebuild on any mismatch. Unlike the length stamp it
/// replaced, the version cannot collide across a `remove` + `insert` pair
/// that leaves the cardinality unchanged. The version is identity
/// metadata, not content: equality, ordering, and hashing ignore it.
// The derived `Default` gives pristine empty instances the shared
// version 0: the fixpoint engines materialize a fresh default for every
// read of an absent relation, and those reads must agree on a stamp for
// index caches to work. This is sound because version 0 is *only*
// reachable empty — every constructor with contents and every
// successful mutation takes a fresh nonzero stamp — so any cache
// stamped 0 describes the empty relation correctly.
#[derive(Default)]
pub struct Instance {
    values: BTreeSet<Value>,
    version: u64,
    /// Interned-id sidecar: the pool ids of exactly the members, valid
    /// iff `refs.stamp == version` (mutations that cannot maintain it
    /// drop it instead). Strictly demand-driven: built the first time
    /// usage proves it pays — a membership probe against a large
    /// instance, or a run of rejected duplicate inserts (fixpoint
    /// extents) — and never eagerly on construction, so distinct-heavy
    /// enumeration results (powersets, `cons_T`) pay nothing for it.
    /// Consulted only while `USET_INTERN` is on; representation
    /// metadata, never content — equality, ordering, hashing and
    /// `Debug` ignore it.
    refs: OnceLock<Box<RefSet>>,
    /// Duplicate inserts rejected while no sidecar existed — the
    /// adaptive trigger for building one (see [`DUP_SIDECAR_AFTER`]).
    dup_rejects: u32,
}

impl Clone for Instance {
    fn clone(&self) -> Instance {
        let refs = OnceLock::new();
        // carry a current sidecar over (the engines clone extents every
        // round and immediately keep mutating them); a stale one is not
        // worth hauling along
        if let Some(rs) = self.refs.get() {
            if rs.stamp == self.version {
                let _ = refs.set(rs.clone());
            }
        }
        Instance {
            values: self.values.clone(),
            version: self.version,
            refs,
            dup_rejects: self.dup_rejects,
        }
    }
}

/// The id sidecar of an [`Instance`]: one interned [`ObjRef`] per member.
#[derive(Clone, Default)]
struct RefSet {
    /// The [`Instance::version`] this sidecar reflects.
    stamp: u64,
    ids: HashSet<ObjRef, FxBuildHasher>,
}

/// Probes against instances smaller than this never build a sidecar:
/// the plain B-tree lookup is already cheap there, and interning the
/// probe value would cost more than it saves.
const SIDECAR_PROBE_MIN: usize = 16;

/// Rejected duplicate inserts observed without a sidecar before one is
/// built. Fixpoint extents cross this within a round or two;
/// distinct-heavy enumeration results never do.
const DUP_SIDECAR_AFTER: u32 = 16;

/// Build a fresh sidecar for `values`, interning every member.
fn build_refs(values: &BTreeSet<Value>, stamp: u64) -> RefSet {
    let pool = Pool::global();
    RefSet {
        stamp,
        ids: values.iter().map(|v| pool.intern(v)).collect(),
    }
}

/// `Debug` matches the pre-sidecar derived output (values + version):
/// the sidecar is representation, not content.
impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("values", &self.values)
            .field("version", &self.version)
            .finish()
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Instance) -> bool {
        self.values == other.values
    }
}

impl Eq for Instance {}

impl PartialOrd for Instance {
    fn partial_cmp(&self, other: &Instance) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instance {
    fn cmp(&self, other: &Instance) -> std::cmp::Ordering {
        self.values.cmp(&other.values)
    }
}

impl std::hash::Hash for Instance {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.values.hash(state);
    }
}

impl Instance {
    /// The empty instance.
    pub fn empty() -> Self {
        Instance::default()
    }

    /// Build from an iterator of objects (duplicates collapse).
    pub fn from_values<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Instance {
            values: items.into_iter().collect(),
            version: next_version(),
            refs: OnceLock::new(),
            dup_rejects: 0,
        }
    }

    /// Build a flat relation instance from rows of atoms.
    pub fn from_rows<R, I>(rows: I) -> Self
    where
        R: IntoIterator<Item = Value>,
        I: IntoIterator<Item = R>,
    {
        Instance::from_values(
            rows.into_iter()
                .map(|r| Value::Tuple(r.into_iter().collect())),
        )
    }

    /// The sidecar, iff it is live: interning on and stamp current.
    fn valid_refs(&self) -> Option<&RefSet> {
        if !intern::enabled() {
            return None;
        }
        self.refs
            .get()
            .map(|b| &**b)
            .filter(|rs| rs.stamp == self.version)
    }

    /// True iff a mutation can maintain the sidecar in place. A sidecar
    /// that can no longer follow (stale stamp, or the knob turned off
    /// mid-stream) is discarded here rather than ever serving wrong ids,
    /// which also lets a later probe rebuild it against fresh contents.
    fn live_sidecar(&mut self) -> bool {
        match self.refs.get() {
            Some(rs) if rs.stamp == self.version && intern::enabled() => true,
            Some(_) => {
                self.refs = OnceLock::new();
                false
            }
            None => false,
        }
    }

    /// Adaptive sidecar trigger: count duplicate inserts rejected the
    /// slow way, and build the sidecar once they prove this instance is
    /// a dedup-heavy accumulator (a fixpoint extent) rather than a
    /// distinct-heavy enumeration result.
    fn note_duplicate(&mut self) {
        if !intern::enabled() {
            return;
        }
        self.dup_rejects = self.dup_rejects.saturating_add(1);
        if self.dup_rejects >= DUP_SIDECAR_AFTER {
            self.dup_rejects = 0;
            self.refs = OnceLock::new();
            let _ = self
                .refs
                .set(Box::new(build_refs(&self.values, self.version)));
        }
    }

    /// The instance's current mutation version: an opaque stamp that
    /// changes on every mutation and never repeats across distinct
    /// logical states in one process. Two reads returning the same stamp
    /// guarantee the contents did not change in between; a cache holding
    /// data derived from this instance is stale iff the stamp moved.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The member objects, in canonical order.
    pub fn values(&self) -> &BTreeSet<Value> {
        &self.values
    }

    /// Number of member objects.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the instance has no members.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Insert an object; returns true if newly added.
    pub fn insert(&mut self, v: Value) -> bool {
        if self.live_sidecar() {
            let id = Pool::global().intern(&v);
            let rs = self.refs.get_mut().expect("live sidecar");
            if rs.ids.contains(&id) {
                debug_assert!(self.values.contains(&v));
                return false;
            }
            self.values.insert(v);
            self.version = next_version();
            let rs = self.refs.get_mut().expect("live sidecar");
            rs.ids.insert(id);
            rs.stamp = self.version;
            return true;
        }
        let added = self.values.insert(v);
        if added {
            self.version = next_version();
        } else {
            self.note_duplicate();
        }
        added
    }

    /// Insert by reference, cloning `v` only if it is actually new —
    /// the fixpoint engines' hot path, where the overwhelmingly common
    /// case is a duplicate candidate that should cost one lookup and no
    /// allocation.
    pub fn insert_ref(&mut self, v: &Value) -> bool {
        if self.live_sidecar() {
            let id = Pool::global().intern(v);
            let rs = self.refs.get_mut().expect("live sidecar");
            if rs.ids.contains(&id) {
                debug_assert!(self.values.contains(v));
                return false;
            }
            self.values.insert(v.clone());
            self.version = next_version();
            let rs = self.refs.get_mut().expect("live sidecar");
            rs.ids.insert(id);
            rs.stamp = self.version;
            return true;
        }
        if self.values.contains(v) {
            self.note_duplicate();
            return false;
        }
        self.values.insert(v.clone());
        self.version = next_version();
        true
    }

    /// Remove an object; returns true if it was present.
    pub fn remove(&mut self, v: &Value) -> bool {
        if self.live_sidecar() {
            let id = Pool::global().intern(v);
            let rs = self.refs.get_mut().expect("live sidecar");
            if !rs.ids.contains(&id) {
                debug_assert!(!self.values.contains(v));
                return false;
            }
            self.values.remove(v);
            self.version = next_version();
            let rs = self.refs.get_mut().expect("live sidecar");
            rs.ids.remove(&id);
            rs.stamp = self.version;
            return true;
        }
        let removed = self.values.remove(v);
        if removed {
            self.version = next_version();
        }
        removed
    }

    /// Membership test. Against a large instance this is one intern of
    /// `v` plus an O(1) id lookup instead of O(log n) deep comparisons
    /// down the tree; the first such probe builds the sidecar. Small
    /// instances answer from the B-tree directly — interning the probe
    /// would cost more than the lookup it replaces.
    pub fn contains(&self, v: &Value) -> bool {
        if intern::enabled() && self.values.len() >= SIDECAR_PROBE_MIN {
            let rs = self
                .refs
                .get_or_init(|| Box::new(build_refs(&self.values, self.version)));
            if rs.stamp == self.version {
                return rs.ids.contains(&Pool::global().intern(v));
            }
            // stale sidecar: the next mutation discards it; answer plainly
        }
        self.values.contains(v)
    }

    /// Membership by pool id, when a sidecar can answer it — `None`
    /// means the caller must fall back to [`Instance::contains`]. This
    /// is the probe path that lets a negative literal test a bound row
    /// without materializing the row as a fresh `Value::Tuple`; like
    /// [`Instance::contains`], the first probe against a large instance
    /// builds the sidecar.
    pub fn contains_ref(&self, id: ObjRef) -> Option<bool> {
        if !intern::enabled() {
            return None;
        }
        if self.values.len() >= SIDECAR_PROBE_MIN {
            let rs = self
                .refs
                .get_or_init(|| Box::new(build_refs(&self.values, self.version)));
            if rs.stamp == self.version {
                return Some(rs.ids.contains(&id));
            }
            return None;
        }
        self.valid_refs().map(|rs| rs.ids.contains(&id))
    }

    /// Iterate members in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }

    /// Combine the sidecars of a binary set operation: when both sides
    /// are live the result's ids come from the same O(1) id-set
    /// operation (no re-interning). Otherwise the result starts without
    /// a sidecar — demand on the result decides whether it ever grows
    /// one, the same as any freshly built instance.
    fn combined_refs(
        &self,
        other: &Instance,
        stamp: u64,
        op: impl Fn(
            &HashSet<ObjRef, FxBuildHasher>,
            &HashSet<ObjRef, FxBuildHasher>,
        ) -> HashSet<ObjRef, FxBuildHasher>,
    ) -> OnceLock<Box<RefSet>> {
        let out = OnceLock::new();
        if let (Some(a), Some(b)) = (self.valid_refs(), other.valid_refs()) {
            let _ = out.set(Box::new(RefSet {
                stamp,
                ids: op(&a.ids, &b.ids),
            }));
        }
        out
    }

    /// Union with another instance.
    pub fn union(&self, other: &Instance) -> Instance {
        // must stay: the result instance owns its members (use `absorb`
        // for the in-place accumulating shape)
        let values: BTreeSet<Value> = self.values.union(&other.values).cloned().collect();
        let version = next_version();
        let refs = self.combined_refs(other, version, |a, b| a.union(b).copied().collect());
        Instance {
            values,
            version,
            refs,
            dup_rejects: 0,
        }
    }

    /// Union `other` into `self` in place, reusing the larger side's
    /// allocation (sides are swapped wholesale when `other` is bigger,
    /// so the work is proportional to the *smaller* side — the shape
    /// the invention semantics' per-level accumulation needs, where one
    /// side keeps growing and the other is a small increment).
    pub fn absorb(&mut self, mut other: Instance) {
        if other.values.len() > self.values.len() {
            std::mem::swap(self, &mut other);
        }
        for v in other.values {
            self.insert(v);
        }
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &Instance) -> Instance {
        // must stay: the result instance owns its members
        let values: BTreeSet<Value> = self.values.difference(&other.values).cloned().collect();
        let version = next_version();
        let refs = self.combined_refs(other, version, |a, b| a.difference(b).copied().collect());
        Instance {
            values,
            version,
            refs,
            dup_rejects: 0,
        }
    }

    /// Intersection with another instance.
    pub fn intersection(&self, other: &Instance) -> Instance {
        // must stay: the result instance owns its members
        let values: BTreeSet<Value> = self.values.intersection(&other.values).cloned().collect();
        let version = next_version();
        let refs = self.combined_refs(other, version, |a, b| a.intersection(b).copied().collect());
        Instance {
            values,
            version,
            refs,
            dup_rejects: 0,
        }
    }

    /// True iff every member is a subset of `other`.
    pub fn is_subset(&self, other: &Instance) -> bool {
        self.values.is_subset(&other.values)
    }

    /// The active domain: all atoms used in any member object.
    pub fn adom(&self) -> BTreeSet<Atom> {
        let mut out = BTreeSet::new();
        for v in &self.values {
            v.collect_adom(&mut out);
        }
        out
    }

    /// Check that every member conforms to `ty`.
    pub fn check_rtype(&self, ty: &RType) -> Result<()> {
        for v in &self.values {
            if !ty.contains(v) {
                return Err(ObjectError::TypeMismatch {
                    expected: ty.to_string(),
                    value: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Apply an atom renaming to every member.
    pub fn map_atoms(&self, f: &mut impl FnMut(Atom) -> Atom) -> Instance {
        Instance::from_values(self.values.iter().map(|v| v.map_atoms(f)))
    }

    /// View this instance as a single set object `{v1, …, vn}`.
    pub fn to_set_value(&self) -> Value {
        // must stay: the set object owns its members
        Value::Set(self.values.clone())
    }

    /// Build an instance from a set object's members.
    pub fn from_set_value(v: &Value) -> Option<Instance> {
        v.as_set().map(|s| {
            Instance {
                // must stay: the instance owns its members
                values: s.clone(),
                version: next_version(),
                refs: OnceLock::new(),
                dup_rejects: 0,
            }
        })
    }

    /// Total structural size of all members.
    pub fn total_size(&self) -> usize {
        self.values.iter().map(Value::size).sum()
    }
}

impl FromIterator<Value> for Instance {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Instance::from_values(iter)
    }
}

impl IntoIterator for Instance {
    type Item = Value;
    type IntoIter = std::collections::btree_set::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.into_iter()
    }
}

impl<'a> IntoIterator for &'a Instance {
    type Item = &'a Value;
    type IntoIter = std::collections::btree_set::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

/// A database schema: an ordered list of distinct relation names with rtypes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    entries: Vec<(String, RType)>,
}

impl Schema {
    /// Build a schema, rejecting duplicate names.
    pub fn new<I>(entries: I) -> Result<Schema>
    where
        I: IntoIterator<Item = (String, RType)>,
    {
        let entries: Vec<_> = entries.into_iter().collect();
        let mut seen = BTreeSet::new();
        for (name, _) in &entries {
            if !seen.insert(name.clone()) {
                return Err(ObjectError::DuplicateRelation(name.clone()));
            }
        }
        Ok(Schema { entries })
    }

    /// A schema of flat relations given as `(name, arity)` pairs.
    ///
    /// Following the paper, a schema entry `P : T` gives the type of the
    /// relation's *elements*; the relation itself is a finite subset of
    /// `dom(T)`. A flat relation of arity `k` therefore has entry type
    /// `[U, …, U]` (k components).
    pub fn flat<I>(relations: I) -> Schema
    where
        I: IntoIterator<Item = (&'static str, usize)>,
    {
        Schema {
            entries: relations
                .into_iter()
                .map(|(n, a)| (n.to_owned(), Type::atomic_tuple(a).to_rtype()))
                .collect(),
        }
    }

    /// The (name, rtype) entries in order.
    pub fn entries(&self) -> &[(String, RType)] {
        &self.entries
    }

    /// Look up the rtype of a relation.
    pub fn rtype_of(&self, name: &str) -> Option<&RType> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// True iff every relation element type is flat (no set construct) —
    /// the input/output discipline the paper imposes on the classes C and E.
    pub fn is_flat(&self) -> bool {
        fn flat(t: &RType) -> bool {
            match t {
                RType::Atomic => true,
                RType::Obj | RType::Set(_) => false,
                RType::Tuple(items) => items.iter().all(flat),
            }
        }
        self.entries.iter().all(|(_, t)| flat(t))
    }

    /// Names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }
}

/// A database instance: a mapping from relation names to instances.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Database {
    relations: BTreeMap<String, Instance>,
}

impl Database {
    /// The empty database.
    pub fn empty() -> Self {
        Database::default()
    }

    /// Build from (name, instance) pairs; later entries overwrite earlier.
    pub fn from_relations<I>(relations: I) -> Self
    where
        I: IntoIterator<Item = (String, Instance)>,
    {
        Database {
            relations: relations.into_iter().collect(),
        }
    }

    /// Insert or replace a relation.
    pub fn set(&mut self, name: impl Into<String>, inst: Instance) {
        self.relations.insert(name.into(), inst);
    }

    /// Fetch a relation; absent relations read as empty (the convention used
    /// by the fixpoint languages). This deep-clones the whole relation —
    /// hot paths should borrow via [`Database::get_ref`] instead.
    pub fn get(&self, name: &str) -> Instance {
        self.relations.get(name).cloned().unwrap_or_default()
    }

    /// Borrow a relation without cloning; `None` if absent.
    pub fn get_ref(&self, name: &str) -> Option<&Instance> {
        self.relations.get(name)
    }

    /// Insert a single row into a relation (creating the relation if
    /// absent); returns true if the row is new. This is the hot-path
    /// insertion the fixpoint engines use — unlike `get`/`set` it never
    /// clones the instance, and duplicate rows (the common case inside a
    /// fixpoint) cost one lookup and no allocation.
    pub fn insert_row(&mut self, name: &str, row: &Value) -> bool {
        if let Some(rel) = self.relations.get_mut(name) {
            return rel.insert_ref(row);
        }
        self.relations
            // must stay: only the first row of a brand-new relation clones
            .insert(name.to_owned(), Instance::from_values([row.clone()]));
        true
    }

    /// Remove a single row from a relation; returns true if it was
    /// present. The inverse of [`Database::insert_row`] — the fixpoint
    /// engines use it to roll an incomplete round back to the last
    /// consistent state when a resource budget trips mid-round, and the
    /// maintenance engine uses it to retract facts. A relation whose last
    /// row is removed is dropped entirely, so a database that gains and
    /// then loses rows compares equal to one that never saw them
    /// (`Database::PartialEq` distinguishes present-but-empty from
    /// absent).
    pub fn remove_row(&mut self, name: &str, row: &Value) -> bool {
        let Some(rel) = self.relations.get_mut(name) else {
            return false;
        };
        let removed = rel.remove(row);
        if removed && rel.is_empty() {
            self.relations.remove(name);
        }
        removed
    }

    /// Fetch a relation, erroring if absent.
    pub fn get_required(&self, name: &str) -> Result<&Instance> {
        self.relations
            .get(name)
            .ok_or_else(|| ObjectError::MissingRelation(name.to_owned()))
    }

    /// True if the relation is explicitly present.
    pub fn contains_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterate (name, instance) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Instance)> {
        self.relations.iter().map(|(n, i)| (n.as_str(), i))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if no relations are present.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The active domain of the whole database.
    pub fn adom(&self) -> BTreeSet<Atom> {
        let mut out = BTreeSet::new();
        for inst in self.relations.values() {
            for v in inst.iter() {
                v.collect_adom(&mut out);
            }
        }
        out
    }

    /// Validate this database against a schema (relations present and
    /// rtype-conformant; extra relations are rejected).
    pub fn check_schema(&self, schema: &Schema) -> Result<()> {
        for (name, ty) in schema.entries() {
            let inst = self.get_required(name)?;
            inst.check_rtype(ty)?;
        }
        for name in self.relations.keys() {
            if schema.rtype_of(name).is_none() {
                return Err(ObjectError::MissingRelation(format!(
                    "{name} (present in database but absent from schema)"
                )));
            }
        }
        Ok(())
    }

    /// Apply an atom renaming to every relation.
    pub fn map_atoms(&self, f: &mut impl FnMut(Atom) -> Atom) -> Database {
        Database {
            relations: self
                .relations
                .iter()
                .map(|(n, i)| (n.clone(), i.map_atoms(f)))
                .collect(),
        }
    }

    /// Total structural size across relations (the `‖d‖` of the paper's
    /// complexity definitions, up to a constant factor).
    pub fn total_size(&self) -> usize {
        self.relations.values().map(Instance::total_size).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, inst) in &self.relations {
            writeln!(f, "{name} = {inst}")?;
        }
        Ok(())
    }
}

/// A query function signature: flat schema in, flat type out (the discipline
/// the paper imposes on all languages studied).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySignature {
    /// Input schema (must be flat for the paper's classes C and E).
    pub input: Schema,
    /// Output type.
    pub output: Type,
}

impl QuerySignature {
    /// A signature with flat input relations and flat relational output of
    /// the given arity (output element type `[U, …, U]`).
    pub fn flat<I>(inputs: I, output_arity: usize) -> QuerySignature
    where
        I: IntoIterator<Item = (&'static str, usize)>,
    {
        QuerySignature {
            input: Schema::flat(inputs),
            output: Type::atomic_tuple(output_arity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, set, tuple};

    fn sample_db() -> Database {
        let mut db = Database::empty();
        db.set(
            "R",
            Instance::from_rows([[atom(1), atom(2)], [atom(2), atom(3)]]),
        );
        db.set("S", Instance::from_values([atom(4)]));
        db
    }

    #[test]
    fn instance_set_operations() {
        let a = Instance::from_values([atom(1), atom(2)]);
        let b = Instance::from_values([atom(2), atom(3)]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.difference(&b), Instance::from_values([atom(1)]));
        assert_eq!(a.intersection(&b), Instance::from_values([atom(2)]));
        assert!(Instance::empty().is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn adom_spans_relations() {
        let db = sample_db();
        let adom = db.adom();
        assert_eq!(adom.len(), 4);
        assert!(adom.contains(&Atom::new(4)));
    }

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new([
            ("R".to_owned(), RType::flat_relation(2)),
            ("R".to_owned(), RType::flat_relation(1)),
        ])
        .unwrap_err();
        assert!(matches!(err, ObjectError::DuplicateRelation(_)));
    }

    #[test]
    fn schema_check_catches_type_errors() {
        let schema = Schema::flat([("R", 2), ("S", 1)]);
        assert!(schema.is_flat());
        let mut db = sample_db();
        // S holds bare atoms, not 1-tuples: flat {[U]} should reject it
        assert!(db.check_schema(&schema).is_err());
        db.set("S", Instance::from_rows([[atom(4)]]));
        db.check_schema(&schema).unwrap();
        // extra relation rejected
        db.set("T", Instance::empty());
        assert!(db.check_schema(&schema).is_err());
    }

    #[test]
    fn missing_relation_reads_empty_but_required_errors() {
        let db = sample_db();
        assert!(db.get("missing").is_empty());
        assert!(db.get_required("missing").is_err());
    }

    #[test]
    fn instance_rtype_check() {
        let het = Instance::from_values([atom(1), set([atom(2)]), tuple([atom(3), atom(4)])]);
        het.check_rtype(&RType::Obj).unwrap();
        assert!(het.check_rtype(&RType::Atomic).is_err());
    }

    #[test]
    fn set_value_roundtrip() {
        let inst = Instance::from_values([atom(1), set([atom(2)])]);
        let v = inst.to_set_value();
        assert_eq!(Instance::from_set_value(&v), Some(inst));
        assert_eq!(Instance::from_set_value(&atom(1)), None);
    }

    #[test]
    fn version_moves_on_every_mutation_even_at_equal_len() {
        let mut inst = Instance::from_values([atom(1), atom(2)]);
        let v0 = inst.version();
        // A remove + insert that restores the cardinality must still be
        // observable through the stamp — this is the collision the old
        // length-based staleness check could not see.
        assert!(inst.remove(&atom(2)));
        let v1 = inst.version();
        assert_ne!(v0, v1);
        assert!(inst.insert(atom(3)));
        let v2 = inst.version();
        assert_ne!(v1, v2);
        assert_eq!(inst.len(), 2);
        // No-op mutations leave the stamp alone.
        assert!(!inst.insert(atom(3)));
        assert!(!inst.remove(&atom(99)));
        assert_eq!(inst.version(), v2);
    }

    #[test]
    fn version_is_identity_not_content() {
        let a = Instance::from_values([atom(1)]);
        let b = Instance::from_values([atom(1)]);
        assert_ne!(a.version(), b.version());
        assert_eq!(a, b); // equality ignores the stamp
        let c = a.clone();
        assert_eq!(a.version(), c.version()); // unmutated clone shares it
    }

    #[test]
    fn remove_row_prunes_empty_relation() {
        let mut db = Database::empty();
        db.insert_row("R", &tuple([atom(1), atom(2)]));
        assert!(db.contains_relation("R"));
        assert!(db.remove_row("R", &tuple([atom(1), atom(2)])));
        // The emptied relation disappears, so this database compares
        // equal to one that never held the row.
        assert!(!db.contains_relation("R"));
        assert_eq!(db, Database::empty());
        // Removing from an absent relation is a clean no-op.
        assert!(!db.remove_row("R", &tuple([atom(1), atom(2)])));
    }

    /// The id sidecar must answer membership exactly as the tree does,
    /// across every mutation path and both knob settings.
    #[test]
    fn sidecar_membership_agrees_with_tree() {
        for on in [true, false] {
            let was = crate::intern::enabled();
            crate::intern::set_enabled(on);
            let mut inst = Instance::from_values([atom(1), set([atom(2)])]);
            assert!(inst.contains(&atom(1)));
            assert!(!inst.contains(&atom(9)));
            assert!(inst.insert(tuple([atom(3), atom(4)])));
            assert!(!inst.insert(tuple([atom(3), atom(4)])));
            assert!(inst.contains(&tuple([atom(3), atom(4)])));
            assert!(inst.remove(&atom(1)));
            assert!(!inst.remove(&atom(1)));
            assert!(!inst.contains(&atom(1)));
            assert!(inst.insert_ref(&set([atom(2), atom(5)])));
            assert!(!inst.insert_ref(&set([atom(2), atom(5)])));
            assert_eq!(inst.len(), 3);
            // A pristine default grows into sidecar maintenance too.
            let mut fresh = Instance::empty();
            assert!(fresh.insert(atom(42)));
            assert!(fresh.contains(&atom(42)));
            crate::intern::set_enabled(was);
        }
    }

    /// Set operations keep the sidecar consistent whether derived from
    /// both sides' ids or rebuilt.
    #[test]
    fn sidecar_survives_set_operations() {
        let a = Instance::from_values([atom(1), atom(2), set([atom(7)])]);
        let b = Instance::from_values([atom(2), atom(3)]);
        let u = a.union(&b);
        assert!(u.contains(&atom(1)) && u.contains(&atom(3)) && u.contains(&set([atom(7)])));
        assert!(!u.contains(&atom(4)));
        let d = a.difference(&b);
        assert!(d.contains(&atom(1)) && !d.contains(&atom(2)));
        let i = a.intersection(&b);
        assert!(i.contains(&atom(2)) && !i.contains(&atom(1)));
    }

    #[test]
    fn absorb_is_union_into_reusing_larger_side() {
        let mut big = Instance::from_values([atom(1), atom(2), atom(3)]);
        let small = Instance::from_values([atom(3), atom(4)]);
        big.absorb(small);
        assert_eq!(
            big,
            Instance::from_values([atom(1), atom(2), atom(3), atom(4)])
        );
        // The swap direction: absorbing a larger instance into a
        // smaller one must end with the same union.
        let mut tiny = Instance::from_values([atom(9)]);
        let large = Instance::from_values([atom(1), atom(2), atom(3)]);
        tiny.absorb(large);
        assert_eq!(
            tiny,
            Instance::from_values([atom(1), atom(2), atom(3), atom(9)])
        );
        assert!(tiny.contains(&atom(9)), "sidecar follows the swap");
        // Absorbing emptiness in either direction is the identity.
        let mut e = Instance::empty();
        e.absorb(Instance::from_values([atom(5)]));
        assert_eq!(e, Instance::from_values([atom(5)]));
        e.absorb(Instance::empty());
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn database_map_atoms_is_per_relation() {
        let db = sample_db();
        let shifted = db.map_atoms(&mut |a| Atom::new(a.id() + 100));
        assert!(shifted.get("R").contains(&tuple([atom(101), atom(102)])));
        assert!(shifted.get("S").contains(&atom(104)));
    }
}
