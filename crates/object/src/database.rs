//! Schemas, instances, and database instances.
//!
//! A database schema is a sequence `⟨P1:T1, …, Pn:Tn⟩` of distinct predicate
//! names with rtypes; an instance assigns each `Pi` a finite set of objects
//! of `dom(Ti)`. Query languages in this workspace consume and produce
//! [`Instance`]s, with whole databases as named collections.

use crate::atom::Atom;
use crate::error::{ObjectError, Result};
use crate::rtype::{RType, Type};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global source of instance mutation stamps. Every constructed
/// or mutated [`Instance`] takes a fresh stamp, so two instances (or two
/// successive states of one instance) never share a version unless one is
/// an unmutated clone of the other — which is exactly the case where
/// serving a cached index built against the older one is still correct.
static INSTANCE_VERSION: AtomicU64 = AtomicU64::new(1);

fn next_version() -> u64 {
    INSTANCE_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// An instance of a type: a finite set of objects.
///
/// Besides its members, an instance carries a *mutation version*
/// ([`Instance::version`]): an opaque stamp renewed (from a process-global
/// counter) by every mutating operation. Caches keyed on an instance's
/// contents — notably [`crate::IndexSet`] — remember the stamp they were
/// built against and rebuild on any mismatch. Unlike the length stamp it
/// replaced, the version cannot collide across a `remove` + `insert` pair
/// that leaves the cardinality unchanged. The version is identity
/// metadata, not content: equality, ordering, and hashing ignore it.
// The derived `Default` gives pristine empty instances the shared
// version 0: the fixpoint engines materialize a fresh default for every
// read of an absent relation, and those reads must agree on a stamp for
// index caches to work. This is sound because version 0 is *only*
// reachable empty — every constructor with contents and every
// successful mutation takes a fresh nonzero stamp — so any cache
// stamped 0 describes the empty relation correctly.
#[derive(Clone, Debug, Default)]
pub struct Instance {
    values: BTreeSet<Value>,
    version: u64,
}

impl PartialEq for Instance {
    fn eq(&self, other: &Instance) -> bool {
        self.values == other.values
    }
}

impl Eq for Instance {}

impl PartialOrd for Instance {
    fn partial_cmp(&self, other: &Instance) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instance {
    fn cmp(&self, other: &Instance) -> std::cmp::Ordering {
        self.values.cmp(&other.values)
    }
}

impl std::hash::Hash for Instance {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.values.hash(state);
    }
}

impl Instance {
    /// The empty instance.
    pub fn empty() -> Self {
        Instance::default()
    }

    /// Build from an iterator of objects (duplicates collapse).
    pub fn from_values<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Instance {
            values: items.into_iter().collect(),
            version: next_version(),
        }
    }

    /// Build a flat relation instance from rows of atoms.
    pub fn from_rows<R, I>(rows: I) -> Self
    where
        R: IntoIterator<Item = Value>,
        I: IntoIterator<Item = R>,
    {
        Instance {
            values: rows
                .into_iter()
                .map(|r| Value::Tuple(r.into_iter().collect()))
                .collect(),
            version: next_version(),
        }
    }

    /// The instance's current mutation version: an opaque stamp that
    /// changes on every mutation and never repeats across distinct
    /// logical states in one process. Two reads returning the same stamp
    /// guarantee the contents did not change in between; a cache holding
    /// data derived from this instance is stale iff the stamp moved.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The member objects, in canonical order.
    pub fn values(&self) -> &BTreeSet<Value> {
        &self.values
    }

    /// Number of member objects.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the instance has no members.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Insert an object; returns true if newly added.
    pub fn insert(&mut self, v: Value) -> bool {
        let added = self.values.insert(v);
        if added {
            self.version = next_version();
        }
        added
    }

    /// Remove an object; returns true if it was present.
    pub fn remove(&mut self, v: &Value) -> bool {
        let removed = self.values.remove(v);
        if removed {
            self.version = next_version();
        }
        removed
    }

    /// Membership test.
    pub fn contains(&self, v: &Value) -> bool {
        self.values.contains(v)
    }

    /// Iterate members in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }

    /// Union with another instance.
    pub fn union(&self, other: &Instance) -> Instance {
        Instance {
            values: self.values.union(&other.values).cloned().collect(),
            version: next_version(),
        }
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &Instance) -> Instance {
        Instance {
            values: self.values.difference(&other.values).cloned().collect(),
            version: next_version(),
        }
    }

    /// Intersection with another instance.
    pub fn intersection(&self, other: &Instance) -> Instance {
        Instance {
            values: self.values.intersection(&other.values).cloned().collect(),
            version: next_version(),
        }
    }

    /// True iff every member is a subset of `other`.
    pub fn is_subset(&self, other: &Instance) -> bool {
        self.values.is_subset(&other.values)
    }

    /// The active domain: all atoms used in any member object.
    pub fn adom(&self) -> BTreeSet<Atom> {
        let mut out = BTreeSet::new();
        for v in &self.values {
            v.collect_adom(&mut out);
        }
        out
    }

    /// Check that every member conforms to `ty`.
    pub fn check_rtype(&self, ty: &RType) -> Result<()> {
        for v in &self.values {
            if !ty.contains(v) {
                return Err(ObjectError::TypeMismatch {
                    expected: ty.to_string(),
                    value: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Apply an atom renaming to every member.
    pub fn map_atoms(&self, f: &mut impl FnMut(Atom) -> Atom) -> Instance {
        Instance {
            values: self.values.iter().map(|v| v.map_atoms(f)).collect(),
            version: next_version(),
        }
    }

    /// View this instance as a single set object `{v1, …, vn}`.
    pub fn to_set_value(&self) -> Value {
        Value::Set(self.values.clone())
    }

    /// Build an instance from a set object's members.
    pub fn from_set_value(v: &Value) -> Option<Instance> {
        v.as_set().map(|s| Instance {
            values: s.clone(),
            version: next_version(),
        })
    }

    /// Total structural size of all members.
    pub fn total_size(&self) -> usize {
        self.values.iter().map(Value::size).sum()
    }
}

impl FromIterator<Value> for Instance {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Instance::from_values(iter)
    }
}

impl IntoIterator for Instance {
    type Item = Value;
    type IntoIter = std::collections::btree_set::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.into_iter()
    }
}

impl<'a> IntoIterator for &'a Instance {
    type Item = &'a Value;
    type IntoIter = std::collections::btree_set::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

/// A database schema: an ordered list of distinct relation names with rtypes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    entries: Vec<(String, RType)>,
}

impl Schema {
    /// Build a schema, rejecting duplicate names.
    pub fn new<I>(entries: I) -> Result<Schema>
    where
        I: IntoIterator<Item = (String, RType)>,
    {
        let entries: Vec<_> = entries.into_iter().collect();
        let mut seen = BTreeSet::new();
        for (name, _) in &entries {
            if !seen.insert(name.clone()) {
                return Err(ObjectError::DuplicateRelation(name.clone()));
            }
        }
        Ok(Schema { entries })
    }

    /// A schema of flat relations given as `(name, arity)` pairs.
    ///
    /// Following the paper, a schema entry `P : T` gives the type of the
    /// relation's *elements*; the relation itself is a finite subset of
    /// `dom(T)`. A flat relation of arity `k` therefore has entry type
    /// `[U, …, U]` (k components).
    pub fn flat<I>(relations: I) -> Schema
    where
        I: IntoIterator<Item = (&'static str, usize)>,
    {
        Schema {
            entries: relations
                .into_iter()
                .map(|(n, a)| (n.to_owned(), Type::atomic_tuple(a).to_rtype()))
                .collect(),
        }
    }

    /// The (name, rtype) entries in order.
    pub fn entries(&self) -> &[(String, RType)] {
        &self.entries
    }

    /// Look up the rtype of a relation.
    pub fn rtype_of(&self, name: &str) -> Option<&RType> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// True iff every relation element type is flat (no set construct) —
    /// the input/output discipline the paper imposes on the classes C and E.
    pub fn is_flat(&self) -> bool {
        fn flat(t: &RType) -> bool {
            match t {
                RType::Atomic => true,
                RType::Obj | RType::Set(_) => false,
                RType::Tuple(items) => items.iter().all(flat),
            }
        }
        self.entries.iter().all(|(_, t)| flat(t))
    }

    /// Names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }
}

/// A database instance: a mapping from relation names to instances.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Database {
    relations: BTreeMap<String, Instance>,
}

impl Database {
    /// The empty database.
    pub fn empty() -> Self {
        Database::default()
    }

    /// Build from (name, instance) pairs; later entries overwrite earlier.
    pub fn from_relations<I>(relations: I) -> Self
    where
        I: IntoIterator<Item = (String, Instance)>,
    {
        Database {
            relations: relations.into_iter().collect(),
        }
    }

    /// Insert or replace a relation.
    pub fn set(&mut self, name: impl Into<String>, inst: Instance) {
        self.relations.insert(name.into(), inst);
    }

    /// Fetch a relation; absent relations read as empty (the convention used
    /// by the fixpoint languages).
    pub fn get(&self, name: &str) -> Instance {
        self.relations.get(name).cloned().unwrap_or_default()
    }

    /// Borrow a relation without cloning; `None` if absent.
    pub fn get_ref(&self, name: &str) -> Option<&Instance> {
        self.relations.get(name)
    }

    /// Insert a single row into a relation (creating the relation if
    /// absent); returns true if the row is new. This is the hot-path
    /// insertion the fixpoint engines use — unlike `get`/`set` it never
    /// clones the instance, and duplicate rows (the common case inside a
    /// fixpoint) cost one lookup and no allocation.
    pub fn insert_row(&mut self, name: &str, row: &Value) -> bool {
        if let Some(rel) = self.relations.get_mut(name) {
            if rel.contains(row) {
                return false;
            }
            return rel.insert(row.clone());
        }
        self.relations
            .insert(name.to_owned(), Instance::from_values([row.clone()]));
        true
    }

    /// Remove a single row from a relation; returns true if it was
    /// present. The inverse of [`Database::insert_row`] — the fixpoint
    /// engines use it to roll an incomplete round back to the last
    /// consistent state when a resource budget trips mid-round, and the
    /// maintenance engine uses it to retract facts. A relation whose last
    /// row is removed is dropped entirely, so a database that gains and
    /// then loses rows compares equal to one that never saw them
    /// (`Database::PartialEq` distinguishes present-but-empty from
    /// absent).
    pub fn remove_row(&mut self, name: &str, row: &Value) -> bool {
        let Some(rel) = self.relations.get_mut(name) else {
            return false;
        };
        let removed = rel.remove(row);
        if removed && rel.is_empty() {
            self.relations.remove(name);
        }
        removed
    }

    /// Fetch a relation, erroring if absent.
    pub fn get_required(&self, name: &str) -> Result<&Instance> {
        self.relations
            .get(name)
            .ok_or_else(|| ObjectError::MissingRelation(name.to_owned()))
    }

    /// True if the relation is explicitly present.
    pub fn contains_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterate (name, instance) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Instance)> {
        self.relations.iter().map(|(n, i)| (n.as_str(), i))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if no relations are present.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The active domain of the whole database.
    pub fn adom(&self) -> BTreeSet<Atom> {
        let mut out = BTreeSet::new();
        for inst in self.relations.values() {
            for v in inst.iter() {
                v.collect_adom(&mut out);
            }
        }
        out
    }

    /// Validate this database against a schema (relations present and
    /// rtype-conformant; extra relations are rejected).
    pub fn check_schema(&self, schema: &Schema) -> Result<()> {
        for (name, ty) in schema.entries() {
            let inst = self.get_required(name)?;
            inst.check_rtype(ty)?;
        }
        for name in self.relations.keys() {
            if schema.rtype_of(name).is_none() {
                return Err(ObjectError::MissingRelation(format!(
                    "{name} (present in database but absent from schema)"
                )));
            }
        }
        Ok(())
    }

    /// Apply an atom renaming to every relation.
    pub fn map_atoms(&self, f: &mut impl FnMut(Atom) -> Atom) -> Database {
        Database {
            relations: self
                .relations
                .iter()
                .map(|(n, i)| (n.clone(), i.map_atoms(f)))
                .collect(),
        }
    }

    /// Total structural size across relations (the `‖d‖` of the paper's
    /// complexity definitions, up to a constant factor).
    pub fn total_size(&self) -> usize {
        self.relations.values().map(Instance::total_size).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, inst) in &self.relations {
            writeln!(f, "{name} = {inst}")?;
        }
        Ok(())
    }
}

/// A query function signature: flat schema in, flat type out (the discipline
/// the paper imposes on all languages studied).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySignature {
    /// Input schema (must be flat for the paper's classes C and E).
    pub input: Schema,
    /// Output type.
    pub output: Type,
}

impl QuerySignature {
    /// A signature with flat input relations and flat relational output of
    /// the given arity (output element type `[U, …, U]`).
    pub fn flat<I>(inputs: I, output_arity: usize) -> QuerySignature
    where
        I: IntoIterator<Item = (&'static str, usize)>,
    {
        QuerySignature {
            input: Schema::flat(inputs),
            output: Type::atomic_tuple(output_arity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, set, tuple};

    fn sample_db() -> Database {
        let mut db = Database::empty();
        db.set(
            "R",
            Instance::from_rows([[atom(1), atom(2)], [atom(2), atom(3)]]),
        );
        db.set("S", Instance::from_values([atom(4)]));
        db
    }

    #[test]
    fn instance_set_operations() {
        let a = Instance::from_values([atom(1), atom(2)]);
        let b = Instance::from_values([atom(2), atom(3)]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.difference(&b), Instance::from_values([atom(1)]));
        assert_eq!(a.intersection(&b), Instance::from_values([atom(2)]));
        assert!(Instance::empty().is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn adom_spans_relations() {
        let db = sample_db();
        let adom = db.adom();
        assert_eq!(adom.len(), 4);
        assert!(adom.contains(&Atom::new(4)));
    }

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new([
            ("R".to_owned(), RType::flat_relation(2)),
            ("R".to_owned(), RType::flat_relation(1)),
        ])
        .unwrap_err();
        assert!(matches!(err, ObjectError::DuplicateRelation(_)));
    }

    #[test]
    fn schema_check_catches_type_errors() {
        let schema = Schema::flat([("R", 2), ("S", 1)]);
        assert!(schema.is_flat());
        let mut db = sample_db();
        // S holds bare atoms, not 1-tuples: flat {[U]} should reject it
        assert!(db.check_schema(&schema).is_err());
        db.set("S", Instance::from_rows([[atom(4)]]));
        db.check_schema(&schema).unwrap();
        // extra relation rejected
        db.set("T", Instance::empty());
        assert!(db.check_schema(&schema).is_err());
    }

    #[test]
    fn missing_relation_reads_empty_but_required_errors() {
        let db = sample_db();
        assert!(db.get("missing").is_empty());
        assert!(db.get_required("missing").is_err());
    }

    #[test]
    fn instance_rtype_check() {
        let het = Instance::from_values([atom(1), set([atom(2)]), tuple([atom(3), atom(4)])]);
        het.check_rtype(&RType::Obj).unwrap();
        assert!(het.check_rtype(&RType::Atomic).is_err());
    }

    #[test]
    fn set_value_roundtrip() {
        let inst = Instance::from_values([atom(1), set([atom(2)])]);
        let v = inst.to_set_value();
        assert_eq!(Instance::from_set_value(&v), Some(inst));
        assert_eq!(Instance::from_set_value(&atom(1)), None);
    }

    #[test]
    fn version_moves_on_every_mutation_even_at_equal_len() {
        let mut inst = Instance::from_values([atom(1), atom(2)]);
        let v0 = inst.version();
        // A remove + insert that restores the cardinality must still be
        // observable through the stamp — this is the collision the old
        // length-based staleness check could not see.
        assert!(inst.remove(&atom(2)));
        let v1 = inst.version();
        assert_ne!(v0, v1);
        assert!(inst.insert(atom(3)));
        let v2 = inst.version();
        assert_ne!(v1, v2);
        assert_eq!(inst.len(), 2);
        // No-op mutations leave the stamp alone.
        assert!(!inst.insert(atom(3)));
        assert!(!inst.remove(&atom(99)));
        assert_eq!(inst.version(), v2);
    }

    #[test]
    fn version_is_identity_not_content() {
        let a = Instance::from_values([atom(1)]);
        let b = Instance::from_values([atom(1)]);
        assert_ne!(a.version(), b.version());
        assert_eq!(a, b); // equality ignores the stamp
        let c = a.clone();
        assert_eq!(a.version(), c.version()); // unmutated clone shares it
    }

    #[test]
    fn remove_row_prunes_empty_relation() {
        let mut db = Database::empty();
        db.insert_row("R", &tuple([atom(1), atom(2)]));
        assert!(db.contains_relation("R"));
        assert!(db.remove_row("R", &tuple([atom(1), atom(2)])));
        // The emptied relation disappears, so this database compares
        // equal to one that never held the row.
        assert!(!db.contains_relation("R"));
        assert_eq!(db, Database::empty());
        // Removing from an absent relation is a clean no-op.
        assert!(!db.remove_row("R", &tuple([atom(1), atom(2)])));
    }

    #[test]
    fn database_map_atoms_is_per_relation() {
        let db = sample_db();
        let shifted = db.map_atoms(&mut |a| Atom::new(a.id() + 100));
        assert!(shifted.get("R").contains(&tuple([atom(101), atom(102)])));
        assert!(shifted.get("S").contains(&atom(104)));
    }
}
