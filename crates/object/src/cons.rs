//! Constructive domains: `cons_T(X)`.
//!
//! For a type `T` and finite atom set `X`, the constructive domain
//! `cons_T(X) = { o | o has type T and adom(o) ⊆ X }` (footnote 4 of the
//! paper). For strict types this is finite but grows hyper-exponentially in
//! the set-nesting depth — exactly the growth that powers Theorem 2.2's
//! simulation of hyper-exponential Turing machines.
//!
//! For rtypes mentioning `Obj` the constructive domain is countably
//! *infinite* (this is the "magic power of untyped sets"); we expose a
//! bounded enumeration [`cons_obj_bounded`] by construction size, which is
//! what a fuel-bounded evaluator for the untyped calculus uses. The
//! unbounded language is not computable — that is Theorem 6.3/6.1, and
//! DESIGN.md §5 records this substitution.

use crate::atom::Atom;
use crate::error::{ObjectError, Result};
use crate::rtype::Type;
use crate::value::Value;
use std::collections::BTreeSet;
use uset_par::{par_map, split_range};

/// Enumerate `cons_T(X)` for a strict type, failing if the result would
/// exceed `limit` elements (the sizes involved are hyper-exponential).
pub fn cons_type(ty: &Type, atoms: &BTreeSet<Atom>, limit: usize) -> Result<Vec<Value>> {
    let out = cons_type_inner(ty, atoms, limit)?;
    Ok(out)
}

/// [`cons_type`] with the outermost constructor's candidate space split
/// across `workers` threads.
///
/// The outermost set or tuple constructor dominates the enumeration (each
/// nesting level squares-or-worse the count), so only it is parallelized:
/// its index space — subset masks for a set, mixed-radix row indexes for a
/// tuple — is split into contiguous ranges via [`split_range`] and each
/// worker materializes its range in order. Concatenating the ranges
/// reproduces the sequential enumeration order exactly, so the result is
/// identical to [`cons_type`] at every width (including the error cases:
/// all size prediction happens before any fan-out). `workers <= 1` *is*
/// the sequential path.
pub fn cons_type_par(
    ty: &Type,
    atoms: &BTreeSet<Atom>,
    limit: usize,
    workers: usize,
) -> Result<Vec<Value>> {
    if workers <= 1 {
        return cons_type(ty, atoms, limit);
    }
    match ty {
        Type::Atomic => cons_type(ty, atoms, limit),
        Type::Set(inner) => {
            let members = cons_type_inner(inner, atoms, limit)?;
            let predicted = 1u128.checked_shl(members.len() as u32);
            if predicted.is_none_or(|p| p > limit as u128) {
                return Err(ObjectError::BoundExceeded {
                    what: "cons_T powerset",
                    bound: limit,
                });
            }
            Ok(powerset_par(&members, workers))
        }
        Type::Tuple(items) => {
            let columns: Vec<Vec<Value>> = items
                .iter()
                .map(|t| cons_type_inner(t, atoms, limit))
                .collect::<Result<_>>()?;
            let mut total: usize = 1;
            for c in &columns {
                total = total
                    .checked_mul(c.len().max(1))
                    .ok_or(ObjectError::BoundExceeded {
                        what: "cons_T product",
                        bound: limit,
                    })?;
            }
            if total > limit {
                return Err(ObjectError::BoundExceeded {
                    what: "cons_T product",
                    bound: limit,
                });
            }
            Ok(cartesian_par(&columns, workers))
        }
    }
}

fn cons_type_inner(ty: &Type, atoms: &BTreeSet<Atom>, limit: usize) -> Result<Vec<Value>> {
    match ty {
        Type::Atomic => Ok(atoms.iter().map(|a| Value::Atom(*a)).collect()),
        Type::Set(inner) => {
            let members = cons_type_inner(inner, atoms, limit)?;
            // predict 2^n in u128 so the check itself cannot overflow; a
            // member count ≥ 128 (unshiftable even in u128) is certainly
            // over any materializable limit
            let predicted = 1u128.checked_shl(members.len() as u32);
            if predicted.is_none_or(|p| p > limit as u128) {
                return Err(ObjectError::BoundExceeded {
                    what: "cons_T powerset",
                    bound: limit,
                });
            }
            Ok(powerset(&members))
        }
        Type::Tuple(items) => {
            let columns: Vec<Vec<Value>> = items
                .iter()
                .map(|t| cons_type_inner(t, atoms, limit))
                .collect::<Result<_>>()?;
            let mut total: usize = 1;
            for c in &columns {
                total = total
                    .checked_mul(c.len().max(1))
                    .ok_or(ObjectError::BoundExceeded {
                        what: "cons_T product",
                        bound: limit,
                    })?;
            }
            if total > limit {
                return Err(ObjectError::BoundExceeded {
                    what: "cons_T product",
                    bound: limit,
                });
            }
            Ok(cartesian(&columns))
        }
    }
}

/// All subsets of `members`, as canonical set values.
///
/// # Panics
///
/// Panics if `members.len() ≥ usize::BITS`: the 2^n subsets could not be
/// indexed by a machine-word mask, let alone materialized. Callers that
/// take untrusted sizes should pre-check with [`cons_type_size`] (or go
/// through [`cons_type`], which bounds the prediction in `u128`).
pub fn powerset(members: &[Value]) -> Vec<Value> {
    let n = members.len();
    assert!(
        n < usize::BITS as usize,
        "powerset of {n} members cannot be enumerated with a word-sized mask"
    );
    let mut out = Vec::with_capacity(1usize << n);
    for mask in 0..(1usize << n) {
        let mut s = BTreeSet::new();
        for (i, m) in members.iter().enumerate() {
            if mask & (1 << i) != 0 {
                // must stay: each subset owns its members
                s.insert(m.clone());
            }
        }
        out.push(Value::Set(s));
    }
    out
}

/// [`powerset`] with the `2^n` subset masks split into contiguous ranges
/// across `workers` threads. Each worker enumerates its mask range in
/// ascending order, so concatenating the per-range outputs yields exactly
/// the sequential enumeration. Same panic condition as [`powerset`].
pub fn powerset_par(members: &[Value], workers: usize) -> Vec<Value> {
    let n = members.len();
    assert!(
        n < usize::BITS as usize,
        "powerset of {n} members cannot be enumerated with a word-sized mask"
    );
    if workers <= 1 {
        return powerset(members);
    }
    let total = 1usize << n;
    let ranges = split_range(total, workers);
    let chunks = par_map(workers, &ranges, |_, range| {
        let mut out = Vec::with_capacity(range.len());
        for mask in range.clone() {
            let mut s = BTreeSet::new();
            for (i, m) in members.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    // must stay: each subset owns its members
                    s.insert(m.clone());
                }
            }
            out.push(Value::Set(s));
        }
        out
    });
    chunks.into_iter().flatten().collect()
}

/// Cartesian product of value columns, as tuples (row-major: the last
/// column varies fastest). Rows are built by mixed-radix decomposition of
/// the row index, so each cell is cloned exactly once — no intermediate
/// prefix vectors are re-cloned per extension.
pub fn cartesian(columns: &[Vec<Value>]) -> Vec<Value> {
    let total: usize = columns.iter().map(Vec::len).product();
    if total == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(total);
    for idx in 0..total {
        let mut row = vec![Value::empty_set(); columns.len()];
        let mut rem = idx;
        for (j, col) in columns.iter().enumerate().rev() {
            row[j] = col[rem % col.len()].clone();
            rem /= col.len();
        }
        out.push(Value::Tuple(row));
    }
    out
}

/// [`cartesian`] with the row-index space split into contiguous ranges
/// across `workers` threads.
///
/// The sequential product is row-major (the last column varies fastest),
/// so row `i` is recovered independently by mixed-radix decomposition of
/// `i` over the column lengths; each worker materializes a contiguous
/// index range and concatenation reproduces the sequential order exactly.
/// Callers must have pre-checked that the product size fits in `usize`
/// (as [`cons_type_par`] does).
pub fn cartesian_par(columns: &[Vec<Value>], workers: usize) -> Vec<Value> {
    if workers <= 1 {
        return cartesian(columns);
    }
    let total: usize = columns.iter().map(Vec::len).product();
    if total == 0 {
        return Vec::new();
    }
    let ranges = split_range(total, workers);
    let chunks = par_map(workers, &ranges, |_, range| {
        let mut out = Vec::with_capacity(range.len());
        for idx in range.clone() {
            let mut row = vec![Value::empty_set(); columns.len()];
            let mut rem = idx;
            for (j, col) in columns.iter().enumerate().rev() {
                row[j] = col[rem % col.len()].clone();
                rem /= col.len();
            }
            out.push(Value::Tuple(row));
        }
        out
    });
    chunks.into_iter().flatten().collect()
}

/// The size of `cons_T(X)` without materializing it, or `None` on overflow.
pub fn cons_type_size(ty: &Type, atom_count: u64) -> Option<u64> {
    match ty {
        Type::Atomic => Some(atom_count),
        Type::Set(inner) => {
            let n = cons_type_size(inner, atom_count)?;
            // 2^n fits in u64 exactly when n ≤ 63; the old `n >= 63` cutoff
            // wrongly reported the representable 2^63 as an overflow
            let shift = u32::try_from(n).ok()?;
            1u64.checked_shl(shift)
        }
        Type::Tuple(items) => {
            let mut total: u64 = 1;
            for t in items {
                total = total.checked_mul(cons_type_size(t, atom_count)?)?;
            }
            Some(total)
        }
    }
}

/// Enumerate all objects of `cons_Obj(X)` of structural size ≤ `max_size`,
/// capped at `limit` objects.
///
/// This is the bounded stand-in for the infinite `cons_Obj(X)` that makes
/// the untyped calculus non-computable (Theorems 6.1/6.3); the ordering of
/// the enumeration is by size then canonical value order, so it is
/// deterministic and generic-safe (it treats atoms symmetrically).
pub fn cons_obj_bounded(
    atoms: &BTreeSet<Atom>,
    max_size: usize,
    limit: usize,
) -> Result<Vec<Value>> {
    // layered enumeration: objects of size exactly k, for k = 1..=max_size
    let mut by_size: Vec<Vec<Value>> = vec![Vec::new(); max_size + 1];
    let mut total = 0usize;
    if max_size >= 1 {
        for a in atoms {
            by_size[1].push(Value::Atom(*a));
            total += 1;
        }
        // the empty set has size 1
        by_size[1].push(Value::empty_set());
        total += 1;
    }
    for k in 2..=max_size {
        let mut layer: BTreeSet<Value> = BTreeSet::new();
        // tuples of total component size k-1 (tuple node costs 1)
        for parts in compositions(k - 1) {
            for combo in pick_values(&by_size, &parts, 0)? {
                layer.insert(Value::Tuple(combo));
            }
        }
        // sets of distinct members with total size k-1
        for subset in pick_set_members(&by_size, k - 1) {
            layer.insert(Value::Set(subset.into_iter().collect()));
        }
        total += layer.len();
        if total > limit {
            return Err(ObjectError::BoundExceeded {
                what: "cons_Obj bounded enumeration",
                bound: limit,
            });
        }
        by_size[k] = layer.into_iter().collect();
    }
    Ok(by_size.into_iter().flatten().collect())
}

/// All ordered compositions of `n` into positive parts (n ≤ ~12 in use).
fn compositions(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![];
    }
    let mut out = Vec::new();
    let mut cur = Vec::new();
    fn rec(rem: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rem == 0 {
            if !cur.is_empty() {
                // must stay: backtracking snapshot of a Vec<usize>, cheap
                out.push(cur.clone());
            }
            return;
        }
        for first in 1..=rem {
            cur.push(first);
            rec(rem - first, cur, out);
            cur.pop();
        }
    }
    rec(n, &mut cur, &mut out);
    out
}

fn pick_values(by_size: &[Vec<Value>], parts: &[usize], idx: usize) -> Result<Vec<Vec<Value>>> {
    if idx == parts.len() {
        return Ok(vec![Vec::new()]);
    }
    let rest = pick_values(by_size, parts, idx + 1)?;
    let mut out = Vec::new();
    for v in &by_size[parts[idx]] {
        for suffix in &rest {
            let mut row = Vec::with_capacity(parts.len());
            // must stay: every product row owns its cells
            row.push(v.clone());
            row.extend(suffix.iter().cloned());
            out.push(row);
        }
    }
    Ok(out)
}

/// All sets of *distinct* previously enumerated values with total size
/// budget exactly `budget`.
fn pick_set_members(by_size: &[Vec<Value>], budget: usize) -> Vec<Vec<Value>> {
    // collect candidate pool with sizes (values of size ≤ budget)
    let pool: Vec<(usize, &Value)> = by_size
        .iter()
        .enumerate()
        .take(budget + 1)
        .flat_map(|(sz, vals)| vals.iter().map(move |v| (sz, v)))
        .collect();
    let mut out = Vec::new();
    let mut cur: Vec<Value> = Vec::new();
    fn rec(
        pool: &[(usize, &Value)],
        start: usize,
        rem: usize,
        cur: &mut Vec<Value>,
        out: &mut Vec<Vec<Value>>,
    ) {
        if rem == 0 {
            if !cur.is_empty() {
                // must stay: backtracking snapshot of the chosen members
                out.push(cur.clone());
            }
            return;
        }
        for i in start..pool.len() {
            let (sz, v) = pool[i];
            if sz == 0 || sz > rem {
                continue;
            }
            // must stay: the working set owns its candidate members
            cur.push((*v).clone());
            rec(pool, i + 1, rem - sz, cur, out);
            cur.pop();
        }
    }
    rec(&pool, 0, budget, &mut cur, &mut out);
    out
}

/// The paper's ordinal-style chain: `a; {a}; {a,{a}}; {a,{a},{a,{a}}}; …`
///
/// Element `k+1` is the set of all previous elements — a von-Neumann-style
/// encoding of the ordinal `k` built from a seed atom. This is the paper's
/// central device (proofs of Theorems 4.1(b) and 5.1) for manufacturing an
/// arbitrarily long strictly ordered sequence of *distinct* objects without
/// inventing new atoms.
pub fn ordinal_chain(seed: Atom, len: usize) -> Vec<Value> {
    let mut chain: Vec<Value> = Vec::with_capacity(len);
    if len == 0 {
        return chain;
    }
    chain.push(Value::Atom(seed));
    while chain.len() < len {
        // must stay in tree form: element k+1 contains copies of all
        // previous elements (the pool shares them when interning is on)
        let next = Value::Set(chain.iter().cloned().collect());
        chain.push(next);
    }
    chain
}

/// The singleton-nesting chain: `a; {a}; {{a}}; …`
///
/// The variant of the ordinal chain used in the paper's Theorem 5.1 rules
/// (`{u} ∈ F(a) ← u ∈ F(a)`). Unlike [`ordinal_chain`], whose elements
/// double in structural size, these grow by one node per step — the
/// practical choice when a *successor relation is materialized separately*
/// (as in the Theorem 4.1(b) simulation), since only distinctness and an
/// order are needed.
pub fn singleton_chain(seed: Atom, len: usize) -> Vec<Value> {
    let mut out = Vec::with_capacity(len);
    let mut cur = Value::Atom(seed);
    for _ in 0..len {
        // must stay: `cur` is both emitted and wrapped by the next step
        out.push(cur.clone());
        cur = Value::Set([cur].into_iter().collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, set, tuple};

    fn atoms(n: u64) -> BTreeSet<Atom> {
        (0..n).map(Atom::new).collect()
    }

    #[test]
    fn cons_atomic() {
        let vals = cons_type(&Type::Atomic, &atoms(3), 100).unwrap();
        assert_eq!(vals.len(), 3);
    }

    #[test]
    fn cons_set_is_powerset() {
        let vals = cons_type(&Type::Set(Box::new(Type::Atomic)), &atoms(3), 100).unwrap();
        assert_eq!(vals.len(), 8); // 2^3
        assert!(vals.contains(&Value::empty_set()));
        assert!(vals.contains(&set([atom(0), atom(2)])));
    }

    #[test]
    fn cons_growth_matches_predictor() {
        for depth in 0..3 {
            for n in 1..4u64 {
                let ty = Type::nested_set(depth);
                let predicted = cons_type_size(&ty, n).unwrap();
                let actual = cons_type(&ty, &atoms(n), 1 << 20).unwrap();
                assert_eq!(actual.len() as u64, predicted, "depth {depth} n {n}");
            }
        }
    }

    #[test]
    fn cons_hyperexponential_blowup_is_caught() {
        // {{U}} over 4 atoms has 2^(2^4) = 65536 elements; {{{U}}} is 2^65536
        assert_eq!(cons_type_size(&Type::nested_set(2), 4), Some(1 << 16));
        assert_eq!(cons_type_size(&Type::nested_set(3), 4), None);
        let err = cons_type(&Type::nested_set(3), &atoms(5), 1 << 20).unwrap_err();
        assert!(matches!(err, ObjectError::BoundExceeded { .. }));
    }

    #[test]
    fn cons_size_word_width_boundary() {
        let ty = Type::Set(Box::new(Type::Atomic));
        // 2^63 is representable in u64 — the predictor must not reject it
        assert_eq!(cons_type_size(&ty, 63), Some(1u64 << 63));
        // 2^64 is not
        assert_eq!(cons_type_size(&ty, 64), None);
        assert_eq!(cons_type_size(&ty, u64::MAX), None);
    }

    #[test]
    fn cons_powerset_guard_rejects_word_width_without_overflow() {
        // with 63 or 64 inner members the 1<<n prediction used to overflow
        // the word-sized shift; it must now fail cleanly even at the
        // largest possible limit
        let ty = Type::Set(Box::new(Type::Atomic));
        // n = 63: 2^63 is a valid word-sized prediction, just over any
        // sane limit
        let err = cons_type(&ty, &atoms(63), 1 << 30).unwrap_err();
        assert!(matches!(err, ObjectError::BoundExceeded { .. }));
        // n = 64, 65: the word-sized shift itself used to be the hazard;
        // even limit = usize::MAX must reject (2^64 > usize::MAX)
        for n in [64, 65] {
            let err = cons_type(&ty, &atoms(n), usize::MAX).unwrap_err();
            assert!(matches!(err, ObjectError::BoundExceeded { .. }), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "word-sized mask")]
    fn powerset_panics_at_word_width() {
        let members: Vec<Value> = (0..64).map(atom).collect();
        let _ = powerset(&members);
    }

    #[test]
    fn cons_tuple_product() {
        let ty = Type::Tuple(vec![Type::Atomic, Type::Set(Box::new(Type::Atomic))]);
        let vals = cons_type(&ty, &atoms(2), 100).unwrap();
        assert_eq!(vals.len(), 2 * 4);
        assert!(vals.contains(&tuple([atom(0), set([atom(1)])])));
    }

    #[test]
    fn cons_obj_bounded_small() {
        let vals = cons_obj_bounded(&atoms(1), 3, 1000).unwrap();
        // size 1: a0, {}
        assert!(vals.contains(&atom(0)));
        assert!(vals.contains(&Value::empty_set()));
        // size 2: [a0], [{}], {a0}, {{}}
        assert!(vals.contains(&tuple([atom(0)])));
        assert!(vals.contains(&set([atom(0)])));
        assert!(vals.contains(&set([Value::empty_set()])));
        // size 3 includes {a0,{}} and [a0,a0] and {{a0}} and [[a0]] …
        assert!(vals.contains(&set([atom(0), Value::empty_set()])));
        assert!(vals.contains(&tuple([atom(0), atom(0)])));
        assert!(vals.contains(&set([set([atom(0)])])));
        // all distinct
        let distinct: BTreeSet<_> = vals.iter().cloned().collect();
        assert_eq!(distinct.len(), vals.len());
        // all within size bound
        assert!(vals.iter().all(|v| v.size() <= 3));
    }

    #[test]
    fn cons_obj_bounded_is_monotone_in_size() {
        let small = cons_obj_bounded(&atoms(2), 2, 100_000).unwrap();
        let large = cons_obj_bounded(&atoms(2), 4, 100_000).unwrap();
        let large_set: BTreeSet<_> = large.iter().cloned().collect();
        assert!(small.iter().all(|v| large_set.contains(v)));
        assert!(large.len() > small.len());
    }

    #[test]
    fn cons_obj_limit_enforced() {
        let err = cons_obj_bounded(&atoms(3), 8, 50).unwrap_err();
        assert!(matches!(err, ObjectError::BoundExceeded { .. }));
    }

    #[test]
    fn ordinal_chain_shape() {
        let a = Atom::new(7);
        let chain = ordinal_chain(a, 4);
        assert_eq!(chain[0], Value::Atom(a));
        assert_eq!(chain[1], set([Value::Atom(a)]));
        assert_eq!(chain[2], set([Value::Atom(a), chain[1].clone()]));
        assert_eq!(
            chain[3],
            set([Value::Atom(a), chain[1].clone(), chain[2].clone()])
        );
        // strictly increasing structural size, all distinct
        let distinct: BTreeSet<_> = chain.iter().cloned().collect();
        assert_eq!(distinct.len(), 4);
        for w in chain.windows(2) {
            assert!(w[0].size() < w[1].size());
        }
        // adom stays {a}: no invention
        for v in &chain {
            assert_eq!(v.adom().len(), 1);
        }
        assert!(ordinal_chain(a, 0).is_empty());
    }

    #[test]
    fn singleton_chain_grows_linearly() {
        let c = singleton_chain(Atom::new(5), 6);
        assert_eq!(c[0], atom(5));
        assert_eq!(c[1], set([atom(5)]));
        assert_eq!(c[2], set([set([atom(5)])]));
        let distinct: BTreeSet<_> = c.iter().cloned().collect();
        assert_eq!(distinct.len(), 6);
        for (k, v) in c.iter().enumerate() {
            assert_eq!(v.size(), k + 1, "linear growth");
            assert_eq!(v.adom().len(), 1, "no invention");
        }
    }

    #[test]
    fn powerset_par_matches_sequential_at_every_width() {
        for n in 0..9usize {
            let members: Vec<Value> = (0..n as u64).map(atom).collect();
            let expect = powerset(&members);
            for workers in [1, 2, 3, 4, 7] {
                assert_eq!(powerset_par(&members, workers), expect, "n={n} w={workers}");
            }
        }
    }

    #[test]
    fn cartesian_par_matches_sequential_at_every_width() {
        let cases: Vec<Vec<Vec<Value>>> = vec![
            vec![],
            vec![vec![atom(0), atom(1)]],
            vec![vec![atom(0), atom(1)], vec![]],
            vec![
                (0..5u64).map(atom).collect(),
                (0..3u64).map(atom).collect(),
                vec![atom(9), set([atom(1)])],
            ],
        ];
        for cols in &cases {
            let expect = cartesian(cols);
            for workers in [1, 2, 3, 4, 7] {
                assert_eq!(cartesian_par(cols, workers), expect, "w={workers}");
            }
        }
    }

    #[test]
    fn cons_type_par_matches_sequential_including_errors() {
        let types = [
            Type::Atomic,
            Type::Set(Box::new(Type::Atomic)),
            Type::nested_set(2),
            Type::Tuple(vec![Type::Atomic, Type::Set(Box::new(Type::Atomic))]),
        ];
        for ty in &types {
            let expect = cons_type(ty, &atoms(3), 1 << 20);
            for workers in [1, 2, 4] {
                let got = cons_type_par(ty, &atoms(3), 1 << 20, workers);
                match (&expect, &got) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "{ty:?} w={workers}"),
                    (Err(_), Err(_)) => {}
                    _ => panic!("{ty:?} w={workers}: par/seq disagree on success"),
                }
            }
        }
        // oversized enumerations fail identically before any fan-out
        let err = cons_type_par(&Type::nested_set(3), &atoms(5), 1 << 20, 4).unwrap_err();
        assert!(matches!(err, ObjectError::BoundExceeded { .. }));
    }

    #[test]
    fn compositions_of_three() {
        let mut c = compositions(3);
        c.sort();
        assert_eq!(c, vec![vec![1, 1, 1], vec![1, 2], vec![2, 1], vec![3]]);
    }
}
