//! Per-column hash indexes over relation instances.
//!
//! The deductive engines join a rule body left to right; by the time a
//! literal `P(t1, …, tn)` is reached, some `ti` is very often already
//! ground under the current bindings (the idiomatic rule orders, e.g.
//! transitive closure `T(x,z) ← E(x,y), T(y,z)`, ground the first
//! position, but programs are under no obligation to). A [`ColumnIndex`]
//! groups a relation's tuple rows by one chosen component so such
//! literals probe a hash bucket instead of scanning the whole relation —
//! turning the inner join loop from O(|rel|) to O(matches).
//!
//! [`IndexSet`] caches indexes per `(relation, column)`, built on first
//! use and kept in sync by the engine notifying it of every inserted row.
//! Because the cache is only *advisory* — a probe answers the same
//! question a scan would — it also defends itself against the one way the
//! notify protocol can be violated: every index carries a count of the
//! rows it has seen ([`ColumnIndex::rows_seen`]), and [`IndexSet::of_col`]
//! compares it against the live instance's length, rebuilding on any
//! mismatch. A call site that mutates a relation after its index was
//! built (in either direction — un-notified insertion *or* rollback
//! removal) therefore gets a fresh index on the next access instead of a
//! stale join snapshot.

use crate::database::Instance;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};

/// The first column of a row, when the row is a non-empty tuple.
pub fn first_column(row: &Value) -> Option<&Value> {
    nth_column(row, 0)
}

/// Column `col` of a row, when the row is a tuple of arity > `col`.
///
/// Rows that are not tuples (bare objects in unary relations) have no
/// columns; literals of arity ≥ 2 can never match them, and unary
/// literals with a ground argument are answered by a direct
/// `Instance::contains` instead of an index probe.
pub fn nth_column(row: &Value, col: usize) -> Option<&Value> {
    row.as_tuple().and_then(|items| items.get(col))
}

/// A hash index over one relation: tuple rows grouped by one component.
#[derive(Clone, Debug, Default)]
pub struct ColumnIndex {
    key_col: usize,
    buckets: HashMap<Value, Vec<Value>>,
    rows_indexed: usize,
    rows_seen: usize,
}

impl ColumnIndex {
    /// Build a first-column index from an instance's current rows.
    pub fn build(inst: &Instance) -> ColumnIndex {
        ColumnIndex::build_on(inst, 0)
    }

    /// Build an index keyed on column `col` from an instance's rows.
    pub fn build_on(inst: &Instance, col: usize) -> ColumnIndex {
        let mut idx = ColumnIndex {
            key_col: col,
            ..ColumnIndex::default()
        };
        for row in inst.iter() {
            idx.insert(row);
        }
        idx
    }

    /// The column this index is keyed on.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Add one row. Rows without the keyed column (non-tuples, short
    /// tuples) still count toward [`ColumnIndex::rows_seen`] so the
    /// staleness stamp tracks the instance's length exactly.
    pub fn insert(&mut self, row: &Value) {
        self.rows_seen += 1;
        if let Some(key) = nth_column(row, self.key_col) {
            self.buckets
                .entry(key.clone())
                .or_default()
                .push(row.clone());
            self.rows_indexed += 1;
        }
    }

    /// All rows whose keyed component equals `key`.
    pub fn probe(&self, key: &Value) -> &[Value] {
        self.buckets.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of rows the index covers (rows that have the keyed column).
    pub fn len(&self) -> usize {
        self.rows_indexed
    }

    /// True if no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.rows_indexed == 0
    }

    /// Number of distinct key values in the index — the denominator of
    /// the classic `|rel| / distinct(col)` selectivity estimate the
    /// optimizer's cardinality domain uses to rank probe columns. An
    /// empty index reports 0 distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }

    /// Average bucket depth (`len / distinct_keys`, 0 for an empty
    /// index): the expected number of rows a ground probe on the keyed
    /// column returns — lower is more selective.
    pub fn avg_bucket_depth(&self) -> usize {
        if self.buckets.is_empty() {
            0
        } else {
            self.rows_indexed.div_ceil(self.buckets.len())
        }
    }

    /// Total rows this index has been shown, indexable or not — the
    /// version stamp [`IndexSet::of_col`] compares against the live
    /// instance's length to detect un-notified mutation.
    pub fn rows_seen(&self) -> usize {
        self.rows_seen
    }
}

/// A cache of [`ColumnIndex`]es per `(relation, column)` over a growing
/// database.
#[derive(Clone, Debug, Default)]
pub struct IndexSet {
    map: HashMap<String, BTreeMap<usize, ColumnIndex>>,
}

impl IndexSet {
    /// An empty cache.
    pub fn new() -> IndexSet {
        IndexSet::default()
    }

    /// The first-column index for `name`, building it from `inst` on
    /// first use. Shorthand for [`IndexSet::of_col`] with column 0.
    pub fn of(&mut self, name: &str, inst: &Instance) -> &ColumnIndex {
        self.of_col(name, 0, inst)
    }

    /// The column-`col` index for `name`, building it from `inst` on
    /// first use.
    ///
    /// Callers should report insertions via [`IndexSet::note_insert`];
    /// if a relation was nonetheless mutated behind the cache's back
    /// (detected by comparing the index's row count against the live
    /// instance), the stale index is discarded and rebuilt here rather
    /// than served.
    pub fn of_col(&mut self, name: &str, col: usize, inst: &Instance) -> &ColumnIndex {
        let by_col = self.map.entry(name.to_owned()).or_default();
        let entry = by_col
            .entry(col)
            .or_insert_with(|| ColumnIndex::build_on(inst, col));
        if entry.rows_seen() != inst.len() {
            *entry = ColumnIndex::build_on(inst, col);
        }
        entry
    }

    /// The column-`col` index for `name` if it is already built **and**
    /// fresh — the read-only lookup parallel workers use against a
    /// prebuilt cache (workers share `&IndexSet` and cannot build).
    /// `inst_len` is the probed relation's current length; a stale entry
    /// returns `None` so the caller falls back to a scan instead of
    /// joining against a stale snapshot.
    pub fn get(&self, name: &str, col: usize, inst_len: usize) -> Option<&ColumnIndex> {
        self.map
            .get(name)
            .and_then(|by_col| by_col.get(&col))
            .filter(|idx| idx.rows_seen() == inst_len)
    }

    /// Record a row newly inserted into relation `name`, updating every
    /// built column index for it. Relations with no built index are
    /// skipped — rows are picked up when (if ever) an index is first
    /// built.
    pub fn note_insert(&mut self, name: &str, row: &Value) {
        if let Some(by_col) = self.map.get_mut(name) {
            for idx in by_col.values_mut() {
                idx.insert(row);
            }
        }
    }

    /// Drop every cached index for `name` (e.g. after a rollback that
    /// removed rows). Cheaper than letting each next access detect the
    /// mismatch and rebuild one column at a time.
    pub fn invalidate(&mut self, name: &str) {
        self.map.remove(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, tuple};

    fn rel() -> Instance {
        Instance::from_rows([
            [atom(1), atom(10)],
            [atom(1), atom(11)],
            [atom(2), atom(20)],
        ])
    }

    #[test]
    fn probe_groups_by_first_column() {
        let idx = ColumnIndex::build(&rel());
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.probe(&atom(1)).len(), 2);
        assert_eq!(idx.probe(&atom(2)), &[tuple([atom(2), atom(20)])]);
        assert!(idx.probe(&atom(3)).is_empty());
    }

    #[test]
    fn probe_on_second_column() {
        let mut inst = rel();
        inst.insert(tuple([atom(3), atom(10)]));
        let idx = ColumnIndex::build_on(&inst, 1);
        assert_eq!(idx.key_col(), 1);
        assert_eq!(idx.probe(&atom(10)).len(), 2);
        assert_eq!(idx.probe(&atom(20)), &[tuple([atom(2), atom(20)])]);
        assert!(idx.probe(&atom(1)).is_empty(), "keys are column 1 values");
    }

    #[test]
    fn selectivity_accessors_report_distinct_keys_and_depth() {
        let idx = ColumnIndex::build(&rel());
        // keys 1 and 2; key 1 holds two rows
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.avg_bucket_depth(), 2, "ceil(3 rows / 2 keys)");
        let empty = ColumnIndex::default();
        assert_eq!(empty.distinct_keys(), 0);
        assert_eq!(empty.avg_bucket_depth(), 0);
    }

    #[test]
    fn non_tuple_rows_are_not_indexed_but_are_counted() {
        let mut idx = ColumnIndex::default();
        idx.insert(&atom(5));
        idx.insert(&Value::Tuple(vec![]));
        assert!(idx.is_empty());
        assert!(idx.probe(&atom(5)).is_empty());
        // the staleness stamp still tracks both rows
        assert_eq!(idx.rows_seen(), 2);
    }

    #[test]
    fn short_tuples_are_skipped_by_higher_columns() {
        let mut inst = Instance::from_rows([[atom(1), atom(2)]]);
        inst.insert(tuple([atom(9)])); // arity 1: no column 1
        let idx = ColumnIndex::build_on(&inst, 1);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.rows_seen(), 2);
    }

    #[test]
    fn index_set_stays_in_sync_with_inserts() {
        let mut inst = rel();
        let mut set = IndexSet::new();
        assert_eq!(set.of("R", &inst).probe(&atom(1)).len(), 2);
        // grow the relation and notify the cache
        let row = tuple([atom(1), atom(12)]);
        inst.insert(row.clone());
        set.note_insert("R", &row);
        assert_eq!(set.of("R", &inst).probe(&atom(1)).len(), 3);
        // un-built relations ignore notifications, then build fresh
        set.note_insert("S", &row);
        let s = Instance::from_rows([[atom(9), atom(9)]]);
        assert_eq!(set.of("S", &s).probe(&atom(9)).len(), 1);
    }

    #[test]
    fn note_insert_updates_every_built_column() {
        let mut inst = rel();
        let mut set = IndexSet::new();
        set.of_col("R", 0, &inst);
        set.of_col("R", 1, &inst);
        let row = tuple([atom(7), atom(10)]);
        inst.insert(row.clone());
        set.note_insert("R", &row);
        assert_eq!(set.of_col("R", 0, &inst).probe(&atom(7)).len(), 1);
        assert_eq!(set.of_col("R", 1, &inst).probe(&atom(10)).len(), 2);
    }

    /// Regression test for the staleness hazard: mutate the relation
    /// *without* calling `note_insert` (the bug pattern an engine hits if
    /// any insertion path forgets the notify step) and demand that the
    /// next access still answers from fresh data. On the pre-version-stamp
    /// implementation, the second `of()` returned the cached index and
    /// this probe missed the new row.
    #[test]
    fn unnotified_mutation_is_healed_on_next_access() {
        let mut inst = rel();
        let mut set = IndexSet::new();
        assert_eq!(set.of("R", &inst).probe(&atom(2)).len(), 1);
        // mutate behind the cache's back — no note_insert
        inst.insert(tuple([atom(2), atom(21)]));
        assert_eq!(
            set.of("R", &inst).probe(&atom(2)).len(),
            2,
            "stale index must be rebuilt, not served"
        );
        // removal (the rollback direction) is healed the same way
        inst.remove(&tuple([atom(2), atom(21)]));
        assert_eq!(set.of("R", &inst).probe(&atom(2)).len(), 1);
    }

    #[test]
    fn read_only_get_refuses_stale_entries() {
        let mut inst = rel();
        let mut set = IndexSet::new();
        assert!(set.get("R", 0, inst.len()).is_none(), "nothing built yet");
        set.of_col("R", 0, &inst);
        assert!(set.get("R", 0, inst.len()).is_some());
        assert!(set.get("R", 1, inst.len()).is_none(), "column not built");
        inst.insert(tuple([atom(4), atom(40)]));
        assert!(
            set.get("R", 0, inst.len()).is_none(),
            "stale entry must not be served to read-only probers"
        );
    }

    #[test]
    fn invalidate_drops_all_columns() {
        let inst = rel();
        let mut set = IndexSet::new();
        set.of_col("R", 0, &inst);
        set.of_col("R", 1, &inst);
        set.invalidate("R");
        assert!(set.get("R", 0, inst.len()).is_none());
        assert!(set.get("R", 1, inst.len()).is_none());
    }
}
