//! First-column hash indexes over relation instances.
//!
//! The deductive engines join a rule body left to right; by the time a
//! literal `P(t1, …, tn)` is reached, `t1` is very often already ground
//! under the current bindings (the idiomatic rule orders, e.g. transitive
//! closure `T(x,z) ← E(x,y), T(y,z)`, guarantee it). A [`ColumnIndex`]
//! groups a relation's tuple rows by their first component so such
//! literals probe a hash bucket instead of scanning the whole relation —
//! turning the inner join loop from O(|rel|) to O(matches).
//!
//! [`IndexSet`] caches one index per relation, built on first use and
//! kept in sync by the engine notifying it of every inserted row. The
//! engines only ever grow relations during a fixpoint, so no invalidation
//! path is needed.

use crate::database::Instance;
use crate::value::Value;
use std::collections::HashMap;

/// The first column of a row, when the row is a non-empty tuple.
///
/// Rows that are not tuples (bare objects in unary relations) have no
/// first column; literals of arity ≥ 2 can never match them, and unary
/// literals with a ground argument are answered by a direct
/// `Instance::contains` instead of an index probe.
pub fn first_column(row: &Value) -> Option<&Value> {
    row.as_tuple().and_then(|items| items.first())
}

/// A hash index over one relation: tuple rows grouped by first component.
#[derive(Clone, Debug, Default)]
pub struct ColumnIndex {
    by_first: HashMap<Value, Vec<Value>>,
    rows_indexed: usize,
}

impl ColumnIndex {
    /// Build from an instance's current rows.
    pub fn build(inst: &Instance) -> ColumnIndex {
        let mut idx = ColumnIndex::default();
        for row in inst.iter() {
            idx.insert(row);
        }
        idx
    }

    /// Add one row (no-op for rows without a first column).
    pub fn insert(&mut self, row: &Value) {
        if let Some(key) = first_column(row) {
            self.by_first
                .entry(key.clone())
                .or_default()
                .push(row.clone());
            self.rows_indexed += 1;
        }
    }

    /// All rows whose first component equals `key`.
    pub fn probe(&self, key: &Value) -> &[Value] {
        self.by_first.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of rows the index covers.
    pub fn len(&self) -> usize {
        self.rows_indexed
    }

    /// True if no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.rows_indexed == 0
    }
}

/// A per-relation cache of [`ColumnIndex`]es over a growing database.
#[derive(Clone, Debug, Default)]
pub struct IndexSet {
    map: HashMap<String, ColumnIndex>,
}

impl IndexSet {
    /// An empty cache.
    pub fn new() -> IndexSet {
        IndexSet::default()
    }

    /// The index for `name`, building it from `inst` on first use.
    ///
    /// The caller must pass the same live instance every time and report
    /// subsequent insertions via [`IndexSet::note_insert`], otherwise the
    /// cached index goes stale.
    pub fn of(&mut self, name: &str, inst: &Instance) -> &ColumnIndex {
        self.map
            .entry(name.to_owned())
            .or_insert_with(|| ColumnIndex::build(inst))
    }

    /// Record a row newly inserted into relation `name`. Relations whose
    /// index has not been built yet are skipped — the row will be picked
    /// up when (if ever) the index is first built.
    pub fn note_insert(&mut self, name: &str, row: &Value) {
        if let Some(idx) = self.map.get_mut(name) {
            idx.insert(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, tuple};

    fn rel() -> Instance {
        Instance::from_rows([
            [atom(1), atom(10)],
            [atom(1), atom(11)],
            [atom(2), atom(20)],
        ])
    }

    #[test]
    fn probe_groups_by_first_column() {
        let idx = ColumnIndex::build(&rel());
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.probe(&atom(1)).len(), 2);
        assert_eq!(idx.probe(&atom(2)), &[tuple([atom(2), atom(20)])]);
        assert!(idx.probe(&atom(3)).is_empty());
    }

    #[test]
    fn non_tuple_rows_are_not_indexed() {
        let mut idx = ColumnIndex::default();
        idx.insert(&atom(5));
        idx.insert(&Value::Tuple(vec![]));
        assert!(idx.is_empty());
        assert!(idx.probe(&atom(5)).is_empty());
    }

    #[test]
    fn index_set_stays_in_sync_with_inserts() {
        let mut inst = rel();
        let mut set = IndexSet::new();
        assert_eq!(set.of("R", &inst).probe(&atom(1)).len(), 2);
        // grow the relation and notify the cache
        let row = tuple([atom(1), atom(12)]);
        inst.insert(row.clone());
        set.note_insert("R", &row);
        assert_eq!(set.of("R", &inst).probe(&atom(1)).len(), 3);
        // un-built relations ignore notifications, then build fresh
        set.note_insert("S", &row);
        let s = Instance::from_rows([[atom(9), atom(9)]]);
        assert_eq!(set.of("S", &s).probe(&atom(9)).len(), 1);
    }
}
