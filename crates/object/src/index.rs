//! Per-column hash indexes over relation instances.
//!
//! The deductive engines join a rule body left to right; by the time a
//! literal `P(t1, …, tn)` is reached, some `ti` is very often already
//! ground under the current bindings (the idiomatic rule orders, e.g.
//! transitive closure `T(x,z) ← E(x,y), T(y,z)`, ground the first
//! position, but programs are under no obligation to). A [`ColumnIndex`]
//! groups a relation's tuple rows by one chosen component so such
//! literals probe a hash bucket instead of scanning the whole relation —
//! turning the inner join loop from O(|rel|) to O(matches).
//!
//! [`IndexSet`] caches indexes per `(relation, column)`, built on first
//! use and kept in sync by the engine notifying it of every inserted or
//! removed row. Because the cache is only *advisory* — a probe answers
//! the same question a scan would — it also defends itself against the
//! one way the notify protocol can be violated: every index carries the
//! mutation-version stamp ([`Instance::version`]) of the instance state
//! it reflects, and [`IndexSet::of_col`] compares it against the live
//! instance's stamp, rebuilding on any mismatch. The stamp is renewed by
//! *every* mutation, so unlike the row-count stamp it replaced it cannot
//! be fooled by a `remove_row` + `insert_row` pair that leaves the
//! cardinality unchanged — the exact pattern a maintenance engine
//! applying a retraction batch produces. A call site that mutates a
//! relation after its index was built therefore gets a fresh index on
//! the next access instead of a stale join snapshot.

use crate::database::Instance;
use crate::intern::{self, FxBuildHasher, ObjRef, Pool};
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};

/// The first column of a row, when the row is a non-empty tuple.
pub fn first_column(row: &Value) -> Option<&Value> {
    nth_column(row, 0)
}

/// Column `col` of a row, when the row is a tuple of arity > `col`.
///
/// Rows that are not tuples (bare objects in unary relations) have no
/// columns; literals of arity ≥ 2 can never match them, and unary
/// literals with a ground argument are answered by a direct
/// `Instance::contains` instead of an index probe.
pub fn nth_column(row: &Value, col: usize) -> Option<&Value> {
    row.as_tuple().and_then(|items| items.get(col))
}

/// Bucket storage for a [`ColumnIndex`]. The mode is fixed when the
/// index is created (so one index never mixes keying schemes):
/// `USET_INTERN` on keys buckets by pool id — probes intern the key
/// once and look up by O(1) id hash, instead of deep-hashing the key
/// `Value` and deep-comparing on bucket collisions — and off keeps the
/// plain deep-keyed map, byte-for-byte the pre-interning behavior.
#[derive(Clone, Debug)]
enum Buckets {
    Plain(HashMap<Value, Vec<Value>>),
    Ids(HashMap<ObjRef, Vec<Value>, FxBuildHasher>),
}

impl Default for Buckets {
    fn default() -> Buckets {
        if intern::enabled() {
            Buckets::Ids(HashMap::default())
        } else {
            Buckets::Plain(HashMap::new())
        }
    }
}

impl Buckets {
    fn len(&self) -> usize {
        match self {
            Buckets::Plain(m) => m.len(),
            Buckets::Ids(m) => m.len(),
        }
    }
}

/// A hash index over one relation: tuple rows grouped by one component.
#[derive(Clone, Debug, Default)]
pub struct ColumnIndex {
    key_col: usize,
    buckets: Buckets,
    rows_indexed: usize,
    stamp: u64,
}

impl ColumnIndex {
    /// Build a first-column index from an instance's current rows.
    pub fn build(inst: &Instance) -> ColumnIndex {
        ColumnIndex::build_on(inst, 0)
    }

    /// Build an index keyed on column `col` from an instance's rows.
    pub fn build_on(inst: &Instance, col: usize) -> ColumnIndex {
        let mut idx = ColumnIndex {
            key_col: col,
            stamp: inst.version(),
            ..ColumnIndex::default()
        };
        for row in inst.iter() {
            idx.insert(row);
        }
        idx
    }

    /// The column this index is keyed on.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Add one row to the buckets. Rows without the keyed column
    /// (non-tuples, short tuples) are skipped. This updates contents
    /// only; adopting the instance's new stamp is the caller's job
    /// (see [`IndexSet::note_insert`]).
    pub fn insert(&mut self, row: &Value) {
        if let Some(key) = nth_column(row, self.key_col) {
            match &mut self.buckets {
                // must stay: plain buckets own key and row (id-keyed
                // buckets replace the key clone with an intern)
                Buckets::Plain(m) => m.entry(key.clone()).or_default().push(row.clone()),
                Buckets::Ids(m) => m
                    .entry(Pool::global().intern(key))
                    .or_default()
                    // must stay: probe answers borrow from the bucket
                    .push(row.clone()),
            }
            self.rows_indexed += 1;
        }
    }

    /// Remove one row from the buckets (the inverse of
    /// [`ColumnIndex::insert`]); a no-op for rows that were never
    /// indexable. Contents only — stamp adoption is the caller's job.
    pub fn remove(&mut self, row: &Value) {
        let Some(key) = nth_column(row, self.key_col) else {
            return;
        };
        match &mut self.buckets {
            Buckets::Plain(m) => {
                if let Some(bucket) = m.get_mut(key) {
                    if let Some(pos) = bucket.iter().position(|r| r == row) {
                        bucket.swap_remove(pos);
                        self.rows_indexed -= 1;
                        if bucket.is_empty() {
                            m.remove(key);
                        }
                    }
                }
            }
            Buckets::Ids(m) => {
                let id = Pool::global().intern(key);
                if let Some(bucket) = m.get_mut(&id) {
                    if let Some(pos) = bucket.iter().position(|r| r == row) {
                        bucket.swap_remove(pos);
                        self.rows_indexed -= 1;
                        if bucket.is_empty() {
                            m.remove(&id);
                        }
                    }
                }
            }
        }
    }

    /// All rows whose keyed component equals `key`.
    pub fn probe(&self, key: &Value) -> &[Value] {
        match &self.buckets {
            Buckets::Plain(m) => m.get(key).map_or(&[], Vec::as_slice),
            Buckets::Ids(m) => m
                .get(&Pool::global().intern(key))
                .map_or(&[], Vec::as_slice),
        }
    }

    /// Number of rows the index covers (rows that have the keyed column).
    pub fn len(&self) -> usize {
        self.rows_indexed
    }

    /// True if no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.rows_indexed == 0
    }

    /// Number of distinct key values in the index — the denominator of
    /// the classic `|rel| / distinct(col)` selectivity estimate the
    /// optimizer's cardinality domain uses to rank probe columns. An
    /// empty index reports 0 distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }

    /// Average bucket depth (`len / distinct_keys`, 0 for an empty
    /// index): the expected number of rows a ground probe on the keyed
    /// column returns — lower is more selective.
    pub fn avg_bucket_depth(&self) -> usize {
        if self.buckets.len() == 0 {
            0
        } else {
            self.rows_indexed.div_ceil(self.buckets.len())
        }
    }

    /// The [`Instance::version`] stamp of the instance state this index
    /// reflects. [`IndexSet::of_col`] compares it against the live
    /// instance to detect un-notified mutation in either direction. A
    /// default-constructed index carries stamp 0, which only
    /// pristine-empty instances have — and matching those is correct,
    /// since both sides are empty.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Adopt the stamp of the instance state the index now reflects.
    pub fn set_stamp(&mut self, stamp: u64) {
        self.stamp = stamp;
    }
}

/// A cache of [`ColumnIndex`]es per `(relation, column)` over a mutating
/// database.
#[derive(Clone, Debug, Default)]
pub struct IndexSet {
    map: HashMap<String, BTreeMap<usize, ColumnIndex>>,
}

impl IndexSet {
    /// An empty cache.
    pub fn new() -> IndexSet {
        IndexSet::default()
    }

    /// The first-column index for `name`, building it from `inst` on
    /// first use. Shorthand for [`IndexSet::of_col`] with column 0.
    pub fn of(&mut self, name: &str, inst: &Instance) -> &ColumnIndex {
        self.of_col(name, 0, inst)
    }

    /// The column-`col` index for `name`, building it from `inst` on
    /// first use.
    ///
    /// Callers should report mutations via [`IndexSet::note_insert`] /
    /// [`IndexSet::note_remove`]; if a relation was nonetheless mutated
    /// behind the cache's back (detected by comparing the index's stamp
    /// against the live instance's mutation version), the stale index is
    /// discarded and rebuilt here rather than served.
    pub fn of_col(&mut self, name: &str, col: usize, inst: &Instance) -> &ColumnIndex {
        let by_col = self.map.entry(name.to_owned()).or_default();
        let entry = by_col
            .entry(col)
            .or_insert_with(|| ColumnIndex::build_on(inst, col));
        if entry.stamp() != inst.version() {
            *entry = ColumnIndex::build_on(inst, col);
        }
        entry
    }

    /// The column-`col` index for `name` if it is already built **and**
    /// fresh — the read-only lookup parallel workers use against a
    /// prebuilt cache (workers share `&IndexSet` and cannot build).
    /// `stamp` is the probed relation's current mutation version
    /// ([`Instance::version`]); a stale entry returns `None` so the
    /// caller falls back to a scan instead of joining against a stale
    /// snapshot.
    pub fn get(&self, name: &str, col: usize, stamp: u64) -> Option<&ColumnIndex> {
        self.map
            .get(name)
            .and_then(|by_col| by_col.get(&col))
            .filter(|idx| idx.stamp() == stamp)
    }

    /// Record a row newly inserted into relation `name`, updating every
    /// built column index for it and adopting the mutated instance's
    /// fresh stamp. Relations with no built index are skipped — rows are
    /// picked up when (if ever) an index is first built.
    pub fn note_insert(&mut self, name: &str, row: &Value, inst: &Instance) {
        if let Some(by_col) = self.map.get_mut(name) {
            for idx in by_col.values_mut() {
                idx.insert(row);
                idx.set_stamp(inst.version());
            }
        }
    }

    /// Record a row removed from relation `name`, updating every built
    /// column index and adopting the mutated instance's fresh stamp —
    /// the retraction counterpart of [`IndexSet::note_insert`], cheaper
    /// than [`IndexSet::invalidate`] when only a few rows leave a large
    /// relation.
    pub fn note_remove(&mut self, name: &str, row: &Value, inst: &Instance) {
        if let Some(by_col) = self.map.get_mut(name) {
            for idx in by_col.values_mut() {
                idx.remove(row);
                idx.set_stamp(inst.version());
            }
        }
    }

    /// Drop every cached index for `name` (e.g. after a rollback that
    /// removed many rows). Cheaper than letting each next access detect
    /// the mismatch and rebuild one column at a time.
    pub fn invalidate(&mut self, name: &str) {
        self.map.remove(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, tuple};

    fn rel() -> Instance {
        Instance::from_rows([
            [atom(1), atom(10)],
            [atom(1), atom(11)],
            [atom(2), atom(20)],
        ])
    }

    #[test]
    fn probe_groups_by_first_column() {
        let idx = ColumnIndex::build(&rel());
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.probe(&atom(1)).len(), 2);
        assert_eq!(idx.probe(&atom(2)), &[tuple([atom(2), atom(20)])]);
        assert!(idx.probe(&atom(3)).is_empty());
    }

    #[test]
    fn probe_on_second_column() {
        let mut inst = rel();
        inst.insert(tuple([atom(3), atom(10)]));
        let idx = ColumnIndex::build_on(&inst, 1);
        assert_eq!(idx.key_col(), 1);
        assert_eq!(idx.probe(&atom(10)).len(), 2);
        assert_eq!(idx.probe(&atom(20)), &[tuple([atom(2), atom(20)])]);
        assert!(idx.probe(&atom(1)).is_empty(), "keys are column 1 values");
    }

    #[test]
    fn selectivity_accessors_report_distinct_keys_and_depth() {
        let idx = ColumnIndex::build(&rel());
        // keys 1 and 2; key 1 holds two rows
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.avg_bucket_depth(), 2, "ceil(3 rows / 2 keys)");
        let empty = ColumnIndex::default();
        assert_eq!(empty.distinct_keys(), 0);
        assert_eq!(empty.avg_bucket_depth(), 0);
    }

    #[test]
    fn non_tuple_rows_are_not_indexed() {
        let mut idx = ColumnIndex::default();
        idx.insert(&atom(5));
        idx.insert(&Value::Tuple(vec![]));
        assert!(idx.is_empty());
        assert!(idx.probe(&atom(5)).is_empty());
    }

    #[test]
    fn remove_is_the_inverse_of_insert() {
        let mut idx = ColumnIndex::build(&rel());
        idx.remove(&tuple([atom(1), atom(10)]));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.probe(&atom(1)), &[tuple([atom(1), atom(11)])]);
        // removing the last row of a key drops its bucket
        idx.remove(&tuple([atom(2), atom(20)]));
        assert_eq!(idx.distinct_keys(), 1);
        // unknown and non-tuple rows are clean no-ops
        idx.remove(&tuple([atom(9), atom(9)]));
        idx.remove(&atom(5));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn short_tuples_are_skipped_by_higher_columns() {
        let mut inst = Instance::from_rows([[atom(1), atom(2)]]);
        inst.insert(tuple([atom(9)])); // arity 1: no column 1
        let idx = ColumnIndex::build_on(&inst, 1);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn index_set_stays_in_sync_with_inserts() {
        let mut inst = rel();
        let mut set = IndexSet::new();
        assert_eq!(set.of("R", &inst).probe(&atom(1)).len(), 2);
        // grow the relation and notify the cache
        let row = tuple([atom(1), atom(12)]);
        inst.insert(row.clone());
        set.note_insert("R", &row, &inst);
        assert_eq!(set.of("R", &inst).probe(&atom(1)).len(), 3);
        // un-built relations ignore notifications, then build fresh
        let s = Instance::from_rows([[atom(9), atom(9)]]);
        set.note_insert("S", &row, &s);
        assert_eq!(set.of("S", &s).probe(&atom(9)).len(), 1);
    }

    #[test]
    fn note_insert_updates_every_built_column() {
        let mut inst = rel();
        let mut set = IndexSet::new();
        set.of_col("R", 0, &inst);
        set.of_col("R", 1, &inst);
        let row = tuple([atom(7), atom(10)]);
        inst.insert(row.clone());
        set.note_insert("R", &row, &inst);
        assert_eq!(set.of_col("R", 0, &inst).probe(&atom(7)).len(), 1);
        assert_eq!(set.of_col("R", 1, &inst).probe(&atom(10)).len(), 2);
    }

    #[test]
    fn note_remove_updates_every_built_column() {
        let mut inst = rel();
        let mut set = IndexSet::new();
        set.of_col("R", 0, &inst);
        set.of_col("R", 1, &inst);
        let row = tuple([atom(1), atom(10)]);
        inst.remove(&row);
        set.note_remove("R", &row, &inst);
        assert_eq!(set.of_col("R", 0, &inst).probe(&atom(1)).len(), 1);
        assert!(set.of_col("R", 1, &inst).probe(&atom(10)).is_empty());
        // the notified entries are fresh: read-only probers accept them
        assert!(set.get("R", 0, inst.version()).is_some());
    }

    /// Regression test for the staleness hazard: mutate the relation
    /// *without* notifying the cache (the bug pattern an engine hits if
    /// any mutation path forgets the notify step) and demand that the
    /// next access still answers from fresh data. On the pre-version-stamp
    /// implementation, the second `of()` returned the cached index and
    /// this probe missed the new row.
    #[test]
    fn unnotified_mutation_is_healed_on_next_access() {
        let mut inst = rel();
        let mut set = IndexSet::new();
        assert_eq!(set.of("R", &inst).probe(&atom(2)).len(), 1);
        // mutate behind the cache's back — no note_insert
        inst.insert(tuple([atom(2), atom(21)]));
        assert_eq!(
            set.of("R", &inst).probe(&atom(2)).len(),
            2,
            "stale index must be rebuilt, not served"
        );
        // removal (the rollback direction) is healed the same way
        inst.remove(&tuple([atom(2), atom(21)]));
        assert_eq!(set.of("R", &inst).probe(&atom(2)).len(), 1);
    }

    /// Regression test for the length-stamp collision the version stamp
    /// fixes: a remove + insert pair that leaves `len()` unchanged. The
    /// old implementation compared `rows_seen == inst.len()`, judged the
    /// cached index fresh, and served rows that were no longer in the
    /// relation (and missed rows that were).
    #[test]
    fn remove_plus_insert_at_equal_count_is_detected() {
        let mut inst = rel();
        let mut set = IndexSet::new();
        assert_eq!(set.of("R", &inst).probe(&atom(2)).len(), 1);
        let before = inst.len();
        // swap one row for another without notifying — same cardinality
        inst.remove(&tuple([atom(2), atom(20)]));
        inst.insert(tuple([atom(3), atom(30)]));
        assert_eq!(inst.len(), before, "the collision the bug needs");
        let idx = set.of("R", &inst);
        assert!(
            idx.probe(&atom(2)).is_empty(),
            "retracted row must not be served from a stale snapshot"
        );
        assert_eq!(idx.probe(&atom(3)).len(), 1, "new row must be visible");
        // the read-only path refuses the stale entry for the same reason
        let mut set2 = IndexSet::new();
        set2.of("R", &inst);
        inst.remove(&tuple([atom(3), atom(30)]));
        inst.insert(tuple([atom(4), atom(40)]));
        assert!(
            set2.get("R", 0, inst.version()).is_none(),
            "read-only probe must fall back to a scan, not a stale index"
        );
    }

    #[test]
    fn read_only_get_refuses_stale_entries() {
        let mut inst = rel();
        let mut set = IndexSet::new();
        assert!(
            set.get("R", 0, inst.version()).is_none(),
            "nothing built yet"
        );
        set.of_col("R", 0, &inst);
        assert!(set.get("R", 0, inst.version()).is_some());
        assert!(
            set.get("R", 1, inst.version()).is_none(),
            "column not built"
        );
        inst.insert(tuple([atom(4), atom(40)]));
        assert!(
            set.get("R", 0, inst.version()).is_none(),
            "stale entry must not be served to read-only probers"
        );
    }

    /// The id-keyed and plain bucket modes must be observationally
    /// identical — same probe answers, same counts — under inserts and
    /// removals alike.
    #[test]
    fn both_bucket_modes_answer_identically() {
        let was = crate::intern::enabled();
        for on in [true, false] {
            crate::intern::set_enabled(on);
            let mut idx = ColumnIndex::build(&rel());
            assert_eq!(idx.probe(&atom(1)).len(), 2);
            assert_eq!(idx.distinct_keys(), 2);
            idx.insert(&tuple([atom(1), atom(12)]));
            assert_eq!(idx.probe(&atom(1)).len(), 3);
            idx.remove(&tuple([atom(1), atom(10)]));
            idx.remove(&tuple([atom(2), atom(20)]));
            assert_eq!(idx.probe(&atom(1)).len(), 2);
            assert!(idx.probe(&atom(2)).is_empty());
            assert_eq!(idx.distinct_keys(), 1);
            assert_eq!(idx.len(), 2);
        }
        crate::intern::set_enabled(was);
    }

    #[test]
    fn invalidate_drops_all_columns() {
        let inst = rel();
        let mut set = IndexSet::new();
        set.of_col("R", 0, &inst);
        set.of_col("R", 1, &inst);
        set.invalidate("R");
        assert!(set.get("R", 0, inst.version()).is_none());
        assert!(set.get("R", 1, inst.version()).is_none());
    }
}
