//! Types and relaxed types (rtypes).
//!
//! Types are the paper's Section 2 definition: `U`, set types `{T}`, and
//! tuple types `[T1..Tn]` (n ≥ 1). Relaxed types (Section 4) additionally
//! include the universal rtype `Obj`, whose domain is all of **Obj** — this
//! is what "untyped sets" means formally: a variable of rtype `{Obj}`
//! ranges over arbitrarily heterogeneous finite sets.
//!
//! Every [`Type`] embeds into an [`RType`]; unlike types, two distinct
//! rtypes may have overlapping domains (e.g. `{U}` and `{Obj}`).

use crate::value::Value;
use std::fmt;

/// A (strict) type: `U`, `{T}`, or `[T1..Tn]`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Type {
    /// The basic type `U` of atoms.
    Atomic,
    /// A set type `{T}`.
    Set(Box<Type>),
    /// A tuple type `[T1, …, Tn]`, n ≥ 1.
    Tuple(Vec<Type>),
}

impl Type {
    /// The flat relation type `{[U, …, U]}` of the given arity.
    pub fn flat_relation(arity: usize) -> Type {
        Type::Set(Box::new(Type::Tuple(vec![Type::Atomic; arity])))
    }

    /// A tuple of `n` atomic components `[U, …, U]`.
    pub fn atomic_tuple(arity: usize) -> Type {
        Type::Tuple(vec![Type::Atomic; arity])
    }

    /// The type `{…{U}…}` with `depth` levels of set nesting.
    pub fn nested_set(depth: usize) -> Type {
        let mut t = Type::Atomic;
        for _ in 0..depth {
            t = Type::Set(Box::new(t));
        }
        t
    }

    /// True iff no set construct occurs (the paper's *flat* types are tuple
    /// types over `U`, i.e. relation schemas).
    pub fn is_flat(&self) -> bool {
        match self {
            Type::Atomic => true,
            Type::Set(_) => false,
            Type::Tuple(items) => items.iter().all(Type::is_flat),
        }
    }

    /// Maximum set-nesting depth of the type.
    pub fn set_depth(&self) -> usize {
        match self {
            Type::Atomic => 0,
            Type::Set(inner) => 1 + inner.set_depth(),
            Type::Tuple(items) => items.iter().map(Type::set_depth).max().unwrap_or(0),
        }
    }

    /// Type membership: does `v ∈ dom(self)`?
    pub fn contains(&self, v: &Value) -> bool {
        match (self, v) {
            (Type::Atomic, Value::Atom(_)) => true,
            (Type::Set(inner), Value::Set(items)) => items.iter().all(|x| inner.contains(x)),
            (Type::Tuple(ts), Value::Tuple(items)) => {
                ts.len() == items.len() && ts.iter().zip(items).all(|(t, x)| t.contains(x))
            }
            _ => false,
        }
    }

    /// Embed into the relaxed-type system.
    pub fn to_rtype(&self) -> RType {
        match self {
            Type::Atomic => RType::Atomic,
            Type::Set(inner) => RType::Set(Box::new(inner.to_rtype())),
            Type::Tuple(items) => RType::Tuple(items.iter().map(Type::to_rtype).collect()),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Atomic => write!(f, "U"),
            Type::Set(inner) => write!(f, "{{{inner}}}"),
            Type::Tuple(items) => {
                write!(f, "[")?;
                for (i, t) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A relaxed type (rtype): `U`, `Obj`, `{R}`, or `[R1..Rn]`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RType {
    /// The atomic rtype `U`.
    Atomic,
    /// The universal rtype `Obj` — every object inhabits it.
    Obj,
    /// A set rtype `{R}`.
    Set(Box<RType>),
    /// A tuple rtype `[R1, …, Rn]`, n ≥ 1.
    Tuple(Vec<RType>),
}

impl RType {
    /// The rtype `{Obj}` of untyped sets.
    pub fn untyped_set() -> RType {
        RType::Set(Box::new(RType::Obj))
    }

    /// The flat relation rtype `{[U, …, U]}` of the given arity.
    pub fn flat_relation(arity: usize) -> RType {
        RType::Set(Box::new(RType::Tuple(vec![RType::Atomic; arity])))
    }

    /// rtype membership: does `v ∈ dom(self)`?
    pub fn contains(&self, v: &Value) -> bool {
        match (self, v) {
            (RType::Obj, _) => true,
            (RType::Atomic, Value::Atom(_)) => true,
            (RType::Set(inner), Value::Set(items)) => items.iter().all(|x| inner.contains(x)),
            (RType::Tuple(ts), Value::Tuple(items)) => {
                ts.len() == items.len() && ts.iter().zip(items).all(|(t, x)| t.contains(x))
            }
            _ => false,
        }
    }

    /// True iff the rtype is actually a strict type (no `Obj` occurs).
    pub fn is_strict(&self) -> bool {
        match self {
            RType::Atomic => true,
            RType::Obj => false,
            RType::Set(inner) => inner.is_strict(),
            RType::Tuple(items) => items.iter().all(RType::is_strict),
        }
    }

    /// Convert to a strict [`Type`] if no `Obj` occurs.
    pub fn to_type(&self) -> Option<Type> {
        match self {
            RType::Atomic => Some(Type::Atomic),
            RType::Obj => None,
            RType::Set(inner) => inner.to_type().map(|t| Type::Set(Box::new(t))),
            RType::Tuple(items) => items
                .iter()
                .map(RType::to_type)
                .collect::<Option<Vec<_>>>()
                .map(Type::Tuple),
        }
    }

    /// Structural "liberality" order: `self ⊑ other` iff every value of
    /// `self` is a value of `other` *by structure* (sound but — because
    /// rtype domains overlap non-trivially — not complete for domain
    /// inclusion of empty-set corner cases; sufficient for type checking).
    pub fn subtype_of(&self, other: &RType) -> bool {
        match (self, other) {
            (_, RType::Obj) => true,
            (RType::Atomic, RType::Atomic) => true,
            (RType::Set(a), RType::Set(b)) => a.subtype_of(b),
            (RType::Tuple(xs), RType::Tuple(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| x.subtype_of(y))
            }
            _ => false,
        }
    }

    /// Least upper bound in the structural order, used when a language
    /// operation (e.g. union) merges differently-shaped operands.
    pub fn join(&self, other: &RType) -> RType {
        match (self, other) {
            // must stay: the joined type is an owned result
            (a, b) if a == b => a.clone(),
            (RType::Set(a), RType::Set(b)) => RType::Set(Box::new(a.join(b))),
            (RType::Tuple(xs), RType::Tuple(ys)) if xs.len() == ys.len() => {
                RType::Tuple(xs.iter().zip(ys).map(|(x, y)| x.join(y)).collect())
            }
            _ => RType::Obj,
        }
    }
}

impl fmt::Display for RType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RType::Atomic => write!(f, "U"),
            RType::Obj => write!(f, "Obj"),
            RType::Set(inner) => write!(f, "{{{inner}}}"),
            RType::Tuple(items) => {
                write!(f, "[")?;
                for (i, t) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<Type> for RType {
    fn from(t: Type) -> Self {
        t.to_rtype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, set, tuple};

    #[test]
    fn flat_types() {
        assert!(Type::flat_relation(2).set_depth() == 1);
        assert!(Type::atomic_tuple(3).is_flat());
        assert!(!Type::flat_relation(2).is_flat());
        assert!(Type::Atomic.is_flat());
    }

    #[test]
    fn type_membership() {
        let rel = Type::flat_relation(2);
        let good = set([tuple([atom(1), atom(2)])]);
        let bad = set([atom(1)]);
        assert!(rel.contains(&good));
        assert!(!rel.contains(&bad));
        // the empty set inhabits every set type
        assert!(rel.contains(&Value::empty_set()));
        assert!(
            Type::Set(Box::new(Type::Set(Box::new(Type::Atomic)))).contains(&Value::empty_set())
        );
    }

    #[test]
    fn obj_contains_everything() {
        let heterogeneous = set([atom(1), tuple([atom(2), atom(3)]), set([atom(4)])]);
        assert!(RType::Obj.contains(&heterogeneous));
        assert!(RType::untyped_set().contains(&heterogeneous));
        // but a strict set type does not
        assert!(!Type::Set(Box::new(Type::Atomic)).contains(&heterogeneous));
    }

    #[test]
    fn rtype_embedding_roundtrip() {
        let t = Type::Set(Box::new(Type::Tuple(vec![
            Type::Atomic,
            Type::nested_set(2),
        ])));
        let r = t.to_rtype();
        assert!(r.is_strict());
        assert_eq!(r.to_type(), Some(t));
        assert!(RType::Obj.to_type().is_none());
    }

    #[test]
    fn subtyping_and_join() {
        let u = RType::Atomic;
        let su = RType::Set(Box::new(RType::Atomic));
        let sobj = RType::untyped_set();
        assert!(su.subtype_of(&sobj));
        assert!(!sobj.subtype_of(&su));
        assert!(u.subtype_of(&RType::Obj));
        assert_eq!(su.join(&sobj), sobj);
        assert_eq!(u.join(&su), RType::Obj);
        let t1 = RType::Tuple(vec![u.clone(), su.clone()]);
        let t2 = RType::Tuple(vec![u.clone(), sobj.clone()]);
        assert_eq!(t1.join(&t2), RType::Tuple(vec![u, sobj]));
    }

    #[test]
    fn nested_set_builder() {
        assert_eq!(Type::nested_set(0), Type::Atomic);
        assert_eq!(Type::nested_set(2).set_depth(), 2);
        assert_eq!(format!("{}", Type::nested_set(2)), "{{U}}");
        assert_eq!(format!("{}", RType::untyped_set()), "{Obj}");
    }
}
