//! Objects — values built from atoms with tuple and set constructors.
//!
//! This realizes the set **Obj** of Section 4 of the paper: the smallest set
//! containing **U** and closed under finite tuples `[X1..Xn]` (n ≥ 1) and
//! finite sets `{X1..Xn}` (n ≥ 0). Sets are kept in a canonical ordered
//! form (a `BTreeSet` under the derived structural order), so `==` is
//! extensional set equality and every object has exactly one representation.

use crate::atom::Atom;
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// A complex object: an atom, a tuple of objects, or a finite set of objects.
///
/// The derived `Ord` (atoms < tuples < sets, lexicographic within a variant)
/// gives objects a canonical total order; sets are stored ordered under it,
/// which makes structural equality coincide with extensional set equality.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An element of **U**.
    Atom(Atom),
    /// A tuple `[X1, …, Xn]`, n ≥ 1 (we do not enforce n ≥ 1 structurally;
    /// the type checkers do).
    Tuple(Vec<Value>),
    /// A finite set `{X1, …, Xn}`, n ≥ 0, in canonical order.
    Set(BTreeSet<Value>),
}

impl Value {
    /// Build a set value from an iterator (duplicates collapse).
    pub fn set_of<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Set(items.into_iter().collect())
    }

    /// The empty set `{}`.
    pub fn empty_set() -> Value {
        Value::Set(BTreeSet::new())
    }

    /// True if this is an atom.
    pub fn is_atom(&self) -> bool {
        matches!(self, Value::Atom(_))
    }

    /// True if this is a tuple.
    pub fn is_tuple(&self) -> bool {
        matches!(self, Value::Tuple(_))
    }

    /// True if this is a set.
    pub fn is_set(&self) -> bool {
        matches!(self, Value::Set(_))
    }

    /// The atom inside, if atomic.
    pub fn as_atom(&self) -> Option<Atom> {
        match self {
            Value::Atom(a) => Some(*a),
            _ => None,
        }
    }

    /// The components, if a tuple.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if a set.
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(items) => Some(items),
            _ => None,
        }
    }

    /// The `i`-th tuple component (0-based), if present.
    pub fn project(&self, i: usize) -> Option<&Value> {
        self.as_tuple().and_then(|items| items.get(i))
    }

    /// Membership test `self ∈ other` (false if `other` is not a set).
    pub fn member_of(&self, other: &Value) -> bool {
        other.as_set().is_some_and(|s| s.contains(self))
    }

    /// Union `other` into this set in place, reusing the larger side's
    /// allocation: when `other` has more members the two sides are
    /// swapped wholesale before merging, so the tree-insert work is
    /// proportional to the *smaller* side. Returns true iff both values
    /// were sets (nothing is touched otherwise) — the replacement for
    /// the collect-into-a-fresh-`BTreeSet`-then-union pattern.
    pub fn union_into(&mut self, other: Value) -> bool {
        let (Value::Set(mine), Value::Set(mut theirs)) = (&mut *self, other) else {
            return false;
        };
        if theirs.len() > mine.len() {
            std::mem::swap(mine, &mut theirs);
        }
        mine.extend(theirs);
        true
    }

    /// The atomic (active) domain `adom(X)`: the set of atoms used in
    /// building this object.
    pub fn adom(&self) -> BTreeSet<Atom> {
        let mut out = BTreeSet::new();
        self.collect_adom(&mut out);
        out
    }

    /// Accumulate the atoms of this object into `out` (allocation-shared
    /// form of [`Value::adom`]).
    pub fn collect_adom(&self, out: &mut BTreeSet<Atom>) {
        match self {
            Value::Atom(a) => {
                out.insert(*a);
            }
            Value::Tuple(items) => {
                for v in items {
                    v.collect_adom(out);
                }
            }
            Value::Set(items) => {
                for v in items {
                    v.collect_adom(out);
                }
            }
        }
    }

    /// Structural size: the number of constructor nodes (atoms count 1).
    pub fn size(&self) -> usize {
        match self {
            Value::Atom(_) => 1,
            Value::Tuple(items) => 1 + items.iter().map(Value::size).sum::<usize>(),
            Value::Set(items) => 1 + items.iter().map(Value::size).sum::<usize>(),
        }
    }

    /// Set-nesting depth: 0 for atoms, max of components for tuples, one
    /// more than the member maximum for sets. This is the quantity that
    /// drives the hyper-exponential hierarchy of Theorem 2.2.
    pub fn set_depth(&self) -> usize {
        match self {
            Value::Atom(_) => 0,
            Value::Tuple(items) => items.iter().map(Value::set_depth).max().unwrap_or(0),
            Value::Set(items) => 1 + items.iter().map(Value::set_depth).max().unwrap_or(0),
        }
    }

    /// Apply an atom renaming to every atom in the object.
    pub fn map_atoms(&self, f: &mut impl FnMut(Atom) -> Atom) -> Value {
        match self {
            Value::Atom(a) => Value::Atom(f(*a)),
            Value::Tuple(items) => Value::Tuple(items.iter().map(|v| v.map_atoms(f)).collect()),
            Value::Set(items) => Value::Set(items.iter().map(|v| v.map_atoms(f)).collect()),
        }
    }

    /// True if the object mentions any atom from `atoms`.
    pub fn mentions_any(&self, atoms: &HashSet<Atom>) -> bool {
        match self {
            Value::Atom(a) => atoms.contains(a),
            Value::Tuple(items) => items.iter().any(|v| v.mentions_any(atoms)),
            Value::Set(items) => items.iter().any(|v| v.mentions_any(atoms)),
        }
    }
}

impl From<Atom> for Value {
    fn from(a: Atom) -> Self {
        Value::Atom(a)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => write!(f, "{a}"),
            Value::Tuple(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, set, tuple};

    #[test]
    fn set_equality_is_extensional() {
        let s1 = set([atom(1), atom(2), atom(2)]);
        let s2 = set([atom(2), atom(1)]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn nested_sets_canonicalize() {
        let a = set([set([atom(1)]), set([atom(2)])]);
        let b = set([set([atom(2)]), set([atom(1)])]);
        assert_eq!(a, b);
        assert_eq!(a.set_depth(), 2);
    }

    #[test]
    fn adom_collects_all_atoms() {
        let v = tuple([atom(1), set([atom(2), tuple([atom(3), atom(1)])])]);
        let adom = v.adom();
        assert_eq!(adom.len(), 3);
        assert!(adom.contains(&Atom::new(1)));
        assert!(adom.contains(&Atom::new(2)));
        assert!(adom.contains(&Atom::new(3)));
    }

    #[test]
    fn size_and_depth() {
        let v = set([tuple([atom(1), atom(2)]), atom(3)]);
        // set node + tuple node + 3 atoms
        assert_eq!(v.size(), 5);
        assert_eq!(v.set_depth(), 1);
        assert_eq!(atom(7).set_depth(), 0);
        assert_eq!(tuple([atom(1)]).set_depth(), 0);
    }

    #[test]
    fn projection_and_membership() {
        let t = tuple([atom(1), atom(2)]);
        assert_eq!(t.project(0), Some(&atom(1)));
        assert_eq!(t.project(2), None);
        let s = set([t.clone()]);
        assert!(t.member_of(&s));
        assert!(!atom(1).member_of(&s));
        assert!(!atom(1).member_of(&atom(2)));
    }

    #[test]
    fn union_into_merges_sets_in_place() {
        let mut a = set([atom(1), atom(2), atom(3)]);
        assert!(a.union_into(set([atom(3), atom(4)])));
        assert_eq!(a, set([atom(1), atom(2), atom(3), atom(4)]));
        // Swap direction: small ∪= big keeps the union correct.
        let mut b = set([atom(9)]);
        assert!(b.union_into(set([atom(1), atom(2), atom(3)])));
        assert_eq!(b, set([atom(1), atom(2), atom(3), atom(9)]));
        // Non-sets are left untouched on either side.
        let mut t = tuple([atom(1)]);
        assert!(!t.union_into(set([atom(2)])));
        assert_eq!(t, tuple([atom(1)]));
        let mut s = set([atom(1)]);
        assert!(!s.union_into(atom(2)));
        assert_eq!(s, set([atom(1)]));
    }

    #[test]
    fn map_atoms_renames_recursively() {
        let v = set([tuple([atom(1), set([atom(2)])])]);
        let renamed = v.map_atoms(&mut |a| Atom::new(a.id() + 10));
        assert_eq!(renamed, set([tuple([atom(11), set([atom(12)])])]));
    }

    #[test]
    fn ordering_variant_order() {
        // atoms < tuples < sets under the derived ordering
        let a = atom(1000);
        let t = tuple([atom(0)]);
        let s = Value::empty_set();
        assert!(a < t);
        assert!(t < s);
    }

    #[test]
    fn display_is_readable() {
        let v = set([tuple([atom(1), atom(2)])]);
        assert_eq!(format!("{v}"), "{[a1, a2]}");
        assert_eq!(format!("{}", Value::empty_set()), "{}");
    }
}
