//! Magic-set demand restriction for single-goal DATALOG¬ queries.
//!
//! [`query_datalog`] answers a [`Goal`] — a predicate with some argument
//! positions bound to constants — without materializing the whole
//! fixpoint. The classic transformation (Bancilhon–Maier–Sagiv–Ullman)
//! is applied when it is safe here:
//!
//! * the goal-reachable fragment uses negation only on EDB relations
//!   (magic predicates are defined purely positively, so the transformed
//!   program stays stratifiable), and
//! * the goal binds at least one argument after adornment propagation.
//!
//! Otherwise the query falls back to evaluating the goal-reachable
//! fragment (still pruned and optimized via
//! [`optimize_datalog`](crate::optimize_datalog)) and filtering.
//!
//! Each predicate gets **one** adornment: the intersection of the bound
//! position sets over all its call sites under a left-to-right sideways
//! information passing strategy. The intersection is a subset of every
//! site's bound positions, so projecting a site's arguments onto it is
//! always defined, and it only shrinks during propagation, so the
//! analysis terminates. Negated literals are omitted from magic-rule
//! bodies — that over-approximates demand (more magic facts), which is
//! sound: guarded rules still derive every goal-relevant fact, and the
//! final answer is filtered against the goal's constants either way.

use std::collections::{BTreeMap, BTreeSet};

use uset_deductive::{DatalogProgram, DlAtom, DlError, DlRule, DlTerm};
use uset_guard::Governor;
use uset_object::{Database, EvalStats, Instance, Value};

use crate::datalog::optimize_datalog;

/// A single-predicate query: `pred` with each argument position either
/// bound to a constant (`Some`) or free (`None`). `bound.len()` must
/// match the predicate's arity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Goal {
    /// The queried predicate.
    pub pred: String,
    /// Per-position binding: `Some(v)` restricts that argument to `v`.
    pub bound: Vec<Option<Value>>,
}

impl Goal {
    /// Build a goal.
    pub fn new(pred: &str, bound: Vec<Option<Value>>) -> Goal {
        Goal {
            pred: pred.to_owned(),
            bound,
        }
    }
}

/// Rows of `inst` matching the goal's bound constants. DATALOG¬
/// relations store every row as a tuple, unary ones included.
fn filter_goal(inst: &Instance, bound: &[Option<Value>]) -> Instance {
    if bound.iter().all(Option::is_none) {
        return inst.clone();
    }
    Instance::from_values(
        inst.iter()
            .filter(|row| {
                row.as_tuple().is_some_and(|items| {
                    items.len() == bound.len()
                        && bound
                            .iter()
                            .zip(items)
                            .all(|(b, v)| b.as_ref().is_none_or(|b| b == v))
                })
            })
            .cloned(),
    )
}

/// Variables of an atom.
fn atom_vars(atom: &DlAtom) -> impl Iterator<Item = &str> {
    atom.args.iter().filter_map(|t| match t {
        DlTerm::Var(v) => Some(v.as_str()),
        DlTerm::Const(_) => None,
    })
}

/// Argument positions that are constants or already-bound variables.
fn bound_positions(atom: &DlAtom, bound: &BTreeSet<String>) -> BTreeSet<usize> {
    atom.args
        .iter()
        .enumerate()
        .filter(|(_, t)| match t {
            DlTerm::Const(_) => true,
            DlTerm::Var(v) => bound.contains(v.as_str()),
        })
        .map(|(i, _)| i)
        .collect()
}

/// One adornment per predicate: the intersection of bound-position sets
/// over every positive call site, propagated to fixpoint from the goal.
fn adornments(
    fragment: &[DlRule],
    idb: &BTreeSet<String>,
    goal: &Goal,
) -> BTreeMap<String, BTreeSet<usize>> {
    let goal_positions: BTreeSet<usize> = goal
        .bound
        .iter()
        .enumerate()
        .filter_map(|(i, b)| b.as_ref().map(|_| i))
        .collect();
    let mut adorn: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    adorn.insert(goal.pred.clone(), goal_positions);
    let mut worklist = vec![goal.pred.clone()];
    while let Some(p) = worklist.pop() {
        let a_p = adorn.get(&p).cloned().unwrap_or_default();
        for rule in fragment.iter().filter(|r| r.head.pred == p) {
            let mut env: BTreeSet<String> = rule
                .head
                .args
                .iter()
                .enumerate()
                .filter(|(i, _)| a_p.contains(i))
                .filter_map(|(_, t)| match t {
                    DlTerm::Var(v) => Some(v.clone()),
                    DlTerm::Const(_) => None,
                })
                .collect();
            for lit in &rule.body {
                if !lit.positive {
                    continue; // negations neither bind nor receive demand
                }
                if idb.contains(&lit.atom.pred) {
                    let site = bound_positions(&lit.atom, &env);
                    let changed = match adorn.get_mut(&lit.atom.pred) {
                        Some(existing) => {
                            let narrowed: BTreeSet<usize> =
                                existing.intersection(&site).copied().collect();
                            let changed = narrowed != *existing;
                            *existing = narrowed;
                            changed
                        }
                        None => {
                            adorn.insert(lit.atom.pred.clone(), site);
                            true
                        }
                    };
                    if changed {
                        worklist.push(lit.atom.pred.clone());
                    }
                }
                env.extend(atom_vars(&lit.atom).map(str::to_owned));
            }
        }
    }
    adorn
}

/// A collision-free magic-predicate name for each adorned predicate.
fn magic_names(
    adorn: &BTreeMap<String, BTreeSet<usize>>,
    prog: &DatalogProgram,
    db: &Database,
) -> BTreeMap<String, String> {
    let mut taken: BTreeSet<String> = db.iter().map(|(n, _)| n.to_owned()).collect();
    for rule in &prog.rules {
        taken.insert(rule.head.pred.clone());
        for lit in &rule.body {
            taken.insert(lit.atom.pred.clone());
        }
    }
    let mut names = BTreeMap::new();
    for (pred, positions) in adorn {
        if positions.is_empty() {
            continue; // free adornment: no magic predicate
        }
        let mut name = format!("{pred}__m");
        while taken.contains(&name) {
            name.push('_');
        }
        taken.insert(name.clone());
        names.insert(pred.clone(), name);
    }
    names
}

/// Project an atom's arguments onto an adornment's positions.
fn project(atom: &DlAtom, positions: &BTreeSet<usize>) -> Vec<DlTerm> {
    positions.iter().map(|&i| atom.args[i].clone()).collect()
}

/// The magic-transformed program: guarded originals plus demand rules.
fn magic_program(
    fragment: &[DlRule],
    idb: &BTreeSet<String>,
    adorn: &BTreeMap<String, BTreeSet<usize>>,
    names: &BTreeMap<String, String>,
) -> DatalogProgram {
    let mut rules = Vec::new();
    for rule in fragment {
        let p = &rule.head.pred;
        let guard: Option<(bool, DlAtom)> = names.get(p).map(|m| {
            let positions = &adorn[p];
            (
                true,
                DlAtom {
                    pred: m.clone(),
                    args: project(&rule.head, positions),
                },
            )
        });
        // demand rules: one per positive adorned IDB body literal, with
        // the guard plus the *positive* body prefix as context
        let mut prefix: Vec<(bool, DlAtom)> = guard.iter().cloned().collect();
        for lit in &rule.body {
            if !lit.positive {
                continue;
            }
            if idb.contains(&lit.atom.pred) {
                if let Some(m) = names.get(&lit.atom.pred) {
                    rules.push(DlRule::new(
                        DlAtom {
                            pred: m.clone(),
                            args: project(&lit.atom, &adorn[&lit.atom.pred]),
                        },
                        prefix.clone(),
                    ));
                }
            }
            prefix.push((true, lit.atom.clone()));
        }
        // guarded original rule
        let mut body: Vec<(bool, DlAtom)> = guard.into_iter().collect();
        body.extend(rule.body.iter().map(|l| (l.positive, l.atom.clone())));
        rules.push(DlRule::new(rule.head.clone(), body));
    }
    DatalogProgram::new(rules)
}

/// Evaluate the pruned, optimized fragment fully and filter — the path
/// taken when the magic transformation is not applicable.
fn fallback(
    fragment: Vec<DlRule>,
    db: &Database,
    goal: &Goal,
    governor: &Governor,
    stats: &mut EvalStats,
) -> Result<Instance, DlError> {
    let pruned = optimize_datalog(&DatalogProgram::new(fragment), Some(db));
    let result = pruned.eval_stratified_seminaive_governed(db, governor, stats)?;
    Ok(filter_goal(&result.get(&goal.pred), &goal.bound))
}

/// Answer a single-goal query over `prog` and `db`, deriving only facts
/// the goal demands where possible. The result equals the goal relation
/// of the full stratified fixpoint filtered by the goal's constants.
pub fn query_datalog(
    prog: &DatalogProgram,
    db: &Database,
    goal: &Goal,
    governor: &Governor,
    stats: &mut EvalStats,
) -> Result<Instance, DlError> {
    let idb = prog.idb_predicates();
    if !idb.contains(&goal.pred) {
        return Ok(filter_goal(&db.get(&goal.pred), &goal.bound));
    }
    prog.check_safety()?;

    // goal-reachable fragment: rules (transitively) usable to derive it
    let mut reach: BTreeSet<String> = BTreeSet::from([goal.pred.clone()]);
    let mut stack = vec![goal.pred.clone()];
    while let Some(p) = stack.pop() {
        for rule in prog.rules.iter().filter(|r| r.head.pred == p) {
            for lit in &rule.body {
                if reach.insert(lit.atom.pred.clone()) {
                    stack.push(lit.atom.pred.clone());
                }
            }
        }
    }
    let fragment: Vec<DlRule> = prog
        .rules
        .iter()
        .filter(|r| reach.contains(&r.head.pred))
        .cloned()
        .collect();

    let negates_idb = fragment
        .iter()
        .flat_map(|r| &r.body)
        .any(|l| !l.positive && idb.contains(&l.atom.pred));
    if negates_idb {
        return fallback(fragment, db, goal, governor, stats);
    }

    let adorn = adornments(&fragment, &idb, goal);
    let goal_adorn = adorn.get(&goal.pred).cloned().unwrap_or_default();
    if goal_adorn.is_empty() {
        // every binding was lost to a free call site: nothing to restrict
        return fallback(fragment, db, goal, governor, stats);
    }

    let names = magic_names(&adorn, prog, db);
    let transformed = magic_program(&fragment, &idb, &adorn, &names);

    // seed the demand with the goal's constants
    let seed_values: Vec<Value> = goal_adorn
        .iter()
        .filter_map(|&i| goal.bound.get(i).cloned().flatten())
        .collect();
    debug_assert_eq!(seed_values.len(), goal_adorn.len());
    // the engine's row representation is a tuple at every arity
    let seed = Value::Tuple(seed_values);
    let mut db2 = db.clone();
    let mut magic_goal = db2.get(&names[&goal.pred]);
    magic_goal.insert(seed);
    db2.set(names[&goal.pred].clone(), magic_goal);

    let result = transformed.eval_stratified_seminaive_governed(&db2, governor, stats)?;
    Ok(filter_goal(&result.get(&goal.pred), &goal.bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_object::atom;

    fn v(name: &str) -> DlTerm {
        DlTerm::var(name)
    }

    fn tc_prog() -> DatalogProgram {
        DatalogProgram::new(vec![
            DlRule::new(
                DlAtom::new("T", vec![v("x"), v("y")]),
                vec![(true, DlAtom::new("R", vec![v("x"), v("y")]))],
            ),
            DlRule::new(
                DlAtom::new("T", vec![v("x"), v("z")]),
                vec![
                    (true, DlAtom::new("R", vec![v("x"), v("y")])),
                    (true, DlAtom::new("T", vec![v("y"), v("z")])),
                ],
            ),
        ])
    }

    fn path_db(n: u64) -> Database {
        let mut db = Database::empty();
        db.set(
            "R",
            Instance::from_rows((0..n).map(|i| [atom(i), atom(i + 1)])),
        );
        db
    }

    fn full_filtered(prog: &DatalogProgram, db: &Database, goal: &Goal) -> (Instance, EvalStats) {
        let mut stats = EvalStats::default();
        let full = prog
            .eval_stratified_seminaive_governed(db, &Governor::unlimited(), &mut stats)
            .unwrap();
        (filter_goal(&full.get(&goal.pred), &goal.bound), stats)
    }

    #[test]
    fn magic_query_equals_filtered_full_eval_and_derives_less() {
        let prog = tc_prog();
        let db = path_db(32);
        // bind the *second* argument: who reaches node 32?
        let goal = Goal::new("T", vec![None, Some(atom(32u64))]);
        let (expected, full_stats) = full_filtered(&prog, &db, &goal);
        let mut stats = EvalStats::default();
        let got = query_datalog(&prog, &db, &goal, &Governor::unlimited(), &mut stats).unwrap();
        assert_eq!(got, expected);
        assert_eq!(got.len(), 32);
        assert!(
            stats.tuples_derived * 2 <= full_stats.tuples_derived,
            "magic should derive at most half the tuples: {} vs {}",
            stats.tuples_derived,
            full_stats.tuples_derived
        );
    }

    #[test]
    fn fully_bound_goal_answers_membership() {
        let prog = tc_prog();
        let db = path_db(8);
        let hit = Goal::new("T", vec![Some(atom(2u64)), Some(atom(7u64))]);
        let miss = Goal::new("T", vec![Some(atom(7u64)), Some(atom(2u64))]);
        let gov = Governor::unlimited();
        let got = query_datalog(&prog, &db, &hit, &gov, &mut EvalStats::default()).unwrap();
        assert_eq!(got.len(), 1);
        let got = query_datalog(&prog, &db, &miss, &gov, &mut EvalStats::default()).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn edb_goal_filters_without_evaluating() {
        let db = path_db(4);
        let goal = Goal::new("R", vec![Some(atom(1u64)), None]);
        let mut stats = EvalStats::default();
        let got = query_datalog(
            &DatalogProgram::new(vec![]),
            &db,
            &goal,
            &Governor::unlimited(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn negated_idb_fragment_falls_back_but_stays_correct() {
        let mut rules = tc_prog().rules;
        // NT(x,y) ← node pairs not connected: negation over IDB T
        rules.push(DlRule::new(
            DlAtom::new("N", vec![v("x")]),
            vec![(true, DlAtom::new("R", vec![v("x"), v("y")]))],
        ));
        rules.push(DlRule::new(
            DlAtom::new("NT", vec![v("x"), v("y")]),
            vec![
                (true, DlAtom::new("N", vec![v("x")])),
                (true, DlAtom::new("N", vec![v("y")])),
                (false, DlAtom::new("T", vec![v("x"), v("y")])),
            ],
        ));
        let prog = DatalogProgram::new(rules);
        let db = path_db(6);
        let goal = Goal::new("NT", vec![Some(atom(3u64)), None]);
        let (expected, _) = full_filtered(&prog, &db, &goal);
        let got = query_datalog(
            &prog,
            &db,
            &goal,
            &Governor::unlimited(),
            &mut EvalStats::default(),
        )
        .unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn magic_name_collisions_are_avoided() {
        let mut rules = tc_prog().rules;
        // occupy the natural magic name for T
        rules.push(DlRule::new(
            DlAtom::new("T__m", vec![v("x")]),
            vec![(true, DlAtom::new("R", vec![v("x"), v("y")]))],
        ));
        let prog = DatalogProgram::new(rules);
        let db = path_db(8);
        let goal = Goal::new("T", vec![None, Some(atom(8u64))]);
        let (expected, _) = full_filtered(&prog, &db, &goal);
        let got = query_datalog(
            &prog,
            &db,
            &goal,
            &Governor::unlimited(),
            &mut EvalStats::default(),
        )
        .unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn unary_goal_seeds_single_column_tuple_rows() {
        // Reach(y) ← Start(x), T(x,y): unary IDB goal with a unary magic
        // seed exercises the tuple-at-every-arity row convention.
        let mut rules = tc_prog().rules;
        rules.push(DlRule::new(
            DlAtom::new("Reach", vec![v("y")]),
            vec![
                (true, DlAtom::new("Start", vec![v("x")])),
                (true, DlAtom::new("T", vec![v("x"), v("y")])),
            ],
        ));
        let prog = DatalogProgram::new(rules);
        let mut db = path_db(6);
        db.set("Start", Instance::from_rows([[atom(4u64)]]));
        let goal = Goal::new("Reach", vec![Some(atom(6u64))]);
        let (expected, _) = full_filtered(&prog, &db, &goal);
        let got = query_datalog(
            &prog,
            &db,
            &goal,
            &Governor::unlimited(),
            &mut EvalStats::default(),
        )
        .unwrap();
        assert_eq!(got, expected);
        assert_eq!(got.len(), 1);
    }
}
