//! # uset-opt — analysis-driven program optimization for the deductive engines
//!
//! An opt-in pre-pass that rewrites DATALOG¬ and COL programs using the
//! proofs landed by `uset-analysis`'s abstract-interpretation engine
//! ([`uset_analysis::absint`]), plus a magic-set-style demand restriction
//! for single-goal queries. Three kinds of entry point:
//!
//! * [`optimize_datalog`] / [`optimize_col`] — **state-preserving**
//!   rewrites: dead-rule elimination (a rule whose body provably admits
//!   zero bindings), removal of always-true negated literals (negation on
//!   a provably empty relation), α-equivalent duplicate-rule removal, and
//!   selectivity-guided body reordering. Evaluating the optimized program
//!   produces a final state **bit-identical** to the original's and never
//!   derives more tuples (`EvalStats::tuples_derived` is ≤; see
//!   `tests/opt_diff.rs` and DESIGN.md §12 for the safety argument).
//! * [`query_datalog`] — a goal-directed query path: for a single
//!   [`Goal`], applies the magic-set transformation (left-to-right
//!   sideways information passing, one adornment per predicate) when the
//!   goal-reachable fragment uses negation only on EDB relations, and
//!   falls back to reachability pruning otherwise. Only the **goal
//!   relation** is preserved, restricted to the goal's bound constants.
//! * engine wrappers ([`eval_stratified`], [`eval_stratified_seminaive`],
//!   [`eval_inflationary`], [`col_stratified`], [`col_inflationary`]) —
//!   drop-in front doors that consult [`uset_guard::OptConfig`] on the
//!   governor (`USET_OPT=on|off`, default off) and run the
//!   state-preserving optimizer before delegating to the engines. The
//!   engines themselves stay optimizer-agnostic.
//!
//! The optimizer assumes programs that pass the engines' own well-
//! formedness checks; the DATALOG¬ wrappers re-run [`check_safety`]
//! first so an unsafe program is rejected identically with the knob on
//! or off.
//!
//! [`check_safety`]: uset_deductive::DatalogProgram::check_safety

pub mod col;
pub mod datalog;
pub mod magic;
pub mod plan;

pub use col::optimize_col;
pub use datalog::optimize_datalog;
pub use magic::{query_datalog, Goal};
pub use plan::{maintenance_plan, MaintPlan, MaintStratum, StratumPlan};

use uset_deductive::col::eval as col_eval;
use uset_deductive::{
    ColConfig, ColEvalError, ColProgram, ColState, ColStrategy, DatalogProgram, DlError,
};
use uset_guard::Governor;
use uset_object::{Database, EvalStats};

/// Stratified DATALOG¬ evaluation; optimizes first when the governor's
/// [`uset_guard::OptConfig`] resolves to on.
pub fn eval_stratified(
    prog: &DatalogProgram,
    db: &Database,
    governor: &Governor,
    stats: &mut EvalStats,
) -> Result<Database, DlError> {
    if governor.opt.resolve() {
        prog.check_safety()?;
        optimize_datalog(prog, Some(db)).eval_stratified_governed(db, governor, stats)
    } else {
        prog.eval_stratified_governed(db, governor, stats)
    }
}

/// Semi-naive stratified DATALOG¬ evaluation behind the opt knob.
pub fn eval_stratified_seminaive(
    prog: &DatalogProgram,
    db: &Database,
    governor: &Governor,
    stats: &mut EvalStats,
) -> Result<Database, DlError> {
    if governor.opt.resolve() {
        prog.check_safety()?;
        optimize_datalog(prog, Some(db)).eval_stratified_seminaive_governed(db, governor, stats)
    } else {
        prog.eval_stratified_seminaive_governed(db, governor, stats)
    }
}

/// Inflationary DATALOG¬ evaluation behind the opt knob.
pub fn eval_inflationary(
    prog: &DatalogProgram,
    db: &Database,
    governor: &Governor,
    stats: &mut EvalStats,
) -> Result<Database, DlError> {
    if governor.opt.resolve() {
        prog.check_safety()?;
        optimize_datalog(prog, Some(db)).eval_inflationary_governed(db, governor, stats)
    } else {
        prog.eval_inflationary_governed(db, governor, stats)
    }
}

/// Stratified COL evaluation behind the opt knob.
pub fn col_stratified(
    prog: &ColProgram,
    db: &Database,
    config: &ColConfig,
    strategy: ColStrategy,
    governor: &Governor,
    stats: &mut EvalStats,
) -> Result<ColState, ColEvalError> {
    if governor.opt.resolve() {
        let optimized = optimize_col(prog, Some(db));
        col_eval::stratified_governed(&optimized, db, config, strategy, governor, stats)
    } else {
        col_eval::stratified_governed(prog, db, config, strategy, governor, stats)
    }
}

/// Inflationary COL evaluation behind the opt knob.
pub fn col_inflationary(
    prog: &ColProgram,
    db: &Database,
    config: &ColConfig,
    strategy: ColStrategy,
    governor: &Governor,
    stats: &mut EvalStats,
) -> Result<ColState, ColEvalError> {
    if governor.opt.resolve() {
        let optimized = optimize_col(prog, Some(db));
        col_eval::inflationary_governed(&optimized, db, config, strategy, governor, stats)
    } else {
        col_eval::inflationary_governed(prog, db, config, strategy, governor, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_deductive::{DlAtom, DlRule, DlTerm};
    use uset_guard::OptConfig;
    use uset_object::{atom, Instance};

    fn tc() -> DatalogProgram {
        let v = DlTerm::var;
        DatalogProgram::new(vec![
            DlRule::new(
                DlAtom::new("T", vec![v("x"), v("y")]),
                vec![(true, DlAtom::new("R", vec![v("x"), v("y")]))],
            ),
            DlRule::new(
                DlAtom::new("T", vec![v("x"), v("z")]),
                vec![
                    (true, DlAtom::new("R", vec![v("x"), v("y")])),
                    (true, DlAtom::new("T", vec![v("y"), v("z")])),
                ],
            ),
        ])
    }

    #[test]
    fn knob_off_and_on_agree_on_final_state() {
        let mut db = Database::empty();
        db.set(
            "R",
            Instance::from_rows((0u64..5).map(|i| [atom(i), atom(i + 1)])),
        );
        let prog = tc();
        let off = Governor::unlimited().with_opt(OptConfig::Off);
        let on = Governor::unlimited().with_opt(OptConfig::On);
        let mut s_off = EvalStats::default();
        let mut s_on = EvalStats::default();
        let r_off = eval_stratified_seminaive(&prog, &db, &off, &mut s_off).unwrap();
        let r_on = eval_stratified_seminaive(&prog, &db, &on, &mut s_on).unwrap();
        assert_eq!(r_off, r_on);
        assert!(s_on.tuples_derived <= s_off.tuples_derived);
    }

    #[test]
    fn unsafe_program_rejected_identically_under_both_knobs() {
        let v = DlTerm::var;
        let prog = DatalogProgram::new(vec![DlRule::new(DlAtom::new("A", vec![v("x")]), vec![])]);
        let db = Database::empty();
        for cfg in [OptConfig::Off, OptConfig::On] {
            let gov = Governor::unlimited().with_opt(cfg);
            let err = eval_stratified(&prog, &db, &gov, &mut EvalStats::default()).unwrap_err();
            assert!(matches!(err, DlError::Unsafe(_)), "{cfg:?}: {err}");
        }
    }
}
