//! State-preserving COL optimization.
//!
//! [`optimize_col`] mirrors the DATALOG¬ pipeline (dead rules,
//! always-true negations, α-duplicate removal, boundness-then-selectivity
//! reordering) for the richer COL body forms. Because COL literals can
//! fail at firing time in more ways than DATALOG¬ (`NonGround` on set
//! literals, function applications, negations, and equalities), every
//! rewrite is gated on a *moding model* that tracks exactly what the
//! engine's `extend` step can evaluate:
//!
//! * positive `P(t̄)` — generator; ready when every variable under a
//!   `SetLit`/`Apply` sub-term is bound (those sub-patterns are compared,
//!   not destructured); binds the remaining variables.
//! * positive `e ∈ s` — generator; ready when `s` is ground and `e`'s
//!   compared sub-terms are ground; binds `e`'s pattern variables.
//! * positive `l ≈ r` with one side a bare unbound variable — generator
//!   (assignment); ready when the other side is ground.
//! * everything else (negations, ground equalities) — filter; ready when
//!   fully ground.
//!
//! A rule whose original body ever reaches a not-ready literal is left
//! byte-for-byte intact: it may raise `NonGround` mid-evaluation and the
//! optimized program must fail identically. For well-moded rules the
//! final binding set is order-independent, so the fixpoint state and the
//! per-rule `tuples_derived` are preserved exactly.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use uset_analysis::absint::{analyze_col, Analysis};
use uset_deductive::{ColHead, ColLiteral, ColProgram, ColRule, ColTerm};
use uset_object::{ColumnIndex, Database};

/// Variables a positive match of `pat` *binds* (everything except the
/// compared `SetLit`/`Apply` sub-terms, which must already be ground).
fn binding_vars(pat: &ColTerm, out: &mut BTreeSet<String>) {
    match pat {
        ColTerm::Var(v) => {
            out.insert(v.clone());
        }
        ColTerm::Const(_) => {}
        ColTerm::Tuple(ts) => ts.iter().for_each(|t| binding_vars(t, out)),
        ColTerm::SetLit(_) | ColTerm::Apply(..) => {}
    }
}

/// Variables a positive match of `pat` *reads*: those under `SetLit` or
/// `Apply` nodes, which the engine evaluates rather than destructures.
fn read_vars(pat: &ColTerm, out: &mut BTreeSet<String>) {
    match pat {
        ColTerm::Var(_) | ColTerm::Const(_) => {}
        ColTerm::Tuple(ts) => ts.iter().for_each(|t| read_vars(t, out)),
        ColTerm::SetLit(ts) | ColTerm::Apply(_, ts) => {
            for t in ts {
                let mut vs = Vec::new();
                t.collect_vars(&mut vs);
                out.extend(vs);
            }
        }
    }
}

/// All variables of a term.
fn all_vars(t: &ColTerm, out: &mut BTreeSet<String>) {
    let mut vs = Vec::new();
    t.collect_vars(&mut vs);
    out.extend(vs);
}

/// What a literal needs bound before the engine can evaluate it without
/// `NonGround`, and what it binds on success.
fn moding(lit: &ColLiteral, bound: &BTreeSet<String>) -> Option<BTreeSet<String>> {
    let mut needs = BTreeSet::new();
    let mut binds = BTreeSet::new();
    match lit {
        ColLiteral::Pred { args, positive, .. } => {
            if *positive {
                for a in args {
                    read_vars(a, &mut needs);
                    binding_vars(a, &mut binds);
                }
            } else {
                for a in args {
                    all_vars(a, &mut needs);
                }
            }
        }
        ColLiteral::Member {
            elem,
            set,
            positive,
        } => {
            all_vars(set, &mut needs);
            if *positive {
                read_vars(elem, &mut needs);
                binding_vars(elem, &mut binds);
            } else {
                all_vars(elem, &mut needs);
            }
        }
        ColLiteral::Eq {
            left,
            right,
            positive,
        } => {
            let mut lv = BTreeSet::new();
            let mut rv = BTreeSet::new();
            all_vars(left, &mut lv);
            all_vars(right, &mut rv);
            let l_ground = lv.iter().all(|v| bound.contains(v));
            let r_ground = rv.iter().all(|v| bound.contains(v));
            if l_ground && r_ground {
                // pure test
            } else if *positive && r_ground && matches!(left, ColTerm::Var(_)) {
                binds.extend(lv);
            } else if *positive && l_ground && matches!(right, ColTerm::Var(_)) {
                binds.extend(rv);
            } else {
                return None;
            }
        }
    }
    if needs.iter().all(|v| bound.contains(v)) {
        binds.retain(|v| !bound.contains(v));
        Some(binds)
    } else {
        None
    }
}

/// True if the engine evaluates this body left-to-right without ever
/// hitting a `NonGround` error.
fn well_moded(body: &[ColLiteral]) -> bool {
    let mut bound = BTreeSet::new();
    for lit in body {
        match moding(lit, &bound) {
            Some(binds) => bound.extend(binds),
            None => return false,
        }
    }
    true
}

/// Cardinality estimate for a ready generator.
fn generator_cost(
    lit: &ColLiteral,
    bound: &BTreeSet<String>,
    analysis: &Analysis,
    db: Option<&Database>,
    defined: &BTreeSet<String>,
    depth_cache: &mut BTreeMap<(String, usize), u64>,
) -> (u8, u64) {
    match lit {
        ColLiteral::Pred { name, args, .. } => {
            let probe = args.first().is_some_and(|a| {
                let mut needs = BTreeSet::new();
                all_vars(a, &mut needs);
                needs.iter().all(|v| bound.contains(v))
            });
            let card = if let Some(db) = db {
                if !defined.contains(name) {
                    let inst = db.get(name);
                    if probe && args.len() > 1 {
                        *depth_cache.entry((name.clone(), 0)).or_insert_with(|| {
                            ColumnIndex::build_on(&inst, 0).avg_bucket_depth() as u64
                        })
                    } else {
                        inst.len() as u64
                    }
                } else {
                    analysis
                        .info(name)
                        .and_then(|i| i.card.hi)
                        .unwrap_or(u64::MAX)
                }
            } else {
                analysis
                    .info(name)
                    .and_then(|i| i.card.hi)
                    .unwrap_or(u64::MAX)
            };
            (u8::from(!probe), card)
        }
        ColLiteral::Member { set, .. } => {
            let card = match set {
                ColTerm::SetLit(ts) => ts.len() as u64,
                ColTerm::Apply(f, _) => {
                    analysis.info(f).and_then(|i| i.card.hi).unwrap_or(u64::MAX)
                }
                _ => u64::MAX,
            };
            (0, card)
        }
        // an equality assignment yields at most one extension per binding
        ColLiteral::Eq { .. } => (0, 1),
    }
}

/// Greedy reorder of a well-moded body: ready filters first (original
/// order), then the cheapest ready generator, until done. Falls back to
/// the original order if it ever stalls.
fn reorder(
    body: Vec<ColLiteral>,
    analysis: &Analysis,
    db: Option<&Database>,
    defined: &BTreeSet<String>,
    depth_cache: &mut BTreeMap<(String, usize), u64>,
) -> Vec<ColLiteral> {
    let mut bound: BTreeSet<String> = BTreeSet::new();
    let mut remaining: Vec<Option<ColLiteral>> = body.iter().cloned().map(Some).collect();
    let mut out: Vec<ColLiteral> = Vec::with_capacity(body.len());
    loop {
        let mut placed = false;
        // ready filters (bind nothing) run first, in original order
        for slot in remaining.iter_mut() {
            if let Some(lit) = slot {
                if moding(lit, &bound).is_some_and(|binds| binds.is_empty()) {
                    out.push(slot.take().unwrap_or_else(|| unreachable!()));
                    placed = true;
                }
            }
        }
        // cheapest ready generator
        let mut best: Option<(u8, u64, usize)> = None;
        for (j, slot) in remaining.iter().enumerate() {
            if let Some(lit) = slot {
                if moding(lit, &bound).is_some_and(|binds| !binds.is_empty()) {
                    let (scan, card) =
                        generator_cost(lit, &bound, analysis, db, defined, depth_cache);
                    let key = (scan, card, j);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
        }
        if let Some((_, _, j)) = best {
            if let Some(lit) = remaining[j].take() {
                if let Some(binds) = moding(&lit, &bound) {
                    bound.extend(binds);
                }
                out.push(lit);
                placed = true;
            }
        }
        if !placed {
            break;
        }
    }
    if remaining.iter().any(Option::is_some) {
        return body;
    }
    out
}

/// Canonical α-renamed rendering of a rule (head, body, and sorted type
/// annotations), used to drop duplicate rules.
fn canonical(rule: &ColRule) -> String {
    fn term(t: &ColTerm, s: &mut String, map: &mut BTreeMap<String, usize>) {
        match t {
            ColTerm::Var(v) => {
                let next = map.len();
                let id = *map.entry(v.clone()).or_insert(next);
                let _ = write!(s, "v{id}");
            }
            ColTerm::Const(c) => {
                let _ = write!(s, "{c:?}");
            }
            ColTerm::Tuple(ts) => {
                s.push('[');
                for t in ts {
                    term(t, s, map);
                    s.push(',');
                }
                s.push(']');
            }
            ColTerm::SetLit(ts) => {
                s.push('{');
                for t in ts {
                    term(t, s, map);
                    s.push(',');
                }
                s.push('}');
            }
            ColTerm::Apply(f, ts) => {
                s.push_str(f);
                s.push('(');
                for t in ts {
                    term(t, s, map);
                    s.push(',');
                }
                s.push(')');
            }
        }
    }
    fn lit(l: &ColLiteral, s: &mut String, map: &mut BTreeMap<String, usize>) {
        match l {
            ColLiteral::Pred {
                name,
                args,
                positive,
            } => {
                if !positive {
                    s.push('!');
                }
                s.push_str(name);
                s.push('(');
                for a in args {
                    term(a, s, map);
                    s.push(',');
                }
                s.push(')');
            }
            ColLiteral::Member {
                elem,
                set,
                positive,
            } => {
                term(elem, s, map);
                s.push_str(if *positive { "@in@" } else { "@notin@" });
                term(set, s, map);
            }
            ColLiteral::Eq {
                left,
                right,
                positive,
            } => {
                term(left, s, map);
                s.push_str(if *positive { "@eq@" } else { "@neq@" });
                term(right, s, map);
            }
        }
    }
    let mut s = String::new();
    let mut map = BTreeMap::new();
    match &rule.head {
        ColHead::Pred { name, args } => {
            s.push_str(name);
            s.push('(');
            for a in args {
                term(a, &mut s, &mut map);
                s.push(',');
            }
            s.push(')');
        }
        ColHead::FuncMember { func, args, elem } => {
            term(elem, &mut s, &mut map);
            s.push_str("@in@");
            s.push_str(func);
            s.push('(');
            for a in args {
                term(a, &mut s, &mut map);
                s.push(',');
            }
            s.push(')');
        }
    }
    s.push_str(":-");
    for l in &rule.body {
        lit(l, &mut s, &mut map);
        s.push(';');
    }
    // type annotations participate in matching, so they are part of the
    // rule's identity (sorted: HashMap order is not canonical)
    let types: BTreeMap<&String, String> = rule
        .types
        .iter()
        .map(|(v, ty)| (v, format!("{ty:?}")))
        .collect();
    for (v, ty) in types {
        let next = map.len();
        let id = *map.entry(v.clone()).or_insert(next);
        let _ = write!(s, "|v{id}:{ty}");
    }
    s
}

/// Optimize a COL program; see the module docs for the rewrite list and
/// the preservation argument. Pass the EDB when available.
pub fn optimize_col(prog: &ColProgram, db: Option<&Database>) -> ColProgram {
    let analysis = analyze_col(prog, db);
    let defined = analysis.defined.clone();
    let mut depth_cache = BTreeMap::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut rules: Vec<ColRule> = Vec::new();
    for (i, rule) in prog.rules.iter().enumerate() {
        let moded = well_moded(&rule.body);
        if moded && analysis.rule_hi.get(i).copied().flatten() == Some(0) {
            continue;
        }
        let mut rule = rule.clone();
        if moded {
            rule.body.retain(|lit| match lit {
                ColLiteral::Pred {
                    name,
                    positive: false,
                    ..
                } => analysis.info(name).and_then(|s| s.card.hi) != Some(0),
                _ => true,
            });
            rule.body = reorder(rule.body, &analysis, db, &defined, &mut depth_cache);
        }
        if seen.insert(canonical(&rule)) {
            rules.push(rule);
        }
    }
    ColProgram { rules }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_object::{atom, Instance};

    fn v(name: &str) -> ColTerm {
        ColTerm::var(name)
    }

    #[test]
    fn dead_rule_and_duplicate_are_removed() {
        let tc = |a: &str, b: &str, c: &str| {
            ColRule::pred(
                "T",
                vec![v(a), v(c)],
                vec![
                    ColLiteral::pred("R", vec![v(a), v(b)]),
                    ColLiteral::pred("T", vec![v(b), v(c)]),
                ],
            )
        };
        let base = ColRule::pred(
            "T",
            vec![v("x"), v("y")],
            vec![ColLiteral::pred("R", vec![v("x"), v("y")])],
        );
        let dead = ColRule::pred(
            "D",
            vec![v("x")],
            vec![ColLiteral::pred("Missing", vec![v("x")])],
        );
        let prog = ColProgram {
            rules: vec![base, tc("x", "y", "z"), dead, tc("a", "b", "c")],
        };
        let mut db = Database::empty();
        db.set(
            "R",
            Instance::from_rows((0u64..4).map(|i| [atom(i), atom(i + 1)])),
        );
        let opt = optimize_col(&prog, Some(&db));
        assert_eq!(opt.rules.len(), 2);
    }

    #[test]
    fn member_on_unbound_set_var_stays_after_its_binder() {
        // S(s), x ∈ s — the membership needs s; any reorder must keep
        // the generator of s first.
        let rule = ColRule::pred(
            "E",
            vec![v("x")],
            vec![
                ColLiteral::pred("S", vec![v("s")]),
                ColLiteral::member(v("x"), v("s")),
            ],
        );
        let prog = ColProgram { rules: vec![rule] };
        let opt = optimize_col(&prog, None);
        assert!(matches!(&opt.rules[0].body[0], ColLiteral::Pred { .. }));
        assert!(matches!(&opt.rules[0].body[1], ColLiteral::Member { .. }));
    }

    #[test]
    fn ill_moded_body_is_left_untouched() {
        // x ∈ s with s never bound: the engine raises NonGround, so the
        // rule must survive byte-for-byte even though Missing is empty.
        let rule = ColRule::pred(
            "E",
            vec![v("x")],
            vec![
                ColLiteral::member(v("x"), v("s")),
                ColLiteral::pred("Missing", vec![v("x"), v("s")]),
            ],
        );
        let prog = ColProgram {
            rules: vec![rule.clone()],
        };
        let opt = optimize_col(&prog, Some(&Database::empty()));
        assert_eq!(opt.rules, vec![rule]);
    }

    #[test]
    fn equality_assignment_counts_as_generator() {
        // y ≈ x placed only after x is bound; filters and assignments
        // must not precede their inputs.
        let rule = ColRule::pred(
            "A",
            vec![v("y")],
            vec![
                ColLiteral::eq(v("y"), v("x")),
                ColLiteral::pred("R", vec![v("x")]),
            ],
        );
        // Original order errors (y ≈ x with both unbound): ill-moded, so
        // the body must stay as written.
        let prog = ColProgram {
            rules: vec![rule.clone()],
        };
        let opt = optimize_col(&prog, None);
        assert_eq!(opt.rules, vec![rule]);
    }

    #[test]
    fn ground_negation_on_empty_pred_is_dropped() {
        let rule = ColRule::pred(
            "A",
            vec![v("x")],
            vec![
                ColLiteral::pred("R", vec![v("x")]),
                ColLiteral::not_pred("Missing", vec![v("x")]),
            ],
        );
        let prog = ColProgram { rules: vec![rule] };
        let mut db = Database::empty();
        db.set("R", Instance::from_values([atom(1u64)]));
        let opt = optimize_col(&prog, Some(&db));
        assert_eq!(opt.rules[0].body.len(), 1);
    }
}
