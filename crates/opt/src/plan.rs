//! Maintenance planning: which incremental algorithm fits each stratum.
//!
//! The maintenance engine (`uset-ivm`) keeps a materialized DATALOG¬
//! fixpoint in sync with EDB deltas. Two classical algorithms divide the
//! work, and the split is a *static* property of the program's dependency
//! graph — exactly the kind of proof this crate's analysis layer exists
//! to land before evaluation starts:
//!
//! * **Counting** (nonrecursive strata): when a predicate never depends
//!   on itself, every derivation of one of its facts consumes only facts
//!   from strictly lower strata, so an exact support count per fact is
//!   finite and cheap to maintain — retraction is a decrement, and a fact
//!   dies exactly when its count reaches zero. Counting is unsound for
//!   recursive predicates, whose counts can be infinite (a cycle derives
//!   its members from each other).
//! * **Delete-and-rederive** (DRed, recursive strata): over-delete
//!   everything the retracted facts could have supported, then rederive
//!   what still has an independent proof, then apply insertions. Sound
//!   for recursion at the price of touching the over-deletion set twice.
//!
//! [`maintenance_plan`] condenses the IDB dependency graph into strongly
//! connected components, orders them topologically (the same order a
//! stratified evaluation settles them in), and tags each with the
//! cheapest sound algorithm. Programs with no stratification at all
//! (negation through recursion) get a [`MaintPlan::Recompute`] verdict so
//! the session falls back to from-scratch evaluation instead of running
//! an unsound maintenance pass.

use std::collections::{BTreeMap, BTreeSet};
use uset_deductive::DatalogProgram;

/// The maintenance algorithm chosen for one stratum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StratumPlan {
    /// Exact per-fact support counts; retraction decrements. Sound only
    /// for non-recursive strata.
    Counting,
    /// Delete-and-rederive. Sound for recursive strata.
    DRed,
}

/// One maintenance stratum: a strongly connected component of the IDB
/// dependency graph, the rules that define it, and the algorithm that
/// maintains it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaintStratum {
    /// The IDB predicates of this component.
    pub preds: BTreeSet<String>,
    /// Indices (into the program's rule list) of the rules whose head is
    /// in this component.
    pub rules: Vec<usize>,
    /// The chosen algorithm.
    pub plan: StratumPlan,
}

/// The static maintenance plan for a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaintPlan {
    /// Incremental maintenance is sound: strata in dependency order
    /// (every stratum's lower dependencies precede it).
    Incremental(Vec<MaintStratum>),
    /// Incremental maintenance is not supported for this program; the
    /// string says why. The session recomputes from scratch instead.
    Recompute(String),
}

impl MaintPlan {
    /// The strata, when the plan is incremental.
    pub fn strata(&self) -> Option<&[MaintStratum]> {
        match self {
            MaintPlan::Incremental(s) => Some(s),
            MaintPlan::Recompute(_) => None,
        }
    }
}

/// Compute the maintenance plan: SCC-condense the IDB dependency graph,
/// order components topologically, and pick counting for non-recursive
/// components and DRed for recursive ones. Unstratifiable programs (the
/// ones [`DatalogProgram::stratify`] rejects) report
/// [`MaintPlan::Recompute`] — under stratified semantics they have no
/// meaning to maintain, and under inflationary semantics the fixpoint is
/// not change-monotone, so the caller falls back either way.
pub fn maintenance_plan(prog: &DatalogProgram) -> MaintPlan {
    if let Err(e) = prog.stratify() {
        return MaintPlan::Recompute(format!("not stratifiable: {e}"));
    }
    let idb = prog.idb_predicates();
    // dependency edges head → body-pred, restricted to IDB predicates
    // (EDB dependencies never create recursion and are handled as the
    // delta source, not as graph nodes)
    let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for p in &idb {
        succ.entry(p).or_default();
    }
    for rule in &prog.rules {
        for lit in &rule.body {
            if idb.contains(&lit.atom.pred) {
                succ.entry(&rule.head.pred)
                    .or_default()
                    .insert(&lit.atom.pred);
            }
        }
    }
    let components = tarjan(&succ);
    let mut strata = Vec::with_capacity(components.len());
    for comp in components {
        let preds: BTreeSet<String> = comp.iter().map(|p| (*p).to_owned()).collect();
        let rules: Vec<usize> = prog
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| preds.contains(&r.head.pred))
            .map(|(i, _)| i)
            .collect();
        // recursive iff some defining rule consumes a predicate of the
        // same component (covers singleton self-loops and larger cycles)
        let recursive = rules.iter().any(|&i| {
            prog.rules[i]
                .body
                .iter()
                .any(|lit| preds.contains(&lit.atom.pred))
        });
        strata.push(MaintStratum {
            preds,
            rules,
            plan: if recursive {
                StratumPlan::DRed
            } else {
                StratumPlan::Counting
            },
        });
    }
    MaintPlan::Incremental(strata)
}

/// Tarjan's SCC algorithm over the `head → body` graph. With edges
/// pointing at dependencies, components are emitted dependencies-first —
/// exactly the order maintenance must settle strata in. Node iteration
/// is over a `BTreeMap`, so the emission order is deterministic.
fn tarjan<'a>(succ: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<Vec<&'a str>> {
    struct State<'a> {
        index: BTreeMap<&'a str, usize>,
        lowlink: BTreeMap<&'a str, usize>,
        on_stack: BTreeSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        out: Vec<Vec<&'a str>>,
    }
    fn visit<'a>(v: &'a str, succ: &BTreeMap<&'a str, BTreeSet<&'a str>>, st: &mut State<'a>) {
        st.index.insert(v, st.next);
        st.lowlink.insert(v, st.next);
        st.next += 1;
        st.stack.push(v);
        st.on_stack.insert(v);
        if let Some(ws) = succ.get(v) {
            for &w in ws {
                if !st.index.contains_key(w) {
                    visit(w, succ, st);
                    let wl = st.lowlink[w];
                    let vl = st.lowlink.get_mut(v).unwrap();
                    *vl = (*vl).min(wl);
                } else if st.on_stack.contains(w) {
                    let wi = st.index[w];
                    let vl = st.lowlink.get_mut(v).unwrap();
                    *vl = (*vl).min(wi);
                }
            }
        }
        if st.lowlink[v] == st.index[v] {
            let mut comp = Vec::new();
            while let Some(w) = st.stack.pop() {
                st.on_stack.remove(w);
                comp.push(w);
                if w == v {
                    break;
                }
            }
            st.out.push(comp);
        }
    }
    let mut st = State {
        index: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for &v in succ.keys() {
        if !st.index.contains_key(v) {
            visit(v, succ, &mut st);
        }
    }
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_deductive::{DlAtom, DlRule, DlTerm};

    fn v(name: &str) -> DlTerm {
        DlTerm::var(name)
    }

    fn tc() -> DatalogProgram {
        DatalogProgram::new(vec![
            DlRule::new(
                DlAtom::new("T", vec![v("x"), v("y")]),
                vec![(true, DlAtom::new("E", vec![v("x"), v("y")]))],
            ),
            DlRule::new(
                DlAtom::new("T", vec![v("x"), v("z")]),
                vec![
                    (true, DlAtom::new("E", vec![v("x"), v("y")])),
                    (true, DlAtom::new("T", vec![v("y"), v("z")])),
                ],
            ),
        ])
    }

    #[test]
    fn transitive_closure_is_one_dred_stratum() {
        let plan = maintenance_plan(&tc());
        let strata = plan.strata().expect("stratifiable");
        assert_eq!(strata.len(), 1);
        assert_eq!(strata[0].plan, StratumPlan::DRed);
        assert_eq!(strata[0].rules, vec![0, 1]);
        assert!(strata[0].preds.contains("T"));
    }

    #[test]
    fn nonrecursive_join_gets_counting() {
        // J(x,z) ← A(x,y), B(y,z): no IDB in any body
        let prog = DatalogProgram::new(vec![DlRule::new(
            DlAtom::new("J", vec![v("x"), v("z")]),
            vec![
                (true, DlAtom::new("A", vec![v("x"), v("y")])),
                (true, DlAtom::new("B", vec![v("y"), v("z")])),
            ],
        )]);
        let plan = maintenance_plan(&prog);
        let strata = plan.strata().unwrap();
        assert_eq!(strata.len(), 1);
        assert_eq!(strata[0].plan, StratumPlan::Counting);
    }

    #[test]
    fn strata_come_out_in_dependency_order() {
        // T recursive over E; Top(x) ← T(x,y), ¬Bad(x); Bad nonrecursive.
        let mut rules = tc().rules.clone();
        rules.push(DlRule::new(
            DlAtom::new("Bad", vec![v("x")]),
            vec![(true, DlAtom::new("Block", vec![v("x")]))],
        ));
        rules.push(DlRule::new(
            DlAtom::new("Top", vec![v("x")]),
            vec![
                (true, DlAtom::new("T", vec![v("x"), v("y")])),
                (false, DlAtom::new("Bad", vec![v("x")])),
            ],
        ));
        let prog = DatalogProgram::new(rules);
        let plan = maintenance_plan(&prog);
        let strata = plan.strata().unwrap();
        assert_eq!(strata.len(), 3);
        let pos = |p: &str| {
            strata
                .iter()
                .position(|s| s.preds.contains(p))
                .unwrap_or_else(|| panic!("{p} missing"))
        };
        assert!(pos("T") < pos("Top"), "dependencies settle first");
        assert!(pos("Bad") < pos("Top"));
        assert_eq!(strata[pos("T")].plan, StratumPlan::DRed);
        assert_eq!(strata[pos("Bad")].plan, StratumPlan::Counting);
        assert_eq!(strata[pos("Top")].plan, StratumPlan::Counting);
    }

    #[test]
    fn mutual_recursion_is_one_dred_component() {
        // P ← Q, Q ← P: a 2-cycle must come out as one DRed component
        let prog = DatalogProgram::new(vec![
            DlRule::new(
                DlAtom::new("P", vec![v("x")]),
                vec![(true, DlAtom::new("Q", vec![v("x")]))],
            ),
            DlRule::new(
                DlAtom::new("Q", vec![v("x")]),
                vec![(true, DlAtom::new("R", vec![v("x")]))],
            ),
            DlRule::new(
                DlAtom::new("Q", vec![v("x")]),
                vec![(true, DlAtom::new("P", vec![v("x")]))],
            ),
        ]);
        let plan = maintenance_plan(&prog);
        let strata = plan.strata().unwrap();
        assert_eq!(strata.len(), 1);
        assert_eq!(strata[0].plan, StratumPlan::DRed);
        assert_eq!(strata[0].preds.len(), 2);
        assert_eq!(strata[0].rules, vec![0, 1, 2]);
    }

    #[test]
    fn unstratifiable_routes_to_recompute() {
        // P(x) ← E(x), ¬P(x): negation through recursion
        let prog = DatalogProgram::new(vec![DlRule::new(
            DlAtom::new("P", vec![v("x")]),
            vec![
                (true, DlAtom::new("E", vec![v("x")])),
                (false, DlAtom::new("P", vec![v("x")])),
            ],
        )]);
        assert!(matches!(maintenance_plan(&prog), MaintPlan::Recompute(_)));
    }
}
