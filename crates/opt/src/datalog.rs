//! State-preserving DATALOG¬ optimization.
//!
//! [`optimize_datalog`] applies four rewrites, each justified by a fact
//! the abstract interpreter ([`uset_analysis::absint`]) proved:
//!
//! 1. **Dead-rule elimination** — a rule whose body cardinality product
//!    is provably 0 ([`Analysis::rule_hi`]) admits no bindings at any
//!    round, so it never fires and never derives a tuple. Removing it
//!    leaves the final state bit-identical (engines start from a clone
//!    of the EDB and only ever *add* derived facts).
//! 2. **Always-true negation removal** — a negated literal over a
//!    relation with cardinality upper bound 0 filters nothing.
//! 3. **Duplicate-rule removal** — α-equivalent rules rederive the same
//!    bindings every round; keeping one copy strictly reduces
//!    `tuples_derived` without changing the fixpoint.
//! 4. **Body reordering** — greedy boundness-then-selectivity ordering:
//!    ready filters (negated literals with all variables bound) run as
//!    early as possible, and among generators the one with an available
//!    index probe and the smallest cardinality estimate goes first. The
//!    final binding set of a body is order-independent, so the state and
//!    per-rule `tuples_derived` are unchanged; only probe/scan counters
//!    may shift.
//!
//! Rewrites 1–2 and 4 are gated on the rule being *well-moded* in its
//! original order (every negated literal's variables bound by earlier
//! positive literals). An ill-moded rule raises `UnboundAtFiring` when
//! reached; we leave such rules byte-for-byte intact so the optimized
//! program fails in exactly the same way.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use uset_analysis::absint::{analyze_datalog, Analysis};
use uset_deductive::{DatalogProgram, DlAtom, DlLiteral, DlRule, DlTerm};
use uset_object::{ColumnIndex, Database};

/// Variables of an atom, in argument order (duplicates kept).
fn atom_vars(atom: &DlAtom) -> impl Iterator<Item = &str> {
    atom.args.iter().filter_map(|t| match t {
        DlTerm::Var(v) => Some(v.as_str()),
        DlTerm::Const(_) => None,
    })
}

/// True if every negated literal's variables are bound by positive
/// literals to its left — the condition under which the engine never
/// raises `UnboundAtFiring` for this body.
fn well_moded(body: &[DlLiteral]) -> bool {
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    for lit in body {
        if lit.positive {
            bound.extend(atom_vars(&lit.atom));
        } else if !atom_vars(&lit.atom).all(|v| bound.contains(v)) {
            return false;
        }
    }
    true
}

/// Cardinality oracle shared across rules: EDB relations are measured
/// directly (per-probe-column bucket depths are cached), IDB relations
/// fall back to the abstract interpreter's interval upper bound.
struct Estimator<'a> {
    db: Option<&'a Database>,
    analysis: &'a Analysis,
    idb: BTreeSet<String>,
    depth_cache: BTreeMap<(String, usize), u64>,
}

impl Estimator<'_> {
    /// First argument position that is a constant or an already-bound
    /// variable — the column the engine would probe.
    fn probe_col(atom: &DlAtom, bound: &BTreeSet<String>) -> Option<usize> {
        atom.args.iter().position(|t| match t {
            DlTerm::Const(_) => true,
            DlTerm::Var(v) => bound.contains(v),
        })
    }

    /// Estimated bindings produced by scanning/probing this atom.
    fn cardinality(&mut self, atom: &DlAtom, bound: &BTreeSet<String>) -> u64 {
        if let Some(db) = self.db {
            if !self.idb.contains(&atom.pred) {
                let inst = db.get(&atom.pred);
                if let Some(col) = Self::probe_col(atom, bound) {
                    return *self
                        .depth_cache
                        .entry((atom.pred.clone(), col))
                        .or_insert_with(|| {
                            ColumnIndex::build_on(&inst, col).avg_bucket_depth() as u64
                        });
                }
                return inst.len() as u64;
            }
        }
        self.analysis
            .info(&atom.pred)
            .and_then(|i| i.card.hi)
            .unwrap_or(u64::MAX)
    }
}

/// Greedy boundness-then-selectivity reorder. Assumes `body` is
/// well-moded; returns the original order untouched if the greedy pass
/// ever stalls (cannot happen for well-moded bodies, kept as a
/// belt-and-braces fallback).
fn reorder(body: Vec<DlLiteral>, est: &mut Estimator<'_>) -> Vec<DlLiteral> {
    let mut bound: BTreeSet<String> = BTreeSet::new();
    let mut remaining: Vec<Option<DlLiteral>> = body.iter().cloned().map(Some).collect();
    let mut out: Vec<DlLiteral> = Vec::with_capacity(body.len());
    loop {
        let mut placed = false;
        // All ready filters first, in original order: they shrink the
        // binding set for free before any generator multiplies it.
        for slot in remaining.iter_mut() {
            if let Some(lit) = slot {
                if !lit.positive && atom_vars(&lit.atom).all(|v| bound.contains(v)) {
                    out.push(slot.take().unwrap_or_else(|| unreachable!()));
                    placed = true;
                }
            }
        }
        // Cheapest ready generator next: probe-able beats scan, then
        // smaller estimated cardinality, then original position.
        let mut best: Option<(u8, u64, usize)> = None;
        for (j, slot) in remaining.iter().enumerate() {
            if let Some(lit) = slot {
                if lit.positive {
                    let scan = u8::from(Estimator::probe_col(&lit.atom, &bound).is_none());
                    let card = est.cardinality(&lit.atom, &bound);
                    let key = (scan, card, j);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
        }
        if let Some((_, _, j)) = best {
            if let Some(lit) = remaining[j].take() {
                bound.extend(atom_vars(&lit.atom).map(str::to_owned));
                out.push(lit);
                placed = true;
            }
        }
        if !placed {
            break;
        }
    }
    if remaining.iter().any(Option::is_some) {
        return body;
    }
    out
}

/// Canonical α-renamed rendering of a rule: variables become `v0, v1, …`
/// in first-occurrence order (head first, then body left to right), so
/// two rules get the same key iff they are identical up to variable
/// names.
fn canonical(rule: &DlRule) -> String {
    fn atom(a: &DlAtom, s: &mut String, map: &mut BTreeMap<String, usize>) {
        s.push_str(&a.pred);
        s.push('(');
        for t in &a.args {
            match t {
                DlTerm::Var(v) => {
                    let next = map.len();
                    let id = *map.entry(v.clone()).or_insert(next);
                    let _ = write!(s, "v{id},");
                }
                DlTerm::Const(c) => {
                    let _ = write!(s, "{c:?},");
                }
            }
        }
        s.push(')');
    }
    let mut s = String::new();
    let mut map = BTreeMap::new();
    atom(&rule.head, &mut s, &mut map);
    s.push_str(":-");
    for lit in &rule.body {
        if !lit.positive {
            s.push('!');
        }
        atom(&lit.atom, &mut s, &mut map);
        s.push(',');
    }
    s
}

/// Optimize a DATALOG¬ program. Pass the EDB when available — it seeds
/// the cardinality analysis (empty/absent relations become proofs) and
/// the selectivity estimates. Evaluating the result produces the same
/// final database as the input and derives no more tuples; see the
/// module docs for the argument.
pub fn optimize_datalog(prog: &DatalogProgram, db: Option<&Database>) -> DatalogProgram {
    let analysis = analyze_datalog(prog, db);
    let mut est = Estimator {
        db,
        analysis: &analysis,
        idb: prog.idb_predicates(),
        depth_cache: BTreeMap::new(),
    };
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut rules: Vec<DlRule> = Vec::new();
    for (i, rule) in prog.rules.iter().enumerate() {
        let moded = well_moded(&rule.body);
        if moded && analysis.rule_hi.get(i).copied().flatten() == Some(0) {
            continue; // provably zero bindings: the rule never fires
        }
        let mut rule = rule.clone();
        if moded {
            rule.body.retain(|lit| {
                lit.positive || analysis.info(&lit.atom.pred).and_then(|s| s.card.hi) != Some(0)
            });
            rule.body = reorder(rule.body, &mut est);
        }
        if seen.insert(canonical(&rule)) {
            rules.push(rule);
        }
    }
    DatalogProgram::new(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_object::{atom, Instance};

    fn v(name: &str) -> DlTerm {
        DlTerm::var(name)
    }

    fn db_with(rels: &[(&str, usize)]) -> Database {
        let mut db = Database::empty();
        for (name, n) in rels {
            db.set(
                *name,
                Instance::from_rows((0..*n as u64).map(|i| [atom(i), atom(i + 1)])),
            );
        }
        db
    }

    #[test]
    fn dead_rule_over_empty_relation_is_removed() {
        let prog = DatalogProgram::new(vec![
            DlRule::new(
                DlAtom::new("A", vec![v("x")]),
                vec![(true, DlAtom::new("Missing", vec![v("x")]))],
            ),
            DlRule::new(
                DlAtom::new("B", vec![v("x"), v("y")]),
                vec![(true, DlAtom::new("R", vec![v("x"), v("y")]))],
            ),
        ]);
        let db = db_with(&[("R", 3)]);
        let opt = optimize_datalog(&prog, Some(&db));
        assert_eq!(opt.rules.len(), 1);
        assert_eq!(opt.rules[0].head.pred, "B");
    }

    #[test]
    fn always_true_negation_is_dropped() {
        let prog = DatalogProgram::new(vec![DlRule::new(
            DlAtom::new("A", vec![v("x")]),
            vec![
                (true, DlAtom::new("R", vec![v("x"), v("y")])),
                (false, DlAtom::new("Missing", vec![v("x")])),
            ],
        )]);
        let db = db_with(&[("R", 3)]);
        let opt = optimize_datalog(&prog, Some(&db));
        assert_eq!(opt.rules.len(), 1);
        assert_eq!(opt.rules[0].body.len(), 1);
        assert!(opt.rules[0].body[0].positive);
    }

    #[test]
    fn ill_moded_rule_is_left_byte_for_byte_intact() {
        // The negated literal precedes its binder: the engine errors at
        // firing time, so no rewrite (not even the dead-rule removal its
        // empty body product would license) may touch this rule.
        let rule = DlRule::new(
            DlAtom::new("A", vec![v("x")]),
            vec![
                (false, DlAtom::new("N", vec![v("x")])),
                (true, DlAtom::new("Missing", vec![v("x")])),
            ],
        );
        let prog = DatalogProgram::new(vec![rule.clone()]);
        let db = db_with(&[("N", 2)]);
        let opt = optimize_datalog(&prog, Some(&db));
        assert_eq!(opt.rules, vec![rule]);
    }

    #[test]
    fn duplicate_rules_dedup_up_to_variable_renaming() {
        let mk = |a: &str, b: &str, c: &str| {
            DlRule::new(
                DlAtom::new("T", vec![v(a), v(c)]),
                vec![
                    (true, DlAtom::new("R", vec![v(a), v(b)])),
                    (true, DlAtom::new("T", vec![v(b), v(c)])),
                ],
            )
        };
        let base = DlRule::new(
            DlAtom::new("T", vec![v("x"), v("y")]),
            vec![(true, DlAtom::new("R", vec![v("x"), v("y")]))],
        );
        let prog = DatalogProgram::new(vec![base, mk("x", "y", "z"), mk("u", "w", "q")]);
        let db = db_with(&[("R", 3)]);
        let opt = optimize_datalog(&prog, Some(&db));
        assert_eq!(opt.rules.len(), 2);
    }

    #[test]
    fn body_reorders_small_relation_first_then_probes() {
        let mut db = Database::empty();
        db.set(
            "Big",
            Instance::from_rows((0u64..100).map(|i| [atom(i), atom(i + 1)])),
        );
        db.set("Small", Instance::from_rows([[atom(0u64), atom(1u64)]]));
        let prog = DatalogProgram::new(vec![DlRule::new(
            DlAtom::new("A", vec![v("x"), v("z")]),
            vec![
                (true, DlAtom::new("Big", vec![v("x"), v("y")])),
                (true, DlAtom::new("Small", vec![v("y"), v("z")])),
            ],
        )]);
        let opt = optimize_datalog(&prog, Some(&db));
        let order: Vec<&str> = opt.rules[0]
            .body
            .iter()
            .map(|l| l.atom.pred.as_str())
            .collect();
        assert_eq!(order, ["Small", "Big"]);
    }

    #[test]
    fn ready_filter_moves_before_later_generators() {
        let prog = DatalogProgram::new(vec![DlRule::new(
            DlAtom::new("A", vec![v("x"), v("z")]),
            vec![
                (true, DlAtom::new("R", vec![v("x"), v("y")])),
                (true, DlAtom::new("R", vec![v("y"), v("z")])),
                (false, DlAtom::new("Bad", vec![v("x")])),
            ],
        )]);
        let db = db_with(&[("R", 5), ("Bad", 5)]);
        let opt = optimize_datalog(&prog, Some(&db));
        let body = &opt.rules[0].body;
        // The negation only needs x, so it must run right after the
        // first R literal, ahead of the second generator.
        assert_eq!(body.len(), 3);
        assert!(body[0].positive);
        assert!(!body[1].positive, "filter should precede second join");
        assert_eq!(body[1].atom.pred, "Bad");
    }

    #[test]
    fn constant_argument_counts_as_a_probe_column() {
        let mut db = Database::empty();
        db.set(
            "R",
            Instance::from_rows((0u64..10).map(|i| [atom(i % 2), atom(i)])),
        );
        let prog = DatalogProgram::new(vec![DlRule::new(
            DlAtom::new("A", vec![v("y")]),
            vec![(
                true,
                DlAtom::new("R", vec![DlTerm::Const(atom(0u64)), v("y")]),
            )],
        )]);
        // Smoke: estimator path with a Const probe must not panic and the
        // rule must survive untouched (single literal, nothing to move).
        let opt = optimize_datalog(&prog, Some(&db));
        assert_eq!(opt.rules.len(), 1);
        assert_eq!(opt.rules[0].body.len(), 1);
    }

    #[test]
    fn without_database_edb_relations_are_not_assumed_empty() {
        let prog = DatalogProgram::new(vec![DlRule::new(
            DlAtom::new("A", vec![v("x")]),
            vec![(true, DlAtom::new("R", vec![v("x"), v("y")]))],
        )]);
        let opt = optimize_datalog(&prog, None);
        assert_eq!(opt.rules.len(), 1);
    }

    #[test]
    fn value_debug_keys_distinguish_constants() {
        let r1 = DlRule::new(
            DlAtom::new("A", vec![DlTerm::Const(atom(1u64))]),
            vec![(true, DlAtom::new("R", vec![DlTerm::Const(atom(1u64))]))],
        );
        let r2 = DlRule::new(
            DlAtom::new("A", vec![DlTerm::Const(atom(2u64))]),
            vec![(true, DlAtom::new("R", vec![DlTerm::Const(atom(2u64))]))],
        );
        assert_ne!(canonical(&r1), canonical(&r2));
    }
}
