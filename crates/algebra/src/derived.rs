//! Derived operators and canonical programs.
//!
//! The equivalences the paper leans on (join from product+select+project,
//! transitive closure from `while`, transitive closure from `powerset` in
//! the style of Gyssens–van Gucht) are packaged here as reusable program
//! builders. They double as the workloads of the benchmark harness: the
//! while-TC vs powerset-TC pair regenerates the "balance between powerset
//! and iteration" that Theorem 4.1(b) shows untyped sets break.

use crate::expr::{Expr, Operand, Pred};
use crate::program::{Program, Stmt, ANS};

/// Composition of two binary relations held in expressions:
/// `{(x,z) | (x,y) ∈ l, (y,z) ∈ r}`.
pub fn compose_expr(l: Expr, r: Expr) -> Expr {
    l.product(r).select(Pred::eq_cols(1, 2)).project([0, 3])
}

/// The node set of a binary relation: `π₀(R) ∪ π₁(R)`.
pub fn nodes_expr(rel: Expr) -> Expr {
    rel.clone().project([0]).union(rel.project([1]))
}

/// An expression that is always the empty instance (given any variable).
pub fn empty_expr(some_var: &str) -> Expr {
    Expr::var(some_var).diff(Expr::var(some_var))
}

/// Transitive closure of binary relation `rel` via the `while` construct —
/// semi-naive iteration: the loop condition is the delta.
///
/// The produced program is while-powered but powerset-free, one half of the
/// Theorem 4.1(b) story.
pub fn tc_while_program(rel: &str) -> Program {
    let new_pairs = compose_expr(Expr::var("tc_delta"), Expr::var(rel)).diff(Expr::var("tc_acc"));
    Program::new(vec![
        Stmt::assign("tc_acc", Expr::var(rel)),
        Stmt::assign("tc_delta", Expr::var(rel)),
        Stmt::while_loop(
            "tc_out",
            "tc_acc",
            "tc_delta",
            vec![
                Stmt::assign("tc_new", new_pairs),
                Stmt::assign("tc_acc", Expr::var("tc_acc").union(Expr::var("tc_new"))),
                Stmt::assign("tc_delta", Expr::var("tc_new")),
            ],
        ),
        Stmt::assign(ANS, Expr::var("tc_out")),
    ])
}

/// Transitive closure of binary relation `rel` via `powerset`, without any
/// `while` — the Gyssens–van Gucht direction: TC is the intersection of all
/// transitive binary relations over the active domain that contain `rel`.
///
/// Cost is `2^(n²)` candidate relations for `n` nodes: the hyper-exponential
/// price of powerset that Theorem 2.2 quantifies. Use only on tiny graphs.
pub fn tc_powerset_program(rel: &str) -> Program {
    // D := nodes; Pairs := D × D; Rels := powerset(Pairs)
    let mut stmts = vec![
        Stmt::assign("pw_nodes", nodes_expr(Expr::var(rel))),
        Stmt::assign(
            "pw_pairs",
            Expr::var("pw_nodes").product(Expr::var("pw_nodes")),
        ),
        Stmt::assign("pw_rels", Expr::var("pw_pairs").powerset()),
    ];
    // Find non-transitive candidates: unnest two pairs out of each S and
    // look for (a,b),(b,c) ∈ S with [a,c] ∉ S.
    stmts.extend([
        // [S]
        Stmt::assign("pw_w", Expr::var("pw_rels").wrap()),
        // [S, S]
        Stmt::assign("pw_ss", Expr::var("pw_w").project([0, 0])),
        // [a, b, S]
        Stmt::assign("pw_u1", Expr::var("pw_ss").unnest(0)),
        // [a, b, S, S]
        Stmt::assign("pw_u1d", Expr::var("pw_u1").project([0, 1, 2, 2])),
        // [a, b, c, d, S]
        Stmt::assign("pw_u2", Expr::var("pw_u1d").unnest(2)),
        // b = c  ∧  [a, d] ∉ S
        Stmt::assign(
            "pw_witness",
            Expr::var("pw_u2").select(
                Pred::eq_cols(1, 2).and(
                    Pred::Member(
                        Operand::Tup(vec![Operand::Col(0), Operand::Col(3)]),
                        Operand::Col(4),
                    )
                    .not(),
                ),
            ),
        ),
        Stmt::assign("pw_bad", Expr::var("pw_witness").project([4])),
        Stmt::assign("pw_trans", Expr::var("pw_rels").diff(Expr::var("pw_bad"))),
    ]);
    // Keep candidates S ⊇ rel: pair each S with the set-of-rel and test ⊆.
    stmts.extend([
        // members: [S, Rset]
        Stmt::assign(
            "pw_with_r",
            Expr::var("pw_trans")
                .wrap()
                .product(Expr::var(rel).singleton()),
        ),
        Stmt::assign(
            "pw_cand",
            Expr::var("pw_with_r")
                .select(Pred::Subset(Operand::Col(1), Operand::Col(0)))
                .project([0]),
        ),
    ]);
    // TC = ∩ candidates = union − {x | x ∉ some candidate}.
    stmts.extend([
        Stmt::assign("pw_union", Expr::var("pw_cand").set_collapse()),
        // [x, S] pairs
        Stmt::assign(
            "pw_xs",
            Expr::var("pw_union")
                .wrap()
                .product(Expr::var("pw_cand").wrap()),
        ),
        Stmt::assign(
            "pw_missing",
            Expr::var("pw_xs")
                .select(Pred::Member(Operand::Col(0), Operand::Col(1)).not())
                .project([0]),
        ),
        Stmt::assign(ANS, Expr::var("pw_union").diff(Expr::var("pw_missing"))),
    ]);
    Program::new(stmts)
}

/// One extension step of the paper's ordinal chain (§4, part (b) of the
/// proof of Theorem 4.1): given a unary variable holding the chain so far,
/// the next element is *the set of all previous elements* — i.e. exactly
/// `singleton(chain)`.
pub fn chain_extend_stmt(chain: &str) -> Stmt {
    Stmt::assign(chain, Expr::var(chain).union(Expr::var(chain).singleton()))
}

/// A full program building an ordinal chain of length `n` from the constant
/// seed in variable `seed` (a unary instance): a loop-free unrolling, pure
/// ALG — each step is one `∪ singleton`.
pub fn chain_program_unrolled(seed: &str, n: usize) -> Program {
    let mut stmts = vec![Stmt::assign("chain", Expr::var(seed))];
    for _ in 1..n {
        stmts.push(chain_extend_stmt("chain"));
    }
    stmts.push(Stmt::assign(ANS, Expr::var("chain")));
    Program::new(stmts)
}

/// A program building an ordinal chain whose length is the number of
/// members of the input relation `counter_rel` — a `while` loop that
/// removes one "permission token" per iteration cannot be written
/// generically (choosing which token to remove is non-generic), so instead
/// we grow the chain until its cardinality-as-subset-structure covers the
/// relation: here we simply run one extension per iteration and shrink a
/// copy of `counter_rel` *as a whole power* by pairing. For bench purposes
/// we expose the simpler calibrated variant: extend the chain `n` times
/// under a countdown held as nested sets.
pub fn chain_program_while(seed: &str, n: usize) -> Program {
    // countdown: a pre-built chain of length n used as fuel; each iteration
    // removes its maximum element (the member that is not a member of any
    // other member — expressible generically because the chain is ordered
    // by membership).
    let mut stmts = vec![Stmt::assign("fuel", Expr::var(seed))];
    for _ in 1..n {
        stmts.push(chain_extend_stmt("fuel"));
    }
    // max element of fuel = the x ∈ fuel such that x ∉ y for all y ∈ fuel:
    // pairs [x, y] with x ∈ y identify non-maximal x.
    let non_max = Expr::var("fuel")
        .wrap()
        .product(Expr::var("fuel").wrap())
        .select(Pred::Member(Operand::Col(0), Operand::Col(1)))
        .project([0]);
    stmts.push(Stmt::assign("chain", Expr::var(seed)));
    stmts.push(Stmt::while_loop(
        "chain_out",
        "chain",
        "fuel",
        vec![
            chain_extend_stmt("chain"),
            Stmt::assign("fuel_nonmax", non_max.clone()),
            Stmt::assign("fuel", Expr::var("fuel_nonmax")),
        ],
    ));
    stmts.push(Stmt::assign(ANS, Expr::var("chain_out")));
    Program::new(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_program, EvalConfig};
    use uset_object::{atom, Database, Instance, Value};

    fn path_graph(n: u64) -> Database {
        let mut db = Database::empty();
        db.set(
            "R",
            Instance::from_rows((0..n - 1).map(|i| [atom(i), atom(i + 1)])),
        );
        db
    }

    fn expected_tc(n: u64) -> Instance {
        let mut rows = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                rows.push([atom(i), atom(j)]);
            }
        }
        Instance::from_rows(rows)
    }

    fn run(prog: &Program, db: &Database) -> Instance {
        eval_program(prog, db, &EvalConfig::default()).unwrap()
    }

    #[test]
    fn while_tc_on_path() {
        let db = path_graph(6);
        assert_eq!(run(&tc_while_program("R"), &db), expected_tc(6));
    }

    #[test]
    fn while_tc_on_cycle() {
        let mut db = Database::empty();
        db.set(
            "R",
            Instance::from_rows([[atom(0), atom(1)], [atom(1), atom(2)], [atom(2), atom(0)]]),
        );
        let out = run(&tc_while_program("R"), &db);
        // complete relation on 3 nodes
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn while_tc_empty_graph() {
        let mut db = Database::empty();
        db.set("R", Instance::empty());
        assert_eq!(run(&tc_while_program("R"), &db), Instance::empty());
    }

    #[test]
    fn powerset_tc_matches_while_tc_small() {
        // 3 nodes → 2^9 = 512 candidate relations: feasible
        let db = path_graph(3);
        let via_while = run(&tc_while_program("R"), &db);
        let via_powerset = eval_program(
            &tc_powerset_program("R"),
            &db,
            &EvalConfig {
                fuel: 1_000_000,
                max_instance_len: 10_000_000,
            },
        )
        .unwrap();
        assert_eq!(via_while, via_powerset);
        assert_eq!(via_while, expected_tc(3));
    }

    #[test]
    fn powerset_tc_is_while_free_and_while_tc_powerset_free() {
        let p1 = tc_powerset_program("R");
        assert!(p1.is_while_free());
        assert!(!p1.is_powerset_free());
        let p2 = tc_while_program("R");
        assert!(!p2.is_while_free());
        assert!(p2.is_powerset_free());
        assert!(p2.is_unnested_while());
    }

    #[test]
    fn chain_unrolled_builds_ordinal_chain() {
        let mut db = Database::empty();
        db.set("seed", Instance::from_values([atom(0)]));
        let out = run(&chain_program_unrolled("seed", 4), &db);
        let expected: Instance = uset_object::cons::ordinal_chain(uset_object::Atom::new(0), 4)
            .into_iter()
            .collect();
        assert_eq!(out, expected);
        // adom never grows: no invention
        assert_eq!(out.adom().len(), 1);
    }

    #[test]
    fn chain_while_matches_unrolled() {
        let mut db = Database::empty();
        db.set("seed", Instance::from_values([atom(0)]));
        let a = run(&chain_program_while("seed", 5), &db);
        // the while variant grows the chain once per fuel element; fuel has
        // n elements so the chain ends with n extensions = length n+1
        let expected: Instance = uset_object::cons::ordinal_chain(uset_object::Atom::new(0), 6)
            .into_iter()
            .collect();
        assert_eq!(a, expected);
    }

    #[test]
    fn compose_is_relational_composition() {
        let mut db = Database::empty();
        db.set("L", Instance::from_rows([[atom(1), atom(2)]]));
        db.set(
            "S",
            Instance::from_rows([[atom(2), atom(3)], [atom(9), atom(9)]]),
        );
        let prog = Program::new(vec![Stmt::assign(
            ANS,
            compose_expr(Expr::var("L"), Expr::var("S")),
        )]);
        assert_eq!(
            run(&prog, &db),
            Instance::from_values([Value::Tuple(vec![atom(1), atom(3)])])
        );
    }
}
