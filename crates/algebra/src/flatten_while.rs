//! Theorem 4.1(b)(iii): nested `while` collapses to a single unnested
//! `while`.
//!
//! The paper proves `ALG+while−powerset ⊑ ALG+unnested-while−powerset` "by
//! repeatedly collapsing two consecutively nested while loops … using a
//! cross product of two condition variables". We implement the general
//! form of that idea: the whole program is compiled into **one** loop
//! driven by a program counter `PC` holding a single marker constant, and
//! every original statement becomes a *gated* assignment that takes effect
//! only when its label is active. Gating is the cross-product trick:
//!
//! ```text
//! gate(x, flag) = π₀(wrap(x) × flag)     -- x if flag ≠ ∅, else ∅
//! v := gate(e, PC ∩ {mℓ}) ∪ gate(v, PC − {mℓ})
//! ```
//!
//! A `while ⟨x; y⟩` statement becomes a test label that branches `PC` on
//! the emptiness of `y` (computed with the same product trick), body
//! labels that jump back to the test, and an exit label performing the
//! `out := result` copy. Exactly one marker is in `PC` at any time, and
//! when the original program ends the next-`PC` is empty, so the single
//! loop terminates.
//!
//! Because gated expressions are *evaluated* (to empty effect) even when
//! inactive, programs using `undefine` inside a loop body cannot be
//! flattened by this scheme (the paper's construction shares the
//! restriction implicitly — `undefine` is a top-level output device);
//! [`flatten_to_single_while`] rejects them explicitly.

use crate::expr::Expr;
use crate::program::{Program, Stmt};
use uset_object::{Atom, Instance, Value};

/// Why a program could not be flattened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlattenError {
    /// `undefine` occurs inside a `while` body (would fire spuriously when
    /// evaluated in a gated-off iteration).
    UndefineInLoopBody,
}

impl std::fmt::Display for FlattenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlattenError::UndefineInLoopBody => {
                write!(f, "undefine inside a while body cannot be gated")
            }
        }
    }
}

impl std::error::Error for FlattenError {}

fn marker(i: usize) -> Value {
    Value::Atom(Atom::named(&format!("pc:{i}")))
}

fn marker_expr(i: usize) -> Expr {
    Expr::const_value(marker(i))
}

/// `x` if `flag` is non-empty, else `∅` — shape-agnostic gating.
fn gate(x: Expr, flag: Expr) -> Expr {
    x.wrap().product(flag).project([0])
}

/// A non-empty constant used to probe emptiness.
fn probe() -> Expr {
    Expr::const_value(Value::Atom(Atom::named("pc:probe")))
}

/// Non-empty iff `cond` is non-empty (normalized to the probe marker).
fn nonempty_flag(cond: Expr) -> Expr {
    probe().wrap().product(cond).project([0])
}

/// One compiled instruction.
enum Instr {
    /// `v := e` then fall through.
    Assign(String, Expr),
    /// Branch on the emptiness of `cond`: non-empty → `into_body`,
    /// empty → `to_exit`.
    Branch {
        cond: String,
        into_body: usize,
        to_exit: usize,
    },
    /// Unconditional jump (loop back-edge).
    Jump(usize),
}

struct Layout {
    instrs: Vec<(usize, Instr)>,
    next_label: usize,
    assigned: Vec<String>,
}

impl Layout {
    fn fresh(&mut self) -> usize {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    fn lay_out(&mut self, stmts: &[Stmt]) -> Result<(), FlattenError> {
        for s in stmts {
            match s {
                Stmt::Assign(v, e) => {
                    let l = self.fresh();
                    self.instrs.push((l, Instr::Assign(v.clone(), e.clone())));
                    self.assigned.push(v.clone());
                }
                Stmt::While {
                    out,
                    result,
                    cond,
                    body,
                } => {
                    if body_uses_undefine(body) {
                        return Err(FlattenError::UndefineInLoopBody);
                    }
                    let test = self.fresh();
                    // reserve the test slot; we patch targets after the body
                    let idx = self.instrs.len();
                    self.instrs.push((
                        test,
                        Instr::Branch {
                            cond: cond.clone(),
                            into_body: usize::MAX,
                            to_exit: usize::MAX,
                        },
                    ));
                    let body_start = self.next_label;
                    self.lay_out(body)?;
                    let back = self.fresh();
                    self.instrs.push((back, Instr::Jump(test)));
                    let exit = self.fresh();
                    self.instrs
                        .push((exit, Instr::Assign(out.clone(), Expr::var(result))));
                    self.assigned.push(out.clone());
                    if let Instr::Branch {
                        into_body, to_exit, ..
                    } = &mut self.instrs[idx].1
                    {
                        *into_body = body_start;
                        *to_exit = exit;
                    }
                }
            }
        }
        Ok(())
    }
}

fn body_uses_undefine(stmts: &[Stmt]) -> bool {
    fn expr_has_undefine(e: &Expr) -> bool {
        match e {
            Expr::Undefine(_) => true,
            Expr::Var(_) | Expr::Const(_) => false,
            Expr::Union(a, b) | Expr::Diff(a, b) | Expr::Intersect(a, b) | Expr::Product(a, b) => {
                expr_has_undefine(a) || expr_has_undefine(b)
            }
            Expr::Select(e, _)
            | Expr::Project(e, _)
            | Expr::Nest(e, _)
            | Expr::Unnest(e, _)
            | Expr::Powerset(e)
            | Expr::SetCollapse(e)
            | Expr::Singleton(e)
            | Expr::Wrap(e)
            | Expr::Unwrap(e) => expr_has_undefine(e),
        }
    }
    stmts.iter().any(|s| match s {
        Stmt::Assign(_, e) => expr_has_undefine(e),
        Stmt::While { body, .. } => body_uses_undefine(body),
    })
}

/// Compile a program (possibly with nested `while`s) into an equivalent
/// program containing exactly one, unnested `while`.
///
/// The inputs read by the program are unchanged; all variables assigned by
/// the original receive their original final values (they are
/// pre-initialized to `∅` so that gated copies are well-scoped).
pub fn flatten_to_single_while(prog: &Program) -> Result<Program, FlattenError> {
    let mut layout = Layout {
        instrs: Vec::new(),
        next_label: 0,
        assigned: Vec::new(),
    };
    layout.lay_out(&prog.stmts)?;

    let mut stmts: Vec<Stmt> = Vec::new();
    // pre-initialize every assigned variable to ∅ (gated not-branches read
    // them from iteration one)
    let empty = Expr::constant(Instance::empty());
    let mut seen = std::collections::BTreeSet::new();
    for v in &layout.assigned {
        if seen.insert(v.clone()) {
            stmts.push(Stmt::assign(v.clone(), empty.clone()));
        }
    }
    stmts.push(Stmt::assign("pc", marker_expr(0)));

    let mut body: Vec<Stmt> = vec![Stmt::assign("pc_next", empty.clone())];
    for (label, instr) in &layout.instrs {
        let active = Expr::var("pc").intersect(marker_expr(*label));
        let inactive = Expr::var("pc").diff(marker_expr(*label));
        match instr {
            Instr::Assign(v, e) => {
                body.push(Stmt::assign(
                    v.clone(),
                    gate(e.clone(), active.clone()).union(gate(Expr::var(v.clone()), inactive)),
                ));
                body.push(Stmt::assign(
                    "pc_next",
                    Expr::var("pc_next").union(gate(marker_expr(label + 1), active)),
                ));
            }
            Instr::Branch {
                cond,
                into_body,
                to_exit,
            } => {
                let c_nonempty = nonempty_flag(Expr::var(cond.clone()));
                let c_empty = probe().diff(c_nonempty.clone());
                body.push(Stmt::assign(
                    "pc_next",
                    Expr::var("pc_next")
                        .union(gate(
                            gate(marker_expr(*into_body), c_nonempty),
                            active.clone(),
                        ))
                        .union(gate(gate(marker_expr(*to_exit), c_empty), active)),
                ));
            }
            Instr::Jump(target) => {
                body.push(Stmt::assign(
                    "pc_next",
                    Expr::var("pc_next").union(gate(marker_expr(*target), active)),
                ));
            }
        }
    }
    body.push(Stmt::assign("pc", Expr::var("pc_next")));

    stmts.push(Stmt::while_loop("pc_done", "pc", "pc", body));
    Ok(Program::new(stmts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derived::tc_while_program;
    use crate::eval::{eval_program, EvalConfig};
    use crate::expr::Pred;
    use uset_object::{atom, Database};

    fn cfg() -> EvalConfig {
        EvalConfig {
            fuel: 10_000_000,
            max_instance_len: 1_000_000,
        }
    }

    fn run(prog: &Program, db: &Database) -> Instance {
        eval_program(prog, db, &cfg()).unwrap()
    }

    fn path(n: u64) -> Database {
        let mut db = Database::empty();
        db.set(
            "R",
            Instance::from_rows((0..n - 1).map(|i| [atom(i), atom(i + 1)])),
        );
        db
    }

    #[test]
    fn straight_line_program_survives() {
        let prog = Program::new(vec![
            Stmt::assign("x", Expr::var("R").project([0])),
            Stmt::assign("ANS", Expr::var("x").union(Expr::var("R").project([1]))),
        ]);
        let flat = flatten_to_single_while(&prog).unwrap();
        assert!(flat.is_unnested_while());
        let db = path(4);
        assert_eq!(run(&prog, &db), run(&flat, &db));
    }

    #[test]
    fn single_while_tc_flattens_equivalently() {
        let prog = tc_while_program("R");
        let flat = flatten_to_single_while(&prog).unwrap();
        assert!(flat.is_unnested_while());
        // exactly one while statement overall
        let while_count = flat.stmts.iter().filter(|s| s.contains_while()).count();
        assert_eq!(while_count, 1);
        for n in [2u64, 3, 5, 7] {
            let db = path(n);
            assert_eq!(run(&prog, &db), run(&flat, &db), "n = {n}");
        }
    }

    /// A genuinely nested program: the outer loop peels the maximum node
    /// off a "frontier", the inner loop recomputes reachability from
    /// scratch each round. Contrived, but it exercises back-edges,
    /// exit-copies and variable shadowing across nesting levels.
    fn nested_program() -> Program {
        let compose = Expr::var("acc")
            .product(Expr::var("R"))
            .select(Pred::eq_cols(1, 2))
            .project([0, 3]);
        Program::new(vec![
            Stmt::assign("rounds", Expr::var("R").project([0])),
            Stmt::assign("total", Expr::var("R").diff(Expr::var("R"))),
            Stmt::while_loop(
                "outer_out",
                "total",
                "rounds",
                vec![
                    // inner: full TC from scratch
                    Stmt::assign("acc", Expr::var("R")),
                    Stmt::assign("delta", Expr::var("R")),
                    Stmt::while_loop(
                        "tc",
                        "acc",
                        "delta",
                        vec![
                            Stmt::assign("new", compose.clone().diff(Expr::var("acc"))),
                            Stmt::assign("acc", Expr::var("acc").union(Expr::var("new"))),
                            Stmt::assign("delta", Expr::var("new")),
                        ],
                    ),
                    Stmt::assign("total", Expr::var("total").union(Expr::var("tc"))),
                    // peel one element (any one — generic because we drop
                    // the whole frontier in one go on the last lap is not
                    // generic; instead drop members that are maximal in R
                    // order — here simply empty the frontier stepwise by
                    // removing nodes with no outgoing R edge… keep it
                    // simple and generic: halve by intersecting with π₀R
                    // then diffing one fixpoint worth)
                    Stmt::assign("rounds", Expr::var("rounds").diff(Expr::var("rounds"))),
                ],
            ),
            Stmt::assign("ANS", Expr::var("outer_out")),
        ])
    }

    #[test]
    fn nested_whiles_flatten_equivalently() {
        let prog = nested_program();
        assert!(!prog.is_unnested_while());
        let flat = flatten_to_single_while(&prog).unwrap();
        assert!(flat.is_unnested_while());
        for n in [2u64, 4, 6] {
            let db = path(n);
            assert_eq!(run(&prog, &db), run(&flat, &db), "n = {n}");
        }
    }

    #[test]
    fn zero_iteration_loops() {
        // the loop body must not execute when the condition starts empty
        let prog = Program::new(vec![
            Stmt::assign("x", Expr::var("R")),
            Stmt::assign("e", Expr::var("R").diff(Expr::var("R"))),
            Stmt::while_loop("z", "x", "e", vec![Stmt::assign("x", Expr::var("e"))]),
            Stmt::assign("ANS", Expr::var("z")),
        ]);
        let flat = flatten_to_single_while(&prog).unwrap();
        let db = path(3);
        assert_eq!(run(&prog, &db), run(&flat, &db));
        assert_eq!(run(&flat, &db), db.get("R"));
    }

    #[test]
    fn undefine_in_body_rejected() {
        let prog = Program::new(vec![
            Stmt::assign("x", Expr::var("R")),
            Stmt::while_loop(
                "z",
                "x",
                "x",
                vec![Stmt::assign("x", Expr::var("x").undefine())],
            ),
            Stmt::assign("ANS", Expr::var("z")),
        ]);
        assert_eq!(
            flatten_to_single_while(&prog),
            Err(FlattenError::UndefineInLoopBody)
        );
    }

    #[test]
    fn top_level_undefine_is_fine() {
        let prog = Program::new(vec![Stmt::assign("ANS", Expr::var("R").undefine())]);
        let flat = flatten_to_single_while(&prog).unwrap();
        let db = path(3);
        assert_eq!(run(&prog, &db), run(&flat, &db));
        // and the undefined case still propagates
        let mut empty = Database::empty();
        empty.set("R", Instance::empty());
        assert_eq!(
            eval_program(&flat, &empty, &cfg()),
            Err(crate::eval::EvalError::Undefined)
        );
    }

    #[test]
    fn triple_nesting() {
        // three levels deep: while { while { while { … } } }
        let drain = |v: &str| Stmt::assign(v, Expr::var(v).diff(Expr::var(v)));
        let prog = Program::new(vec![
            Stmt::assign("a", Expr::var("R")),
            Stmt::assign("b", Expr::var("R")),
            Stmt::assign("c", Expr::var("R")),
            Stmt::assign("n", Expr::var("R").diff(Expr::var("R"))),
            Stmt::while_loop(
                "z1",
                "n",
                "a",
                vec![
                    Stmt::while_loop(
                        "z2",
                        "n",
                        "b",
                        vec![
                            Stmt::while_loop(
                                "z3",
                                "n",
                                "c",
                                vec![
                                    Stmt::assign("n", Expr::var("n").union(Expr::var("c"))),
                                    drain("c"),
                                ],
                            ),
                            drain("b"),
                        ],
                    ),
                    drain("a"),
                ],
            ),
            Stmt::assign("ANS", Expr::var("z1")),
        ]);
        assert!(!prog.is_unnested_while());
        let flat = flatten_to_single_while(&prog).unwrap();
        assert!(flat.is_unnested_while());
        let db = path(4);
        assert_eq!(run(&prog, &db), run(&flat, &db));
        assert_eq!(run(&flat, &db), db.get("R"));
    }
}
