//! # uset-algebra — the complex-object algebra with `while`
//!
//! The algebra of Hull & Su 1989 §2/§4, in the assignment-sequence style of
//! Kuper & Vardi: a query is a sequence of assignments `x := op(…)` ending
//! with an assignment to the distinguished variable `ANS`. The `while`
//! construct follows the paper exactly:
//!
//! ```text
//! z := while ⟨x; y⟩ do  assignments  end
//! ```
//!
//! — while the value of `y` is non-empty, execute the assignments; `z`
//! finally gets the value of `x`.
//!
//! Three language levels are distinguished (checked, not just documented):
//!
//! * **tsALG** — every intermediate has a strict type (no `Obj`); this is
//!   the typed complex-object algebra, E-equivalent (Theorem 2.2).
//! * **ALG** — intermediates may be heterogeneous (instances of rtypes);
//!   still E-equivalent without `while` (Theorem 4.1a).
//! * **ALG+while** — C-equivalent, with or without `powerset`, nested or
//!   unnested `while` (Theorem 4.1b).
//!
//! Per §4 of the paper, "horizontal" operators applied to heterogeneous
//! instances *ignore* members that do not have the right shape — e.g.
//! projecting column 3 of an instance containing a bare atom simply drops
//! the atom. Evaluation is fuel-bounded: a `while` loop that exceeds its
//! fuel reports [`EvalError::FuelExhausted`], the finite observation of the
//! paper's non-terminating-loop-maps-to-`?` convention.

pub mod derived;
pub mod eval;
pub mod expr;
pub mod flatten_while;
pub mod opt;
pub mod program;
pub mod typecheck;

pub use eval::{
    eval_program, eval_program_governed, AlgExhausted, EvalConfig, EvalError, EvalResult,
    PartialEnv,
};
pub use expr::{Expr, Operand, Pred};
pub use program::{Program, Stmt};
pub use typecheck::{infer_types, Level, TypeError};
