//! Algebra programs: assignment sequences with `while`.

use crate::expr::Expr;
use std::fmt;

/// The distinguished answer variable.
pub const ANS: &str = "ANS";

/// One statement of a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `var := expr`
    Assign(String, Expr),
    /// `out := while ⟨result; cond⟩ do body end` — while `cond` is
    /// non-empty run `body`; afterwards `out` receives the value of
    /// `result`. Per the paper, `out` must not occur in the body.
    While {
        /// Variable assigned after the loop ends (the paper's `z`).
        out: String,
        /// Variable whose final value is copied to `out` (the paper's `x`).
        result: String,
        /// Loop condition variable (the paper's `y`); loop runs while it is
        /// non-empty.
        cond: String,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// `var := expr`
    pub fn assign(var: impl Into<String>, expr: Expr) -> Stmt {
        Stmt::Assign(var.into(), expr)
    }

    /// Construct a `while` statement.
    pub fn while_loop(
        out: impl Into<String>,
        result: impl Into<String>,
        cond: impl Into<String>,
        body: Vec<Stmt>,
    ) -> Stmt {
        Stmt::While {
            out: out.into(),
            result: result.into(),
            cond: cond.into(),
            body,
        }
    }

    /// Does this statement contain a nested `while` inside a `while` body?
    pub fn has_nested_while(&self) -> bool {
        match self {
            Stmt::Assign(..) => false,
            Stmt::While { body, .. } => body.iter().any(Stmt::contains_while),
        }
    }

    /// Does this statement contain any `while` at all?
    pub fn contains_while(&self) -> bool {
        matches!(self, Stmt::While { .. })
    }

    /// Does any expression in this statement use `powerset`?
    pub fn uses_powerset(&self) -> bool {
        match self {
            Stmt::Assign(_, e) => e.uses_powerset(),
            Stmt::While { body, .. } => body.iter().any(Stmt::uses_powerset),
        }
    }

    /// Variables assigned by this statement (including inside loop bodies).
    pub fn collect_assigned(&self, out: &mut Vec<String>) {
        match self {
            Stmt::Assign(v, _) => out.push(v.clone()),
            Stmt::While { out: z, body, .. } => {
                out.push(z.clone());
                for s in body {
                    s.collect_assigned(out);
                }
            }
        }
    }

    /// Variables read by this statement.
    pub fn collect_read(&self, out: &mut Vec<String>) {
        match self {
            Stmt::Assign(_, e) => e.collect_vars(out),
            Stmt::While {
                result, cond, body, ..
            } => {
                out.push(result.clone());
                out.push(cond.clone());
                for s in body {
                    s.collect_read(out);
                }
            }
        }
    }
}

/// A query program: a sequence of statements; the final value of [`ANS`]
/// (which must be assigned) is the query answer.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    /// Statements in execution order.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// A program from statements.
    pub fn new(stmts: Vec<Stmt>) -> Program {
        Program { stmts }
    }

    /// True iff no `while` appears (the paper's plain ALG / tsALG).
    pub fn is_while_free(&self) -> bool {
        !self
            .stmts
            .iter()
            .any(|s| s.contains_while() || s.has_nested_while())
    }

    /// True iff no `while` body contains another `while` (the paper's
    /// *unnested-while* fragment).
    pub fn is_unnested_while(&self) -> bool {
        self.stmts.iter().all(|s| !s.has_nested_while())
    }

    /// True iff no expression uses `powerset` (the `−powerset` fragments of
    /// Theorem 4.1b).
    pub fn is_powerset_free(&self) -> bool {
        !self.stmts.iter().any(Stmt::uses_powerset)
    }

    /// True iff ANS is assigned somewhere.
    pub fn assigns_ans(&self) -> bool {
        let mut assigned = Vec::new();
        for s in &self.stmts {
            s.collect_assigned(&mut assigned);
        }
        assigned.iter().any(|v| v == ANS)
    }

    /// Static scope check: every variable is assigned (or is one of the
    /// given input relations) before it is read. Returns the first
    /// violating variable.
    pub fn check_def_before_use(&self, inputs: &[&str]) -> Result<(), String> {
        let mut defined: Vec<String> = inputs.iter().map(|s| (*s).to_owned()).collect();
        check_stmts(&self.stmts, &mut defined)
    }

    /// Append the statements of another program (simple concatenation; the
    /// caller is responsible for variable hygiene).
    pub fn extend(&mut self, other: Program) {
        self.stmts.extend(other.stmts);
    }
}

fn check_stmts(stmts: &[Stmt], defined: &mut Vec<String>) -> Result<(), String> {
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                let mut read = Vec::new();
                e.collect_vars(&mut read);
                for r in read {
                    if !defined.contains(&r) {
                        return Err(r);
                    }
                }
                if !defined.contains(v) {
                    defined.push(v.clone());
                }
            }
            Stmt::While {
                out,
                result,
                cond,
                body,
            } => {
                if !defined.contains(cond) {
                    return Err(cond.clone());
                }
                // the loop body may run zero times, but `result` must be
                // defined when the loop exits; require it defined before or
                // within the body
                let mut body_defs = defined.clone();
                check_stmts(body, &mut body_defs)?;
                if !body_defs.contains(result) {
                    return Err(result.clone());
                }
                if !defined.contains(out) {
                    defined.push(out.clone());
                }
            }
        }
    }
    Ok(())
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_stmts(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
            for s in stmts {
                let pad = "  ".repeat(indent);
                match s {
                    Stmt::Assign(v, e) => writeln!(f, "{pad}{v} := {e}")?,
                    Stmt::While {
                        out,
                        result,
                        cond,
                        body,
                    } => {
                        writeln!(f, "{pad}{out} := while ⟨{result}; {cond}⟩ do")?;
                        write_stmts(f, body, indent + 1)?;
                        writeln!(f, "{pad}end")?;
                    }
                }
            }
            Ok(())
        }
        write_stmts(f, &self.stmts, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn p(stmts: Vec<Stmt>) -> Program {
        Program::new(stmts)
    }

    #[test]
    fn fragment_classification() {
        let plain = p(vec![Stmt::assign(ANS, Expr::var("R"))]);
        assert!(plain.is_while_free());
        assert!(plain.is_unnested_while());
        assert!(plain.is_powerset_free());
        assert!(plain.assigns_ans());

        let with_while = p(vec![
            Stmt::assign("x", Expr::var("R")),
            Stmt::assign("y", Expr::var("R")),
            Stmt::while_loop(
                "z",
                "x",
                "y",
                vec![Stmt::assign("y", Expr::var("y").diff(Expr::var("y")))],
            ),
            Stmt::assign(ANS, Expr::var("z")),
        ]);
        assert!(!with_while.is_while_free());
        assert!(with_while.is_unnested_while());

        let nested = p(vec![
            Stmt::assign("x", Expr::var("R")),
            Stmt::assign("y", Expr::var("R")),
            Stmt::while_loop(
                "z",
                "x",
                "y",
                vec![Stmt::while_loop(
                    "w",
                    "x",
                    "y",
                    vec![Stmt::assign("y", Expr::var("y"))],
                )],
            ),
            Stmt::assign(ANS, Expr::var("z")),
        ]);
        assert!(!nested.is_unnested_while());

        let pow = p(vec![Stmt::assign(ANS, Expr::var("R").powerset())]);
        assert!(!pow.is_powerset_free());
    }

    #[test]
    fn def_before_use() {
        let ok = p(vec![
            Stmt::assign("x", Expr::var("R")),
            Stmt::assign(ANS, Expr::var("x")),
        ]);
        assert!(ok.check_def_before_use(&["R"]).is_ok());

        let bad = p(vec![Stmt::assign(ANS, Expr::var("x"))]);
        assert_eq!(bad.check_def_before_use(&["R"]), Err("x".to_owned()));

        let bad_cond = p(vec![
            Stmt::assign("x", Expr::var("R")),
            Stmt::while_loop("z", "x", "nope", vec![]),
        ]);
        assert_eq!(
            bad_cond.check_def_before_use(&["R"]),
            Err("nope".to_owned())
        );
    }

    #[test]
    fn display_roundtrips_shape() {
        let prog = p(vec![
            Stmt::assign("x", Expr::var("R")),
            Stmt::while_loop(
                "z",
                "x",
                "x",
                vec![Stmt::assign("x", Expr::var("x").diff(Expr::var("x")))],
            ),
            Stmt::assign(ANS, Expr::var("z")),
        ]);
        let text = prog.to_string();
        assert!(text.contains("while ⟨x; x⟩"));
        assert!(text.contains("ANS := z"));
    }
}
