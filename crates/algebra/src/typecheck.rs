//! rtype inference over algebra programs, separating the paper's language
//! levels.
//!
//! [`infer_types`] assigns an [`RType`] to every program variable by forward
//! abstract interpretation. The result classifies a program:
//!
//! * if every inferred rtype is *strict* (no `Obj`), the program is a
//!   **tsALG** program — the typed complex-object algebra of Theorem 2.1;
//! * otherwise it genuinely exploits untyped sets (**ALG**), e.g. by
//!   unioning differently-shaped instances or building ordinal chains.
//!
//! The analysis is sound but necessarily approximate (heterogeneous unions
//! are joined to `Obj`); its purpose is fragment classification, not safety
//! — the evaluator is total on well-scoped programs regardless.

use crate::expr::Expr;
use crate::program::{Program, Stmt};
use std::collections::HashMap;
use uset_object::{RType, Schema};

/// Language level of a program, per the paper's fragments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Typed complex-object algebra (every intermediate strictly typed).
    TypedSets,
    /// Untyped-set algebra (some intermediate has rtype involving `Obj`).
    UntypedSets,
}

/// Type-analysis failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// A variable was read before assignment (and is not an input).
    Unbound(String),
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::Unbound(v) => write!(f, "variable {v} read before assignment"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Infer rtypes for all variables of `prog` given the input schema.
///
/// Relations in the schema are typed as sets of their element type; each
/// assignment refines the variable's rtype to the join of all values it may
/// receive (loops are iterated to a fixpoint, which exists because the
/// rtype join lattice has bounded ascent to `Obj`).
pub fn infer_types(prog: &Program, schema: &Schema) -> Result<HashMap<String, RType>, TypeError> {
    let mut env: HashMap<String, RType> = schema
        .entries()
        .iter()
        .map(|(n, t)| (n.clone(), t.clone()))
        .collect();
    infer_stmts(&prog.stmts, &mut env)?;
    Ok(env)
}

/// Classify a program's language level under a schema.
pub fn classify(prog: &Program, schema: &Schema) -> Result<Level, TypeError> {
    let env = infer_types(prog, schema)?;
    if env.values().all(RType::is_strict) {
        Ok(Level::TypedSets)
    } else {
        Ok(Level::UntypedSets)
    }
}

fn infer_stmts(stmts: &[Stmt], env: &mut HashMap<String, RType>) -> Result<(), TypeError> {
    for s in stmts {
        match s {
            Stmt::Assign(var, expr) => {
                let t = infer_expr(expr, env)?;
                merge(env, var, t);
            }
            Stmt::While {
                out,
                result,
                cond,
                body,
            } => {
                if !env.contains_key(cond) {
                    return Err(TypeError::Unbound(cond.clone()));
                }
                // iterate the body to a type fixpoint (ascending chains in
                // the join lattice terminate: every join step either leaves
                // the map unchanged or moves some position toward Obj)
                loop {
                    let before = env.clone();
                    infer_stmts(body, env)?;
                    if *env == before {
                        break;
                    }
                }
                let rt = env
                    .get(result)
                    .cloned()
                    .ok_or_else(|| TypeError::Unbound(result.clone()))?;
                merge(env, out, rt);
            }
        }
    }
    Ok(())
}

fn merge(env: &mut HashMap<String, RType>, var: &str, t: RType) {
    match env.get(var) {
        Some(old) => {
            let joined = old.join(&t);
            env.insert(var.to_owned(), joined);
        }
        None => {
            env.insert(var.to_owned(), t);
        }
    }
}

/// Element rtype of the members of a variable of element rtype `t` — for
/// schemas we store *element* types, so expressions over instances
/// manipulate members of that type directly.
fn infer_expr(expr: &Expr, env: &HashMap<String, RType>) -> Result<RType, TypeError> {
    Ok(match expr {
        Expr::Var(v) => env
            .get(v)
            .cloned()
            .ok_or_else(|| TypeError::Unbound(v.clone()))?,
        Expr::Const(inst) => {
            // precise join over the constant's members
            let mut t: Option<RType> = None;
            for v in inst.iter() {
                let vt = rtype_of_value(v);
                t = Some(match t {
                    None => vt,
                    Some(old) => old.join(&vt),
                });
            }
            t.unwrap_or(RType::Obj)
        }
        Expr::Union(a, b) | Expr::Intersect(a, b) => infer_expr(a, env)?.join(&infer_expr(b, env)?),
        Expr::Diff(a, b) => {
            let t = infer_expr(a, env)?;
            let _ = infer_expr(b, env)?;
            t
        }
        Expr::Product(a, b) => {
            let ta = infer_expr(a, env)?;
            let tb = infer_expr(b, env)?;
            let mut items = tuple_components(&ta);
            items.extend(tuple_components(&tb));
            RType::Tuple(items)
        }
        Expr::Select(e, _) => infer_expr(e, env)?,
        Expr::Project(e, cols) => {
            let t = infer_expr(e, env)?;
            match &t {
                RType::Tuple(items) => {
                    let picked: Vec<RType> = cols
                        .iter()
                        .map(|&c| items.get(c).cloned().unwrap_or(RType::Obj))
                        .collect();
                    match <[RType; 1]>::try_from(picked) {
                        Ok([single]) => single,
                        Err(picked) => RType::Tuple(picked),
                    }
                }
                _ => RType::Obj,
            }
        }
        Expr::Nest(e, cols) => {
            let t = infer_expr(e, env)?;
            match &t {
                RType::Tuple(items) => {
                    let nested: Vec<RType> = cols
                        .iter()
                        .map(|&c| items.get(c).cloned().unwrap_or(RType::Obj))
                        .collect();
                    let inner = match <[RType; 1]>::try_from(nested) {
                        Ok([single]) => single,
                        Err(nested) => RType::Tuple(nested),
                    };
                    let mut row: Vec<RType> = items
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !cols.contains(i))
                        .map(|(_, t)| t.clone())
                        .collect();
                    row.push(RType::Set(Box::new(inner)));
                    RType::Tuple(row)
                }
                _ => RType::Obj,
            }
        }
        Expr::Unnest(e, col) => {
            let t = infer_expr(e, env)?;
            match &t {
                RType::Tuple(items) if *col < items.len() => {
                    let spliced = match &items[*col] {
                        RType::Set(inner) => tuple_components(inner),
                        _ => vec![RType::Obj],
                    };
                    let mut row: Vec<RType> = items[..*col].to_vec();
                    row.extend(spliced);
                    row.extend(items[col + 1..].iter().cloned());
                    RType::Tuple(row)
                }
                _ => RType::Obj,
            }
        }
        Expr::Powerset(e) | Expr::Singleton(e) => RType::Set(Box::new(infer_expr(e, env)?)),
        Expr::SetCollapse(e) => {
            let t = infer_expr(e, env)?;
            match t {
                RType::Set(inner) => *inner,
                _ => RType::Obj,
            }
        }
        Expr::Wrap(e) => RType::Tuple(vec![infer_expr(e, env)?]),
        Expr::Unwrap(e) => {
            let t = infer_expr(e, env)?;
            match t {
                RType::Tuple(items) if items.len() == 1 => match <[RType; 1]>::try_from(items) {
                    Ok([single]) => single,
                    Err(items) => RType::Tuple(items),
                },
                _ => RType::Obj,
            }
        }
        Expr::Undefine(e) => infer_expr(e, env)?,
    })
}

fn tuple_components(t: &RType) -> Vec<RType> {
    match t {
        RType::Tuple(items) => items.clone(),
        other => vec![other.clone()],
    }
}

fn rtype_of_value(v: &uset_object::Value) -> RType {
    use uset_object::Value;
    match v {
        Value::Atom(_) => RType::Atomic,
        Value::Tuple(items) => RType::Tuple(items.iter().map(rtype_of_value).collect()),
        Value::Set(items) => {
            let mut inner: Option<RType> = None;
            for m in items {
                let mt = rtype_of_value(m);
                inner = Some(match inner {
                    None => mt,
                    Some(old) => old.join(&mt),
                });
            }
            RType::Set(Box::new(inner.unwrap_or(RType::Obj)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Pred;
    use crate::program::ANS;
    use uset_object::{atom, set, Instance};

    fn schema_r2() -> Schema {
        Schema::flat([("R", 2)])
    }

    #[test]
    fn relational_program_is_typed() {
        let prog = Program::new(vec![Stmt::assign(
            ANS,
            Expr::var("R")
                .product(Expr::var("R"))
                .select(Pred::eq_cols(1, 2))
                .project([0, 3]),
        )]);
        let env = infer_types(&prog, &schema_r2()).unwrap();
        assert_eq!(env[ANS], RType::Tuple(vec![RType::Atomic, RType::Atomic]));
        assert_eq!(classify(&prog, &schema_r2()).unwrap(), Level::TypedSets);
    }

    #[test]
    fn heterogeneous_union_is_untyped() {
        // union a relation of pairs with its own projection (bare atoms):
        // members now have two incompatible shapes → Obj
        let prog = Program::new(vec![Stmt::assign(
            ANS,
            Expr::var("R").union(Expr::var("R").project([0])),
        )]);
        assert_eq!(classify(&prog, &schema_r2()).unwrap(), Level::UntypedSets);
    }

    #[test]
    fn ordinal_chain_step_is_untyped() {
        // x := x ∪ singleton(x) — the chain-building step of Theorem 4.1(b)
        let prog = Program::new(vec![
            Stmt::assign("x", Expr::var("R").project([0])),
            Stmt::assign("x", Expr::var("x").union(Expr::var("x").singleton())),
            Stmt::assign(ANS, Expr::var("x")),
        ]);
        assert_eq!(classify(&prog, &schema_r2()).unwrap(), Level::UntypedSets);
    }

    #[test]
    fn nest_and_powerset_stay_typed() {
        let prog = Program::new(vec![
            Stmt::assign("g", Expr::var("R").nest([1])),
            Stmt::assign(ANS, Expr::var("g").project([1]).powerset()),
        ]);
        let env = infer_types(&prog, &schema_r2()).unwrap();
        assert_eq!(
            env["g"],
            RType::Tuple(vec![RType::Atomic, RType::Set(Box::new(RType::Atomic))])
        );
        assert_eq!(
            env[ANS],
            RType::Set(Box::new(RType::Set(Box::new(RType::Atomic))))
        );
        assert_eq!(classify(&prog, &schema_r2()).unwrap(), Level::TypedSets);
    }

    #[test]
    fn while_loop_types_reach_fixpoint() {
        // TC-style loop stays typed
        let compose = Expr::var("tc")
            .product(Expr::var("R"))
            .select(Pred::eq_cols(1, 2))
            .project([0, 3]);
        let prog = Program::new(vec![
            Stmt::assign("tc", Expr::var("R")),
            Stmt::assign("delta", Expr::var("R")),
            Stmt::while_loop(
                "out",
                "tc",
                "delta",
                vec![
                    Stmt::assign("new", compose.clone().diff(Expr::var("tc"))),
                    Stmt::assign("tc", Expr::var("tc").union(Expr::var("new"))),
                    Stmt::assign("delta", Expr::var("new")),
                ],
            ),
            Stmt::assign(ANS, Expr::var("out")),
        ]);
        assert_eq!(classify(&prog, &schema_r2()).unwrap(), Level::TypedSets);
    }

    #[test]
    fn unbound_reported() {
        let prog = Program::new(vec![Stmt::assign(ANS, Expr::var("missing"))]);
        assert_eq!(
            infer_types(&prog, &schema_r2()),
            Err(TypeError::Unbound("missing".to_owned()))
        );
    }

    #[test]
    fn arity_mismatched_union_joins_to_obj() {
        // unioning relations of different tuple arities has no common
        // strict shape: the join collapses to Obj, not a wider tuple
        let schema = Schema::flat([("R", 2), ("S", 3)]);
        let prog = Program::new(vec![Stmt::assign(
            ANS,
            Expr::var("R").union(Expr::var("S")),
        )]);
        let env = infer_types(&prog, &schema).unwrap();
        assert_eq!(env[ANS], RType::Obj);
        assert_eq!(classify(&prog, &schema).unwrap(), Level::UntypedSets);
    }

    #[test]
    fn componentwise_heterogeneity_joins_inside_the_tuple() {
        // same arity but one column differs in shape: the join stays a
        // tuple and only the offending component widens to Obj
        let prog = Program::new(vec![
            Stmt::assign("g", Expr::var("R").nest([1])), // [U, {U}]
            Stmt::assign(ANS, Expr::var("R").union(Expr::var("g"))),
        ]);
        let env = infer_types(&prog, &schema_r2()).unwrap();
        assert_eq!(env[ANS], RType::Tuple(vec![RType::Atomic, RType::Obj]));
        assert_eq!(classify(&prog, &schema_r2()).unwrap(), Level::UntypedSets);
    }

    #[test]
    fn loop_carried_read_before_assign_detected() {
        // the body reads `carry` before anything defines it: the first
        // iteration would fault, and inference reports it
        let prog = Program::new(vec![
            Stmt::assign("d", Expr::var("R")),
            Stmt::while_loop(
                "out",
                "d",
                "d",
                vec![
                    Stmt::assign("x", Expr::var("carry")),
                    Stmt::assign("carry", Expr::var("R")),
                ],
            ),
            Stmt::assign(ANS, Expr::var("out")),
        ]);
        assert_eq!(
            infer_types(&prog, &schema_r2()),
            Err(TypeError::Unbound("carry".to_owned()))
        );
        // seeding the carried variable before the loop makes it legal
        let seeded = Program::new(vec![
            Stmt::assign("carry", Expr::var("R")),
            Stmt::assign("d", Expr::var("R")),
            Stmt::while_loop(
                "out",
                "d",
                "d",
                vec![
                    Stmt::assign("x", Expr::var("carry")),
                    Stmt::assign("carry", Expr::var("R")),
                ],
            ),
            Stmt::assign(ANS, Expr::var("out")),
        ]);
        assert!(infer_types(&seeded, &schema_r2()).is_ok());
    }

    #[test]
    fn loop_carried_widening_terminates_at_obj() {
        // x grows a singleton level per iteration; the join lattice has
        // bounded ascent, so the fixpoint loop must terminate — with x
        // widened past any strict type
        let prog = Program::new(vec![
            Stmt::assign("x", Expr::var("R").project([0])),
            Stmt::assign("d", Expr::var("R")),
            Stmt::while_loop(
                "out",
                "x",
                "d",
                vec![Stmt::assign("x", Expr::var("x").singleton())],
            ),
            Stmt::assign(ANS, Expr::var("out")),
        ]);
        let env = infer_types(&prog, &schema_r2()).unwrap();
        assert!(!env["x"].is_strict());
        assert_eq!(classify(&prog, &schema_r2()).unwrap(), Level::UntypedSets);
    }

    #[test]
    fn constant_types_are_precise() {
        let homog = Expr::Const(Instance::from_values([atom(1), atom(2)]));
        let het = Expr::Const(Instance::from_values([atom(1), set([atom(2)])]));
        let prog = Program::new(vec![
            Stmt::assign("a", homog),
            Stmt::assign("b", het),
            Stmt::assign(ANS, Expr::var("a")),
        ]);
        let env = infer_types(&prog, &Schema::default()).unwrap();
        assert_eq!(env["a"], RType::Atomic);
        assert_eq!(env["b"], RType::Obj);
    }
}
