//! Budget-governed evaluation of algebra programs.
//!
//! Evaluation follows §2/§4 of the paper: statements execute in order over
//! an environment of instance-valued variables initialized from the input
//! database; `while ⟨x;y⟩` loops run while `y` is non-empty; the program's
//! answer is the final value of `ANS`. If `undefine` fires on an empty
//! instance the whole query is `?` ([`EvalError::Undefined`]); resource
//! overruns — the step budget (the finite stand-in for the paper's
//! non-termination-is-`?` convention, see DESIGN.md §5), the instance-size
//! cap that converts powerset/product explosions into clean errors, a
//! wall-clock deadline, or cooperative cancellation — all report
//! [`EvalError::Exhausted`] through the shared [`uset_guard`] taxonomy,
//! carrying the environment at the last completed statement boundary as a
//! partial-result snapshot.

use crate::expr::{Expr, Pred};
use crate::program::{Program, Stmt, ANS};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Instant;
use uset_guard::ckpt;
use uset_guard::trace::span::{engine_end, engine_start};
use uset_guard::trace::TraceEvent;
use uset_guard::{Budget, EngineId, Exhausted, Governor, Guard, Trip};
use uset_object::{Database, EvalStats, Instance, Value};

/// Engine label carried by every algebra trace event.
const ENGINE: &str = "algebra";

/// Evaluation limits — a thin shim kept for source compatibility; new
/// code should pass a [`uset_guard::Governor`] to
/// [`eval_program_governed`] instead. Converted via [`EvalConfig::budget`].
#[derive(Clone, Copy, Debug)]
pub struct EvalConfig {
    /// Maximum number of statements executed (loop iterations multiply).
    pub fuel: u64,
    /// Maximum number of members in any intermediate instance (powerset and
    /// product can explode; this converts explosions into clean errors).
    pub max_instance_len: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            fuel: 1_000_000,
            max_instance_len: 1_000_000,
        }
    }
}

impl EvalConfig {
    /// The equivalent shared-layer budget: `fuel` → steps,
    /// `max_instance_len` → value size.
    pub fn budget(&self) -> Budget {
        Budget::unlimited()
            .with_steps(self.fuel)
            .with_value_size(self.max_instance_len)
    }
}

/// The environment at the last completed statement boundary — the partial
/// result an exhausted run surrenders instead of discarding its work.
/// Statements mutate the environment atomically, so this snapshot is
/// always a state some prefix of the execution legitimately reached.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartialEnv {
    /// Variable → instance bindings (inputs plus everything assigned so
    /// far, including loop-carried intermediates).
    pub env: BTreeMap<String, Instance>,
}

impl PartialEnv {
    /// The partial answer, if the program assigned `ANS` before running
    /// out of budget.
    pub fn ans(&self) -> Option<&Instance> {
        self.env.get(ANS)
    }
}

/// The algebra engine's exhaustion report.
pub type AlgExhausted = Exhausted<PartialEnv>;

/// Evaluation failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The paper's `?`: `undefine` fired on an empty instance.
    Undefined,
    /// A resource budget was exhausted or the run was cancelled; carries
    /// provenance, the environment snapshot, and work counters.
    Exhausted(Box<AlgExhausted>),
    /// A variable was read before being assigned.
    Unbound(String),
    /// The program never assigned `ANS`.
    NoAnswer,
}

impl EvalError {
    /// True for any budget/cancellation exhaustion (the old
    /// `FuelExhausted` and `InstanceTooLarge` conditions both map here).
    pub fn is_exhausted(&self) -> bool {
        matches!(self, EvalError::Exhausted(_))
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Undefined => write!(f, "query evaluated to the undefined value '?'"),
            EvalError::Exhausted(e) => write!(f, "{e}"),
            EvalError::Unbound(v) => write!(f, "variable {v} read before assignment"),
            EvalError::NoAnswer => write!(f, "program did not assign ANS"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Result alias for evaluation.
pub type EvalResult<T> = Result<T, EvalError>;

/// Internal error split: guard trips become [`EvalError::Exhausted`] only
/// at the top level, where the environment snapshot is available.
enum RunErr {
    Trip(Trip),
    Fail(EvalError),
}

impl From<Trip> for RunErr {
    fn from(t: Trip) -> RunErr {
        RunErr::Trip(t)
    }
}

impl From<EvalError> for RunErr {
    fn from(e: EvalError) -> RunErr {
        RunErr::Fail(e)
    }
}

type RunResult<T> = Result<T, RunErr>;

/// The loop state an algebra checkpoint restores: the index of the next
/// top-level statement, whether execution stopped *inside* that
/// statement's `while` loop (the loop is condition-driven, so the
/// restored environment alone determines the remaining iterations), and
/// the environment itself. Commits happen at top-level statement and
/// top-level while-iteration boundaries; statements nested in a loop
/// body execute atomically between commits.
struct AlgResume {
    pc: usize,
    in_while: bool,
    env: BTreeMap<String, Instance>,
}

fn alg_fingerprint(prog: &Program, db: &Database) -> u64 {
    let mut e = ckpt::Enc::new();
    e.put_str(ENGINE);
    e.put_str(&format!("{prog:?}"));
    e.put_database(db);
    ckpt::fnv64(&e.finish())
}

fn alg_encode(pc: usize, in_while: bool, env: &BTreeMap<String, Instance>) -> Vec<u8> {
    let mut e = ckpt::Enc::new();
    e.put_u64(pc as u64);
    e.put_u8(in_while as u8);
    e.put_instance_map(env);
    e.finish()
}

fn alg_decode(payload: &[u8]) -> Option<AlgResume> {
    let mut d = ckpt::Dec::new(payload);
    let pc = d.u64().ok()? as usize;
    let in_while = d.u8().ok()? != 0;
    let env = d.instance_map().ok()?;
    d.done().then_some(AlgResume { pc, in_while, env })
}

struct Evaluator {
    env: HashMap<String, Instance>,
    guard: Guard,
    session: Option<ckpt::Session>,
    /// Commit sequence number, the durable round id: a statement boundary
    /// and the last iteration of its `while` can share a step count, so
    /// the strictly-monotone round id is a plain counter.
    commits: u64,
}

impl Evaluator {
    /// Commit the environment at a top-level boundary. `pc` is the next
    /// top-level statement to run; `in_while` resumes inside `pc`'s loop
    /// instead of at its entry (skipping the statement-entry step charge
    /// that was already paid before the first committed iteration).
    fn commit_top(&mut self, pc: usize, in_while: bool) {
        if self.session.is_none() {
            return;
        }
        self.commits += 1;
        let env: BTreeMap<String, Instance> = self
            .env
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let stats = EvalStats {
            rounds: self.guard.steps(),
            peak_facts: env.values().map(Instance::len).max().unwrap_or(0),
            ..EvalStats::default()
        };
        let payload = alg_encode(pc, in_while, &env);
        let rc = self.guard.round_ckpt(self.commits, &stats, payload);
        if let Some(sess) = self.session.as_mut() {
            sess.commit(&rc);
        }
    }

    /// Top-level statement driver: [`Evaluator::run_stmts`] plus a resume
    /// point and a durable commit after every statement and every
    /// top-level `while` iteration. Loop bodies still run through
    /// [`Evaluator::run_stmts`] and commit nothing mid-flight.
    fn run_top(&mut self, stmts: &[Stmt], start: usize, mut mid_while: bool) -> RunResult<()> {
        for (pc, s) in stmts.iter().enumerate().skip(start) {
            let resumed_mid = std::mem::take(&mut mid_while);
            if !resumed_mid {
                self.guard.step()?;
            }
            match s {
                Stmt::Assign(var, expr) => {
                    let v = self.eval_expr(expr)?;
                    self.env.insert(var.clone(), v);
                    self.commit_top(pc + 1, false);
                }
                Stmt::While {
                    out,
                    result,
                    cond,
                    body,
                } => {
                    loop {
                        let c = self.lookup(cond)?;
                        if c.is_empty() {
                            break;
                        }
                        let delta = c.len() as u64;
                        self.guard.step()?;
                        let round = self.guard.steps();
                        let round_t0 = self.guard.trace().enabled().then(Instant::now);
                        self.guard.trace().emit(|| TraceEvent::RoundStart {
                            engine: ENGINE.into(),
                            round,
                            delta,
                        });
                        self.run_stmts(body)?;
                        let env = &self.env;
                        let value_hwm = self.guard.value_hwm() as u64;
                        self.guard.trace().emit(|| TraceEvent::RoundEnd {
                            engine: ENGINE.into(),
                            round,
                            delta,
                            facts: env.values().map(Instance::len).sum::<usize>() as u64,
                            value_hwm,
                            wall_micros: round_t0.map_or(0, |t| t.elapsed().as_micros() as u64),
                        });
                        self.commit_top(pc, true);
                    }
                    let r = self.lookup(result)?.clone();
                    self.env.insert(out.clone(), r);
                    self.commit_top(pc + 1, false);
                }
            }
        }
        Ok(())
    }

    fn run_stmts(&mut self, stmts: &[Stmt]) -> RunResult<()> {
        for s in stmts {
            self.guard.step()?;
            match s {
                Stmt::Assign(var, expr) => {
                    let v = self.eval_expr(expr)?;
                    self.env.insert(var.clone(), v);
                }
                Stmt::While {
                    out,
                    result,
                    cond,
                    body,
                } => {
                    // each iteration is one "round" in the trace: the
                    // condition's size plays the role of the delta
                    loop {
                        let c = self.lookup(cond)?;
                        if c.is_empty() {
                            break;
                        }
                        let delta = c.len() as u64;
                        self.guard.step()?;
                        let round = self.guard.steps();
                        let round_t0 = self.guard.trace().enabled().then(Instant::now);
                        self.guard.trace().emit(|| TraceEvent::RoundStart {
                            engine: ENGINE.into(),
                            round,
                            delta,
                        });
                        self.run_stmts(body)?;
                        let env = &self.env;
                        let value_hwm = self.guard.value_hwm() as u64;
                        self.guard.trace().emit(|| TraceEvent::RoundEnd {
                            engine: ENGINE.into(),
                            round,
                            delta,
                            facts: env.values().map(Instance::len).sum::<usize>() as u64,
                            value_hwm,
                            wall_micros: round_t0.map_or(0, |t| t.elapsed().as_micros() as u64),
                        });
                    }
                    let r = self.lookup(result)?.clone();
                    self.env.insert(out.clone(), r);
                }
            }
        }
        Ok(())
    }

    fn lookup(&self, var: &str) -> EvalResult<&Instance> {
        self.env
            .get(var)
            .ok_or_else(|| EvalError::Unbound(var.to_owned()))
    }

    fn eval_expr(&mut self, expr: &Expr) -> RunResult<Instance> {
        let out = match expr {
            Expr::Var(v) => self.lookup(v)?.clone(),
            Expr::Const(i) => i.clone(),
            Expr::Union(a, b) => {
                let x = self.eval_expr(a)?;
                x.union(&self.eval_expr(b)?)
            }
            Expr::Diff(a, b) => {
                let x = self.eval_expr(a)?;
                x.difference(&self.eval_expr(b)?)
            }
            Expr::Intersect(a, b) => {
                let x = self.eval_expr(a)?;
                x.intersection(&self.eval_expr(b)?)
            }
            Expr::Product(a, b) => {
                let x = self.eval_expr(a)?;
                product(&x, &self.eval_expr(b)?)
            }
            Expr::Select(e, p) => select(&self.eval_expr(e)?, p),
            Expr::Project(e, cols) => project(&self.eval_expr(e)?, cols),
            Expr::Nest(e, cols) => nest(&self.eval_expr(e)?, cols),
            Expr::Unnest(e, col) => unnest(&self.eval_expr(e)?, *col),
            Expr::Powerset(e) => {
                let inst = self.eval_expr(e)?;
                // charge 2^n against the cap before materializing; n at or
                // past the word width saturates instead of shifting out of
                // range (a 63-member instance already predicts 2^63)
                let predicted = match inst.len() {
                    n if n >= usize::BITS as usize => usize::MAX,
                    n => 1usize << n,
                };
                self.guard.check_value(predicted, None)?;
                powerset(&inst)
            }
            Expr::SetCollapse(e) => set_collapse(&self.eval_expr(e)?),
            Expr::Singleton(e) => Instance::from_values([self.eval_expr(e)?.to_set_value()]),
            Expr::Wrap(e) => wrap(&self.eval_expr(e)?),
            Expr::Unwrap(e) => unwrap_tuples(&self.eval_expr(e)?),
            Expr::Undefine(e) => {
                let inst = self.eval_expr(e)?;
                if inst.is_empty() {
                    return Err(EvalError::Undefined.into());
                }
                inst
            }
        };
        self.guard.check_value(out.len(), None)?;
        Ok(out)
    }
}

/// Coerce a member to tuple components (non-tuples act as 1-tuples).
fn components(v: &Value) -> Vec<Value> {
    match v {
        Value::Tuple(items) => items.clone(),
        other => vec![other.clone()],
    }
}

/// Cartesian product with tuple concatenation.
pub fn product(a: &Instance, b: &Instance) -> Instance {
    let mut out = Instance::empty();
    for x in a.iter() {
        let xs = components(x);
        for y in b.iter() {
            let mut row = xs.clone();
            row.extend(components(y));
            out.insert(Value::Tuple(row));
        }
    }
    out
}

/// Selection; members where the predicate is inapplicable are dropped.
pub fn select(inst: &Instance, pred: &Pred) -> Instance {
    inst.iter()
        .filter(|m| pred.eval(m) == Some(true))
        .cloned()
        .collect()
}

/// Projection; wrong-shape members are dropped. One column yields bare
/// values; several yield tuples.
pub fn project(inst: &Instance, cols: &[usize]) -> Instance {
    let mut out = Instance::empty();
    'member: for m in inst.iter() {
        let mut picked = Vec::with_capacity(cols.len());
        for &c in cols {
            match m.project(c) {
                Some(v) => picked.push(v.clone()),
                None => continue 'member,
            }
        }
        let v = match <[Value; 1]>::try_from(picked) {
            Ok([single]) => single,
            Err(picked) => Value::Tuple(picked),
        };
        out.insert(v);
    }
    out
}

/// Nest ν: group by the complement of `cols`; the grouped columns become a
/// set appended after the grouping columns. Wrong-shape members dropped.
pub fn nest(inst: &Instance, cols: &[usize]) -> Instance {
    use std::collections::BTreeMap;
    let nested: BTreeSet<usize> = cols.iter().copied().collect();
    let mut groups: BTreeMap<Vec<Value>, BTreeSet<Value>> = BTreeMap::new();
    for m in inst.iter() {
        let Some(items) = m.as_tuple() else { continue };
        if cols.iter().any(|&c| c >= items.len()) {
            continue;
        }
        let key: Vec<Value> = items
            .iter()
            .enumerate()
            .filter(|(i, _)| !nested.contains(i))
            .map(|(_, v)| v.clone())
            .collect();
        let sub: Vec<Value> = cols.iter().map(|&c| items[c].clone()).collect();
        let sub_val = match <[Value; 1]>::try_from(sub) {
            Ok([single]) => single,
            Err(sub) => Value::Tuple(sub),
        };
        groups.entry(key).or_default().insert(sub_val);
    }
    let mut out = Instance::empty();
    for (key, members) in groups {
        let mut row = key;
        row.push(Value::Set(members));
        out.insert(Value::Tuple(row));
    }
    out
}

/// Unnest μ on column `col`: splice each set member (coerced to tuple) in
/// place of the set. Members whose `col` is not a set are dropped.
pub fn unnest(inst: &Instance, col: usize) -> Instance {
    let mut out = Instance::empty();
    for m in inst.iter() {
        let Some(items) = m.as_tuple() else { continue };
        let Some(set) = items.get(col).and_then(Value::as_set) else {
            continue;
        };
        for member in set {
            let mut row: Vec<Value> = Vec::with_capacity(items.len() + 1);
            row.extend(items[..col].iter().cloned());
            row.extend(components(member));
            row.extend(items[col + 1..].iter().cloned());
            out.insert(Value::Tuple(row));
        }
    }
    out
}

/// Powerset of the instance, as set objects.
pub fn powerset(inst: &Instance) -> Instance {
    let members: Vec<Value> = inst.iter().cloned().collect();
    uset_object::cons::powerset(&members).into_iter().collect()
}

/// Remove one set level: union of all set-shaped members.
pub fn set_collapse(inst: &Instance) -> Instance {
    let mut out = Instance::empty();
    for m in inst.iter() {
        if let Some(s) = m.as_set() {
            for v in s {
                out.insert(v.clone());
            }
        }
    }
    out
}

/// Wrap each member as a 1-tuple.
pub fn wrap(inst: &Instance) -> Instance {
    inst.iter().map(|v| Value::Tuple(vec![v.clone()])).collect()
}

/// Unwrap 1-tuples; other members dropped.
pub fn unwrap_tuples(inst: &Instance) -> Instance {
    inst.iter()
        .filter_map(|v| match v {
            Value::Tuple(items) if items.len() == 1 => Some(items[0].clone()),
            _ => None,
        })
        .collect()
}

/// Evaluate a program on a database. Input relations enter the environment
/// under their database names; the answer is the final value of `ANS`.
pub fn eval_program(prog: &Program, db: &Database, config: &EvalConfig) -> EvalResult<Instance> {
    eval_program_governed(prog, db, &Governor::new(config.budget()))
}

/// Evaluate a program under a shared-layer [`Governor`] (budget +
/// cancellation + optional failpoint). On exhaustion the error carries the
/// environment at the last completed statement boundary and work counters.
pub fn eval_program_governed(
    prog: &Program,
    db: &Database,
    governor: &Governor,
) -> EvalResult<Instance> {
    let mut guard = governor.guard(EngineId::Algebra);
    let run_start = engine_start(ENGINE, &governor.trace);
    let mut session = guard.ckpt_session(alg_fingerprint(prog, db));
    let mut start = 0usize;
    let mut mid_while = false;
    let mut env: HashMap<String, Instance> =
        db.iter().map(|(n, i)| (n.to_owned(), i.clone())).collect();
    let mut commits = 0u64;
    if let Some(sess) = session.as_mut() {
        if let Some(rec) = sess.recover() {
            if let Some(r) = alg_decode(&rec.payload) {
                // algebra synthesizes its stats from the guard meters, so
                // recovery only needs the meters restored
                let mut stats = EvalStats::default();
                guard.adopt_recovery(&rec, &mut stats);
                start = r.pc;
                mid_while = r.in_while;
                env = r.env.into_iter().collect();
                commits = rec.round;
            }
        }
    }
    let mut ev = Evaluator {
        env,
        guard,
        session,
        commits,
    };
    match ev.run_top(&prog.stmts, start, mid_while) {
        Ok(()) => {
            engine_end(ENGINE, &governor.trace, ev.guard.steps(), run_start);
            if let Some(sess) = ev.session.as_mut() {
                sess.finish();
            }
            ev.env.remove(ANS).ok_or(EvalError::NoAnswer)
        }
        Err(RunErr::Fail(e)) => Err(e),
        Err(RunErr::Trip(trip)) => {
            let partial = PartialEnv {
                env: ev.env.into_iter().collect(),
            };
            let stats = EvalStats {
                rounds: ev.guard.steps(),
                peak_facts: partial.env.values().map(Instance::len).max().unwrap_or(0),
                ..EvalStats::default()
            };
            Err(EvalError::Exhausted(Box::new(Exhausted::new(
                trip, partial, stats,
            ))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Operand;
    use uset_object::{atom, set, tuple};

    fn db_r(rows: Vec<Vec<Value>>) -> Database {
        let mut db = Database::empty();
        db.set("R", Instance::from_rows(rows));
        db
    }

    fn run(prog: Program, db: &Database) -> EvalResult<Instance> {
        eval_program(&prog, db, &EvalConfig::default())
    }

    #[test]
    fn identity_query() {
        let db = db_r(vec![vec![atom(1), atom(2)]]);
        let prog = Program::new(vec![Stmt::assign(ANS, Expr::var("R"))]);
        assert_eq!(run(prog, &db).unwrap(), db.get("R"));
    }

    #[test]
    fn product_concatenates_tuples() {
        let a = Instance::from_rows([[atom(1), atom(2)]]);
        let b = Instance::from_rows([[atom(3)]]);
        let p = product(&a, &b);
        assert_eq!(
            p,
            Instance::from_values([tuple([atom(1), atom(2), atom(3)])])
        );
        // bare values act as 1-tuples
        let bare = Instance::from_values([atom(9)]);
        let p2 = product(&bare, &bare);
        assert_eq!(p2, Instance::from_values([tuple([atom(9), atom(9)])]));
    }

    #[test]
    fn select_skips_wrong_shapes() {
        let het = Instance::from_values([
            tuple([atom(1), atom(1)]),
            tuple([atom(1), atom(2)]),
            atom(7), // not a tuple: skipped, not an error
        ]);
        let sel = select(&het, &Pred::eq_cols(0, 1));
        assert_eq!(sel, Instance::from_values([tuple([atom(1), atom(1)])]));
    }

    #[test]
    fn project_single_column_is_bare() {
        let inst = Instance::from_rows([[atom(1), atom(2)], [atom(3), atom(4)]]);
        assert_eq!(
            project(&inst, &[0]),
            Instance::from_values([atom(1), atom(3)])
        );
        assert_eq!(
            project(&inst, &[1, 0]),
            Instance::from_values([tuple([atom(2), atom(1)]), tuple([atom(4), atom(3)])])
        );
    }

    #[test]
    fn nest_unnest_roundtrip_modulo_column_order() {
        let inst = Instance::from_rows([
            [atom(1), atom(10)],
            [atom(1), atom(11)],
            [atom(2), atom(20)],
        ]);
        let nested = nest(&inst, &[1]);
        assert_eq!(
            nested,
            Instance::from_values([
                tuple([atom(1), set([atom(10), atom(11)])]),
                tuple([atom(2), set([atom(20)])]),
            ])
        );
        let flat = unnest(&nested, 1);
        assert_eq!(flat, inst);
    }

    #[test]
    fn nest_multiple_columns_makes_tuples() {
        let inst = Instance::from_rows([[atom(1), atom(2), atom(3)]]);
        let nested = nest(&inst, &[1, 2]);
        assert_eq!(
            nested,
            Instance::from_values([tuple([atom(1), set([tuple([atom(2), atom(3)])])])])
        );
    }

    #[test]
    fn powerset_and_collapse() {
        let inst = Instance::from_values([atom(1), atom(2)]);
        let pow = powerset(&inst);
        assert_eq!(pow.len(), 4);
        assert!(pow.contains(&Value::empty_set()));
        assert!(pow.contains(&set([atom(1), atom(2)])));
        // collapse of the powerset recovers the original members
        assert_eq!(set_collapse(&pow), inst);
    }

    #[test]
    fn wrap_unwrap_inverse() {
        let inst = Instance::from_values([atom(1), set([atom(2)])]);
        assert_eq!(unwrap_tuples(&wrap(&inst)), inst);
        // unwrap drops non-1-tuples
        let mixed = Instance::from_values([tuple([atom(1)]), tuple([atom(1), atom(2)]), atom(3)]);
        assert_eq!(unwrap_tuples(&mixed), Instance::from_values([atom(1)]));
    }

    #[test]
    fn undefine_produces_undefined() {
        let db = db_r(vec![]);
        let prog = Program::new(vec![Stmt::assign(ANS, Expr::var("R").undefine())]);
        assert_eq!(run(prog, &db), Err(EvalError::Undefined));

        let db2 = db_r(vec![vec![atom(1), atom(2)]]);
        let prog2 = Program::new(vec![Stmt::assign(ANS, Expr::var("R").undefine())]);
        assert!(run(prog2, &db2).is_ok());
    }

    #[test]
    fn while_loop_drains_condition() {
        // drain R one "round" by emptying y immediately; z gets x
        let db = db_r(vec![vec![atom(1), atom(2)]]);
        let prog = Program::new(vec![
            Stmt::assign("x", Expr::var("R")),
            Stmt::assign("y", Expr::var("R")),
            Stmt::while_loop(
                "z",
                "x",
                "y",
                vec![
                    Stmt::assign("x", Expr::var("x").union(Expr::var("x"))),
                    Stmt::assign("y", Expr::var("y").diff(Expr::var("y"))),
                ],
            ),
            Stmt::assign(ANS, Expr::var("z")),
        ]);
        assert_eq!(run(prog, &db).unwrap(), db.get("R"));
    }

    #[test]
    fn while_zero_iterations() {
        let db = db_r(vec![vec![atom(1), atom(2)]]);
        let prog = Program::new(vec![
            Stmt::assign("x", Expr::var("R")),
            Stmt::assign("empty", Expr::var("R").diff(Expr::var("R"))),
            Stmt::while_loop(
                "z",
                "x",
                "empty",
                vec![Stmt::assign("x", Expr::var("empty"))],
            ),
            Stmt::assign(ANS, Expr::var("z")),
        ]);
        // body never runs, so z = x = R
        assert_eq!(run(prog, &db).unwrap(), db.get("R"));
    }

    #[test]
    fn divergent_while_hits_fuel() {
        let db = db_r(vec![vec![atom(1), atom(2)]]);
        let prog = Program::new(vec![
            Stmt::assign("x", Expr::var("R")),
            Stmt::while_loop(
                "z",
                "x",
                "x",
                vec![Stmt::assign("x", Expr::var("x"))], // never empties
            ),
            Stmt::assign(ANS, Expr::var("z")),
        ]);
        let cfg = EvalConfig {
            fuel: 1000,
            ..EvalConfig::default()
        };
        match eval_program(&prog, &db, &cfg) {
            Err(EvalError::Exhausted(e)) => {
                assert_eq!(e.trip.resource, uset_guard::Resource::Steps);
                assert_eq!(e.trip.engine, EngineId::Algebra);
                // the partial snapshot retains the loop-carried state
                assert!(!e.partial.env.is_empty());
                assert_eq!(e.partial.env["x"], db.get("R"));
                assert!(e.stats.rounds > 0);
            }
            other => panic!("expected Exhausted(Steps), got {other:?}"),
        }
    }

    #[test]
    fn unbound_variable_detected() {
        let db = db_r(vec![]);
        let prog = Program::new(vec![Stmt::assign(ANS, Expr::var("nope"))]);
        assert_eq!(run(prog, &db), Err(EvalError::Unbound("nope".to_owned())));
    }

    #[test]
    fn missing_ans_detected() {
        let db = db_r(vec![]);
        let prog = Program::new(vec![Stmt::assign("x", Expr::var("R"))]);
        assert_eq!(run(prog, &db), Err(EvalError::NoAnswer));
    }

    #[test]
    fn powerset_size_guard() {
        let big: Vec<Vec<Value>> = (0..40).map(|i| vec![atom(i), atom(i)]).collect();
        let db = db_r(big);
        let prog = Program::new(vec![Stmt::assign(ANS, Expr::var("R").powerset())]);
        let cfg = EvalConfig {
            max_instance_len: 1 << 16,
            ..EvalConfig::default()
        };
        match eval_program(&prog, &db, &cfg) {
            Err(EvalError::Exhausted(e)) => {
                assert_eq!(e.trip.resource, uset_guard::Resource::ValueSize);
                // inputs survive in the snapshot even though ANS never landed
                assert!(e.partial.env.contains_key("R"));
            }
            other => panic!("expected Exhausted(ValueSize), got {other:?}"),
        }
    }

    #[test]
    fn failpoint_cancels_mid_program() {
        use uset_guard::{FailPoint, Resource};
        let db = db_r(vec![vec![atom(1), atom(2)]]);
        let prog = Program::new(vec![
            Stmt::assign("x", Expr::var("R")),
            Stmt::assign("y", Expr::var("x")),
            Stmt::assign(ANS, Expr::var("y")),
        ]);
        let gov = Governor::unlimited().with_failpoint(FailPoint::cancel_at(2));
        match eval_program_governed(&prog, &db, &gov) {
            Err(EvalError::Exhausted(e)) => {
                assert_eq!(e.trip.resource, Resource::Cancelled);
                // statement 1 completed before the injected cancellation
                assert_eq!(e.partial.env["x"], db.get("R"));
            }
            other => panic!("expected Exhausted(Cancelled), got {other:?}"),
        }
    }

    #[test]
    fn nest_skips_out_of_range_columns_and_non_tuples() {
        let het = Instance::from_values([
            tuple([atom(1), atom(2)]),
            tuple([atom(9)]), // too short for col 1
            atom(7),          // not a tuple
        ]);
        let out = nest(&het, &[1]);
        assert_eq!(
            out,
            Instance::from_values([tuple([atom(1), set([atom(2)])])])
        );
    }

    #[test]
    fn unnest_skips_non_set_columns() {
        let inst = Instance::from_values([
            tuple([atom(1), set([atom(2)])]),
            tuple([atom(3), atom(4)]), // col 1 not a set
            atom(5),
        ]);
        assert_eq!(
            unnest(&inst, 1),
            Instance::from_values([tuple([atom(1), atom(2)])])
        );
        // unnesting an empty set drops the member entirely
        let empty_set_member = Instance::from_values([tuple([atom(1), Value::empty_set()])]);
        assert_eq!(unnest(&empty_set_member, 1), Instance::empty());
    }

    #[test]
    fn singleton_of_empty_is_the_empty_set_object() {
        let db = db_r(vec![]);
        let prog = Program::new(vec![Stmt::assign(ANS, Expr::var("R").singleton())]);
        assert_eq!(
            run(prog, &db).unwrap(),
            Instance::from_values([Value::empty_set()])
        );
    }

    #[test]
    fn product_with_empty_is_empty() {
        let a = Instance::from_rows([[atom(1)]]);
        assert_eq!(product(&a, &Instance::empty()), Instance::empty());
        assert_eq!(product(&Instance::empty(), &a), Instance::empty());
    }

    #[test]
    fn set_collapse_ignores_non_sets() {
        let mixed = Instance::from_values([
            set([atom(1), atom(2)]),
            atom(3),
            tuple([atom(4)]),
            set([tuple([atom(5), atom(6)])]),
        ]);
        assert_eq!(
            set_collapse(&mixed),
            Instance::from_values([atom(1), atom(2), tuple([atom(5), atom(6)])])
        );
    }

    #[test]
    fn project_repeated_columns_duplicates() {
        let inst = Instance::from_rows([[atom(1), atom(2)]]);
        assert_eq!(
            project(&inst, &[0, 0, 1]),
            Instance::from_values([tuple([atom(1), atom(1), atom(2)])])
        );
    }

    #[test]
    fn while_out_variable_assigned_even_after_zero_runs() {
        // z is the *only* handle on x per the paper's syntax
        let db = db_r(vec![vec![atom(1), atom(2)]]);
        let prog = Program::new(vec![
            Stmt::assign("x", Expr::var("R")),
            Stmt::assign("none", Expr::var("R").diff(Expr::var("R"))),
            Stmt::while_loop("z", "x", "none", vec![Stmt::assign("x", Expr::var("none"))]),
            Stmt::assign(ANS, Expr::var("z").union(Expr::var("z"))),
        ]);
        assert_eq!(run(prog, &db).unwrap(), db.get("R"));
    }

    #[test]
    fn membership_select_on_nested_data() {
        // pairs [v, S] where v ∈ S
        let inst = Instance::from_values([
            tuple([atom(1), set([atom(1), atom(2)])]),
            tuple([atom(3), set([atom(1), atom(2)])]),
        ]);
        let mut db = Database::empty();
        db.set("R", inst);
        let prog = Program::new(vec![Stmt::assign(
            ANS,
            Expr::var("R").select(Pred::Member(Operand::Col(0), Operand::Col(1))),
        )]);
        let out = run(prog, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple([atom(1), set([atom(1), atom(2)])])));
    }
}
