//! Algebra expressions, selection predicates, and operands.
//!
//! An [`Expr`] denotes an instance-valued operation over the variables in
//! scope. Operators follow Abiteboul–Beeri/Kuper–Vardi complex-object
//! algebra conventions, with the paper's §4 relaxation: on heterogeneous
//! instances, shape-sensitive operators skip members of the wrong shape.

use std::fmt;
use uset_object::{Instance, Value};

/// An instance-valued algebra expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A program variable (or input relation name).
    Var(String),
    /// A constant instance (embeds the query's constants `C`).
    Const(Instance),
    /// Set union. In relaxed mode the operands may have different rtypes —
    /// "we permit the formation of unions of instances of different rtypes".
    Union(Box<Expr>, Box<Expr>),
    /// Set difference.
    Diff(Box<Expr>, Box<Expr>),
    /// Set intersection.
    Intersect(Box<Expr>, Box<Expr>),
    /// Cartesian product: members are coerced to tuples (a non-tuple `v`
    /// acts as `[v]`) and concatenated pairwise.
    Product(Box<Expr>, Box<Expr>),
    /// Selection by predicate; members on which the predicate is
    /// inapplicable (wrong shape) are dropped.
    Select(Box<Expr>, Pred),
    /// Projection onto columns (0-based); non-tuples and too-short tuples
    /// are dropped. Projecting a single column yields *bare* values;
    /// multiple columns yield tuples.
    Project(Box<Expr>, Vec<usize>),
    /// Nest ν: group members by the columns *not* listed; each group emits
    /// one tuple of the grouping columns (in order) followed by one set
    /// containing the nested-column sub-tuples (bare values if one column).
    Nest(Box<Expr>, Vec<usize>),
    /// Unnest μ on a set-valued column: splice each member of that set
    /// (coerced to a tuple) in place of the column.
    Unnest(Box<Expr>, usize),
    /// Powerset: all subsets of the instance, as set objects.
    Powerset(Box<Expr>),
    /// Set-collapse: the union of all set-shaped members (one nesting level
    /// removed); non-set members are dropped.
    SetCollapse(Box<Expr>),
    /// Singleton: the one-member instance containing the operand instance
    /// as a single set object.
    Singleton(Box<Expr>),
    /// Wrap each member `v` as the 1-tuple `[v]`.
    Wrap(Box<Expr>),
    /// Unwrap 1-tuples `[v]` to `v`; other members are dropped.
    Unwrap(Box<Expr>),
    /// The paper's `undefine`: `?` if the operand is empty, the operand
    /// otherwise.
    Undefine(Box<Expr>),
}

impl Expr {
    /// Variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Constant instance.
    pub fn constant(inst: Instance) -> Expr {
        Expr::Const(inst)
    }

    /// Constant single-value instance.
    pub fn const_value(v: Value) -> Expr {
        Expr::Const(Instance::from_values([v]))
    }

    /// `self ∪ other`
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Box::new(self), Box::new(other))
    }

    /// `self − other`
    pub fn diff(self, other: Expr) -> Expr {
        Expr::Diff(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`
    pub fn intersect(self, other: Expr) -> Expr {
        Expr::Intersect(Box::new(self), Box::new(other))
    }

    /// `self × other`
    pub fn product(self, other: Expr) -> Expr {
        Expr::Product(Box::new(self), Box::new(other))
    }

    /// `σ_pred(self)`
    pub fn select(self, pred: Pred) -> Expr {
        Expr::Select(Box::new(self), pred)
    }

    /// `π_cols(self)`
    pub fn project(self, cols: impl IntoIterator<Item = usize>) -> Expr {
        Expr::Project(Box::new(self), cols.into_iter().collect())
    }

    /// `ν_cols(self)`
    pub fn nest(self, cols: impl IntoIterator<Item = usize>) -> Expr {
        Expr::Nest(Box::new(self), cols.into_iter().collect())
    }

    /// `μ_col(self)`
    pub fn unnest(self, col: usize) -> Expr {
        Expr::Unnest(Box::new(self), col)
    }

    /// `powerset(self)`
    pub fn powerset(self) -> Expr {
        Expr::Powerset(Box::new(self))
    }

    /// `collapse(self)` — one set level removed.
    pub fn set_collapse(self) -> Expr {
        Expr::SetCollapse(Box::new(self))
    }

    /// `{self}` as a single object.
    pub fn singleton(self) -> Expr {
        Expr::Singleton(Box::new(self))
    }

    /// Wrap members as 1-tuples.
    pub fn wrap(self) -> Expr {
        Expr::Wrap(Box::new(self))
    }

    /// Unwrap 1-tuples.
    pub fn unwrap_tuples(self) -> Expr {
        Expr::Unwrap(Box::new(self))
    }

    /// `undefine(self)`.
    pub fn undefine(self) -> Expr {
        Expr::Undefine(Box::new(self))
    }

    /// Whether the expression (recursively) uses `Powerset` — Theorem 4.1(b)
    /// distinguishes ALG+while from ALG+while−powerset.
    pub fn uses_powerset(&self) -> bool {
        match self {
            Expr::Var(_) | Expr::Const(_) => false,
            Expr::Powerset(_) => true,
            Expr::Union(a, b) | Expr::Diff(a, b) | Expr::Intersect(a, b) | Expr::Product(a, b) => {
                a.uses_powerset() || b.uses_powerset()
            }
            Expr::Select(e, _)
            | Expr::Project(e, _)
            | Expr::Nest(e, _)
            | Expr::Unnest(e, _)
            | Expr::SetCollapse(e)
            | Expr::Singleton(e)
            | Expr::Wrap(e)
            | Expr::Unwrap(e)
            | Expr::Undefine(e) => e.uses_powerset(),
        }
    }

    /// Variables read by this expression, appended to `out`.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => out.push(v.clone()),
            Expr::Const(_) => {}
            Expr::Union(a, b) | Expr::Diff(a, b) | Expr::Intersect(a, b) | Expr::Product(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Select(e, _)
            | Expr::Project(e, _)
            | Expr::Nest(e, _)
            | Expr::Unnest(e, _)
            | Expr::SetCollapse(e)
            | Expr::Singleton(e)
            | Expr::Wrap(e)
            | Expr::Unwrap(e)
            | Expr::Undefine(e)
            | Expr::Powerset(e) => e.collect_vars(out),
        }
    }
}

/// An operand inside a selection predicate, evaluated relative to the
/// current member object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Operand {
    /// The member itself.
    Whole,
    /// The `i`-th component (0-based) of the member (member must be a tuple
    /// of sufficient arity, else the predicate is inapplicable).
    Col(usize),
    /// A nested component path, e.g. `[1, 0]` = first component of second
    /// component.
    Path(Vec<usize>),
    /// A constant object.
    Lit(Value),
    /// A tuple built from sub-operands, e.g. `Tup([Col(0), Col(3)])` builds
    /// `[m.0, m.3]` — the tuple-construction facility of the complex-object
    /// algebra, needed to phrase conditions like `[x, z] ∈ S`.
    Tup(Vec<Operand>),
}

impl Operand {
    /// Resolve against a member; `None` if the shape does not fit.
    pub fn resolve(&self, member: &Value) -> Option<Value> {
        match self {
            Operand::Whole => Some(member.clone()),
            Operand::Col(i) => member.project(*i).cloned(),
            Operand::Path(path) => {
                let mut cur = member;
                for &i in path {
                    cur = cur.project(i)?;
                }
                Some(cur.clone())
            }
            Operand::Lit(v) => Some(v.clone()),
            Operand::Tup(parts) => Some(Value::Tuple(
                parts
                    .iter()
                    .map(|p| p.resolve(member))
                    .collect::<Option<Vec<_>>>()?,
            )),
        }
    }
}

/// Selection predicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pred {
    /// Equality of two operands.
    Eq(Operand, Operand),
    /// Membership `left ∈ right` (right must resolve to a set).
    Member(Operand, Operand),
    /// Subset `left ⊆ right` (both must resolve to sets).
    Subset(Operand, Operand),
    /// Operand resolves to a set (shape test).
    IsSet(Operand),
    /// Operand resolves to an atom (shape test).
    IsAtom(Operand),
    /// Operand resolves to a tuple of exactly the given arity.
    IsTuple(Operand, usize),
    /// Negation.
    Not(Box<Pred>),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Always true (useful in generated code).
    True,
}

impl Pred {
    /// `left = right` on columns.
    pub fn eq_cols(i: usize, j: usize) -> Pred {
        Pred::Eq(Operand::Col(i), Operand::Col(j))
    }

    /// `col = literal`.
    pub fn eq_const(i: usize, v: Value) -> Pred {
        Pred::Eq(Operand::Col(i), Operand::Lit(v))
    }

    /// `left ∈ right` on columns.
    pub fn member_cols(i: usize, j: usize) -> Pred {
        Pred::Member(Operand::Col(i), Operand::Col(j))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        Pred::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(other))
    }

    /// Evaluate against a member. `None` means "inapplicable" (wrong shape):
    /// the member is skipped by selection, per the paper's §4 convention.
    pub fn eval(&self, member: &Value) -> Option<bool> {
        match self {
            Pred::True => Some(true),
            Pred::Eq(a, b) => Some(a.resolve(member)? == b.resolve(member)?),
            Pred::Member(a, b) => {
                let x = a.resolve(member)?;
                let bv = b.resolve(member)?;
                let s = bv.as_set()?;
                Some(s.contains(&x))
            }
            Pred::Subset(a, b) => {
                let av = a.resolve(member)?;
                let bv = b.resolve(member)?;
                let x = av.as_set()?;
                let y = bv.as_set()?;
                Some(x.is_subset(y))
            }
            Pred::IsSet(a) => Some(a.resolve(member)?.is_set()),
            Pred::IsAtom(a) => Some(a.resolve(member)?.is_atom()),
            Pred::IsTuple(a, n) => {
                Some(a.resolve(member)?.as_tuple().map(<[Value]>::len) == Some(*n))
            }
            Pred::Not(p) => p.eval(member).map(|b| !b),
            Pred::And(p, q) => match (p.eval(member), q.eval(member)) {
                (Some(a), Some(b)) => Some(a && b),
                _ => None,
            },
            Pred::Or(p, q) => match (p.eval(member), q.eval(member)) {
                (Some(a), Some(b)) => Some(a || b),
                _ => None,
            },
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Const(i) => write!(f, "const{i}"),
            Expr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            Expr::Diff(a, b) => write!(f, "({a} − {b})"),
            Expr::Intersect(a, b) => write!(f, "({a} ∩ {b})"),
            Expr::Product(a, b) => write!(f, "({a} × {b})"),
            Expr::Select(e, p) => write!(f, "σ[{p:?}]({e})"),
            Expr::Project(e, cols) => write!(f, "π{cols:?}({e})"),
            Expr::Nest(e, cols) => write!(f, "ν{cols:?}({e})"),
            Expr::Unnest(e, col) => write!(f, "μ[{col}]({e})"),
            Expr::Powerset(e) => write!(f, "powerset({e})"),
            Expr::SetCollapse(e) => write!(f, "collapse({e})"),
            Expr::Singleton(e) => write!(f, "singleton({e})"),
            Expr::Wrap(e) => write!(f, "wrap({e})"),
            Expr::Unwrap(e) => write!(f, "unwrap({e})"),
            Expr::Undefine(e) => write!(f, "undefine({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_object::{atom, set, tuple};

    #[test]
    fn operand_resolution() {
        let m = tuple([atom(1), tuple([atom(2), atom(3)])]);
        assert_eq!(Operand::Whole.resolve(&m), Some(m.clone()));
        assert_eq!(Operand::Col(0).resolve(&m), Some(atom(1)));
        assert_eq!(Operand::Col(5).resolve(&m), None);
        assert_eq!(Operand::Path(vec![1, 1]).resolve(&m), Some(atom(3)));
        assert_eq!(Operand::Path(vec![0, 0]).resolve(&m), None);
        assert_eq!(Operand::Lit(atom(9)).resolve(&m), Some(atom(9)));
        assert_eq!(
            Operand::Tup(vec![Operand::Col(0), Operand::Path(vec![1, 0])]).resolve(&m),
            Some(tuple([atom(1), atom(2)]))
        );
        assert_eq!(Operand::Tup(vec![Operand::Col(9)]).resolve(&m), None);
    }

    #[test]
    fn predicate_eval_with_inapplicability() {
        let row = tuple([atom(1), atom(1)]);
        assert_eq!(Pred::eq_cols(0, 1).eval(&row), Some(true));
        assert_eq!(Pred::eq_cols(0, 2).eval(&row), None); // no col 2
        assert_eq!(Pred::eq_cols(0, 1).eval(&atom(3)), None); // not a tuple
        assert_eq!(Pred::True.eval(&atom(3)), Some(true));
    }

    #[test]
    fn membership_and_subset() {
        let row = tuple([atom(1), set([atom(1), atom(2)]), set([atom(1)])]);
        assert_eq!(Pred::member_cols(0, 1).eval(&row), Some(true));
        assert_eq!(
            Pred::Member(Operand::Col(0), Operand::Col(0)).eval(&row),
            None // col0 is not a set
        );
        assert_eq!(
            Pred::Subset(Operand::Col(2), Operand::Col(1)).eval(&row),
            Some(true)
        );
        assert_eq!(
            Pred::Subset(Operand::Col(1), Operand::Col(2)).eval(&row),
            Some(false)
        );
    }

    #[test]
    fn boolean_connectives_propagate_inapplicability() {
        let row = tuple([atom(1)]);
        let bad = Pred::eq_cols(0, 5);
        let good = Pred::eq_const(0, atom(1));
        assert_eq!(good.clone().and(bad.clone()).eval(&row), None);
        assert_eq!(good.clone().or(bad.clone()).eval(&row), None);
        assert_eq!(bad.not().eval(&row), None);
        assert_eq!(good.clone().and(good.clone()).eval(&row), Some(true));
        assert_eq!(good.clone().not().eval(&row), Some(false));
    }

    #[test]
    fn shape_tests() {
        assert_eq!(Pred::IsAtom(Operand::Whole).eval(&atom(1)), Some(true));
        assert_eq!(Pred::IsSet(Operand::Whole).eval(&atom(1)), Some(false));
        assert_eq!(
            Pred::IsTuple(Operand::Whole, 2).eval(&tuple([atom(1), atom(2)])),
            Some(true)
        );
        assert_eq!(
            Pred::IsTuple(Operand::Whole, 3).eval(&tuple([atom(1), atom(2)])),
            Some(false)
        );
    }

    #[test]
    fn uses_powerset_detection() {
        let e = Expr::var("R").union(Expr::var("S").powerset());
        assert!(e.uses_powerset());
        let e2 = Expr::var("R").product(Expr::var("S")).select(Pred::True);
        assert!(!e2.uses_powerset());
    }

    #[test]
    fn collect_vars() {
        let e = Expr::var("R").union(Expr::var("S")).product(Expr::var("R"));
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec!["R", "S", "R"]);
    }
}
