//! Program optimization: algebraic simplification and dead-assignment
//! elimination.
//!
//! The compilers in `uset-core` generate mechanical code (gated unions
//! with empty constants, copies of copies); this pass cleans such programs
//! up without changing their meaning:
//!
//! * **simplify** — local algebraic identities: `e ∪ ∅ = e`, `e − ∅ = e`,
//!   `∅ × e = ∅`, `σ_true(e) = e`, `e ∪ e = e`, `e ∩ e = e`, `e − e = ∅`,
//!   `unwrap(wrap(e)) = e`, collapse of nested unions with `∅`, and
//!   constant folding of operations whose operands are both constants.
//! * **eliminate_dead** — remove assignments to variables that are never
//!   subsequently read and are not `ANS` (loop-aware: anything read or
//!   controlled inside a `while` stays live across the loop).
//!
//! All passes preserve the undefined-value semantics: expressions
//! containing `undefine` are never folded away or duplicated.

use crate::expr::{Expr, Pred};
use crate::program::{Program, Stmt, ANS};
use uset_object::Instance;

fn is_empty_const(e: &Expr) -> bool {
    matches!(e, Expr::Const(i) if i.is_empty())
}

fn empty() -> Expr {
    Expr::Const(Instance::empty())
}

fn has_undefine(e: &Expr) -> bool {
    match e {
        Expr::Undefine(_) => true,
        Expr::Var(_) | Expr::Const(_) => false,
        Expr::Union(a, b) | Expr::Diff(a, b) | Expr::Intersect(a, b) | Expr::Product(a, b) => {
            has_undefine(a) || has_undefine(b)
        }
        Expr::Select(e, _)
        | Expr::Project(e, _)
        | Expr::Nest(e, _)
        | Expr::Unnest(e, _)
        | Expr::Powerset(e)
        | Expr::SetCollapse(e)
        | Expr::Singleton(e)
        | Expr::Wrap(e)
        | Expr::Unwrap(e) => has_undefine(e),
    }
}

/// Simplify an expression bottom-up.
pub fn simplify_expr(e: &Expr) -> Expr {
    match e {
        Expr::Var(_) | Expr::Const(_) => e.clone(),
        Expr::Union(a, b) => {
            let (a, b) = (simplify_expr(a), simplify_expr(b));
            if is_empty_const(&a) {
                b
            } else if is_empty_const(&b) || (a == b && !has_undefine(&a)) {
                a
            } else if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                Expr::Const(x.union(y))
            } else {
                a.union(b)
            }
        }
        Expr::Diff(a, b) => {
            let (a, b) = (simplify_expr(a), simplify_expr(b));
            if is_empty_const(&b) {
                a
            } else if (is_empty_const(&a) && !has_undefine(&b)) || (a == b && !has_undefine(&a)) {
                empty()
            } else if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                Expr::Const(x.difference(y))
            } else {
                a.diff(b)
            }
        }
        Expr::Intersect(a, b) => {
            let (a, b) = (simplify_expr(a), simplify_expr(b));
            if (is_empty_const(&a) && !has_undefine(&b))
                || (is_empty_const(&b) && !has_undefine(&a))
            {
                empty()
            } else if a == b && !has_undefine(&a) {
                a
            } else if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                Expr::Const(x.intersection(y))
            } else {
                a.intersect(b)
            }
        }
        Expr::Product(a, b) => {
            let (a, b) = (simplify_expr(a), simplify_expr(b));
            if (is_empty_const(&a) && !has_undefine(&b))
                || (is_empty_const(&b) && !has_undefine(&a))
            {
                empty()
            } else {
                a.product(b)
            }
        }
        Expr::Select(inner, p) => {
            let inner = simplify_expr(inner);
            if *p == Pred::True {
                inner
            } else if is_empty_const(&inner) {
                empty()
            } else {
                inner.select(p.clone())
            }
        }
        Expr::Project(inner, cols) => {
            let inner = simplify_expr(inner);
            if is_empty_const(&inner) {
                empty()
            } else {
                inner.project(cols.iter().copied())
            }
        }
        Expr::Nest(inner, cols) => simplify_expr(inner).nest(cols.iter().copied()),
        Expr::Unnest(inner, col) => {
            let inner = simplify_expr(inner);
            if is_empty_const(&inner) {
                empty()
            } else {
                inner.unnest(*col)
            }
        }
        Expr::Powerset(inner) => simplify_expr(inner).powerset(),
        Expr::SetCollapse(inner) => {
            let inner = simplify_expr(inner);
            if is_empty_const(&inner) {
                empty()
            } else {
                inner.set_collapse()
            }
        }
        Expr::Singleton(inner) => simplify_expr(inner).singleton(),
        Expr::Wrap(inner) => {
            let inner = simplify_expr(inner);
            if is_empty_const(&inner) {
                empty()
            } else {
                inner.wrap()
            }
        }
        Expr::Unwrap(inner) => {
            let inner = simplify_expr(inner);
            match inner {
                Expr::Wrap(e) => *e,
                e if is_empty_const(&e) => empty(),
                e => e.unwrap_tuples(),
            }
        }
        Expr::Undefine(inner) => simplify_expr(inner).undefine(),
    }
}

fn simplify_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign(v, e) => Stmt::Assign(v.clone(), simplify_expr(e)),
            Stmt::While {
                out,
                result,
                cond,
                body,
            } => Stmt::While {
                out: out.clone(),
                result: result.clone(),
                cond: cond.clone(),
                body: simplify_stmts(body),
            },
        })
        .collect()
}

/// Variables read anywhere in the statements (loop-aware).
fn read_set(stmts: &[Stmt]) -> std::collections::BTreeSet<String> {
    let mut reads = Vec::new();
    for s in stmts {
        s.collect_read(&mut reads);
    }
    reads.into_iter().collect()
}

/// Remove assignments to variables that are never read anywhere in the
/// program and are not `ANS`. Iterates to a fixpoint (removing one dead
/// assignment can make another dead). Conservative in the presence of
/// loops: a variable read anywhere stays, even if only before its
/// assignment. Assignments whose expressions contain `undefine` are kept
/// (they may produce `?`).
pub fn eliminate_dead(prog: &Program) -> Program {
    let mut stmts = prog.stmts.clone();
    loop {
        let live = read_set(&stmts);
        let before = stmts.len() + count_nested(&stmts);
        stmts = remove_dead(&stmts, &live);
        if stmts.len() + count_nested(&stmts) == before {
            return Program::new(stmts);
        }
    }
}

fn count_nested(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign(..) => 0,
            Stmt::While { body, .. } => body.len() + count_nested(body),
        })
        .sum()
}

fn remove_dead(stmts: &[Stmt], live: &std::collections::BTreeSet<String>) -> Vec<Stmt> {
    stmts
        .iter()
        .filter_map(|s| match s {
            Stmt::Assign(v, e) => {
                if v != ANS && !live.contains(v) && !has_undefine(e) {
                    None
                } else {
                    Some(s.clone())
                }
            }
            Stmt::While {
                out,
                result,
                cond,
                body,
            } => Some(Stmt::While {
                out: out.clone(),
                result: result.clone(),
                cond: cond.clone(),
                body: remove_dead(body, live),
            }),
        })
        .collect()
}

/// Full pipeline: simplify, then eliminate dead assignments.
pub fn optimize(prog: &Program) -> Program {
    eliminate_dead(&Program::new(simplify_stmts(&prog.stmts)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_program, EvalConfig};
    use uset_object::{atom, Database, Instance};

    fn db() -> Database {
        let mut d = Database::empty();
        d.set(
            "R",
            Instance::from_rows([[atom(1), atom(2)], [atom(2), atom(3)]]),
        );
        d
    }

    fn same_semantics(p: &Program) {
        let o = optimize(p);
        let cfg = EvalConfig::default();
        assert_eq!(
            eval_program(p, &db(), &cfg),
            eval_program(&o, &db(), &cfg),
            "optimization changed semantics"
        );
    }

    #[test]
    fn union_with_empty_folds() {
        let e = Expr::var("R").union(empty());
        assert_eq!(simplify_expr(&e), Expr::var("R"));
        let e2 = empty().union(Expr::var("R"));
        assert_eq!(simplify_expr(&e2), Expr::var("R"));
    }

    #[test]
    fn self_operations_fold() {
        let r = Expr::var("R");
        assert_eq!(simplify_expr(&r.clone().union(r.clone())), r);
        assert_eq!(simplify_expr(&r.clone().intersect(r.clone())), r);
        assert!(is_empty_const(&simplify_expr(&r.clone().diff(r.clone()))));
    }

    #[test]
    fn undefine_never_folds() {
        let u = Expr::var("R").undefine();
        // u − u must NOT fold to ∅: it can still produce `?`
        let e = u.clone().diff(u.clone());
        assert_eq!(simplify_expr(&e), e);
        // nor may ∅ × undefine(...) fold away
        let e2 = empty().product(u);
        assert_eq!(simplify_expr(&e2), e2);
    }

    #[test]
    fn constant_folding() {
        let a = Expr::Const(Instance::from_values([atom(1)]));
        let b = Expr::Const(Instance::from_values([atom(2)]));
        match simplify_expr(&a.union(b)) {
            Expr::Const(i) => assert_eq!(i.len(), 2),
            other => panic!("expected constant, got {other}"),
        }
    }

    #[test]
    fn unwrap_wrap_cancels() {
        let e = Expr::var("R").wrap().unwrap_tuples();
        assert_eq!(simplify_expr(&e), Expr::var("R"));
    }

    #[test]
    fn dead_assignments_removed_transitively() {
        let prog = Program::new(vec![
            Stmt::assign("a", Expr::var("R")),
            Stmt::assign("b", Expr::var("a")), // read only by dead c
            Stmt::assign("c", Expr::var("b")), // never read
            Stmt::assign(ANS, Expr::var("R")),
        ]);
        let o = optimize(&prog);
        assert_eq!(o.stmts.len(), 1);
        same_semantics(&prog);
    }

    #[test]
    fn loop_variables_stay_live() {
        let prog = crate::derived::tc_while_program("R");
        let o = optimize(&prog);
        let cfg = EvalConfig::default();
        assert_eq!(
            eval_program(&prog, &db(), &cfg).unwrap(),
            eval_program(&o, &db(), &cfg).unwrap()
        );
    }

    #[test]
    fn undefine_assignment_never_removed() {
        let prog = Program::new(vec![
            Stmt::assign("side", Expr::var("R").diff(Expr::var("R")).undefine()),
            Stmt::assign(ANS, Expr::var("R")),
        ]);
        let o = optimize(&prog);
        assert_eq!(o.stmts.len(), 2, "undefine side effect preserved");
        let cfg = EvalConfig::default();
        // both produce `?` because side is undefined on the diff
        assert!(eval_program(&prog, &db(), &cfg).is_err());
        assert!(eval_program(&o, &db(), &cfg).is_err());
    }

    #[test]
    fn select_true_elides() {
        let prog = Program::new(vec![Stmt::assign(
            ANS,
            Expr::var("R").select(Pred::True).union(empty()),
        )]);
        let o = optimize(&prog);
        assert_eq!(o.stmts[0], Stmt::assign(ANS, Expr::var("R")));
        same_semantics(&prog);
    }
}
