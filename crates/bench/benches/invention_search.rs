//! Section 6: invention semantics and flattening.
//!
//! Shapes this regenerates:
//! * `Q|ⁱ` evaluation cost grows with the invention budget `i` (the
//!   quantifier domains grow);
//! * the terminal-invention search pays one evaluation per candidate
//!   budget until the witness appears (Theorem 6.4's loop);
//! * the Example 6.2 halting search cost is linear in the witness step
//!   count for halting machines;
//! * flattening complex objects into `{[U,U,U,U]}` with invented
//!   surrogates (the Theorem 6.3 device) is linear in object size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uset_bench::unary;
use uset_calculus::{eval_terminal, eval_with_invention, CalcConfig, CalcQuery, CalcTerm, Formula};
use uset_core::halting::f_halt_terminal;
use uset_gtm::tm::always_halt_machine;
use uset_object::flatten::{flatten, unflatten, Inventor};
use uset_object::{Atom, RType};

fn all_atoms_query() -> CalcQuery {
    CalcQuery::new(
        "x",
        RType::Atomic,
        Formula::Eq(CalcTerm::var("x"), CalcTerm::var("x")),
    )
}

fn bench_invention_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm6/invention_budget");
    let db = unary(4);
    let q = all_atoms_query();
    let cfg = CalcConfig::default();
    for i in [0usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(i), &i, |b, _| {
            b.iter(|| black_box(eval_with_invention(&q, &db, i, &cfg).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_terminal_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm6.4/terminal_search");
    let q = all_atoms_query();
    let cfg = CalcConfig::default();
    for n in [2u64, 8, 32] {
        let db = unary(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(eval_terminal(&q, &db, 10, &cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_halting_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ex6.2/halting_search");
    let m = always_halt_machine();
    let c_atom = Atom::named("bench-halt-c");
    for n in [4u64, 16, 64] {
        let db = unary(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(f_halt_terminal(&m, &db, c_atom, 1000)))
        });
    }
    group.finish();
}

fn bench_flattening(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm6.3/flattening");
    for depth in [3usize, 6, 9] {
        let chain = uset_object::cons::ordinal_chain(Atom::new(0), depth);
        let v = chain.last().expect("non-empty chain").clone();
        group.bench_with_input(BenchmarkId::new("flatten", depth), &depth, |b, _| {
            b.iter(|| {
                let mut inv = Inventor::new();
                black_box(flatten(&v, &mut inv).rows.len())
            })
        });
        let mut inv = Inventor::new();
        let flat = flatten(&v, &mut inv);
        group.bench_with_input(BenchmarkId::new("unflatten", depth), &depth, |b, _| {
            b.iter(|| black_box(unflatten(flat.root, &flat.rows).unwrap().size()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_invention_budget,
    bench_terminal_search,
    bench_halting_search,
    bench_flattening
);
criterion_main!(benches);
