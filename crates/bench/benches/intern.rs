//! `ablation/intern_speedup` — the hash-consing pool knob (DESIGN.md §15).
//!
//! Two workloads where structural sharing changes the constant factor
//! without changing one observable byte (the `intern_diff` suite pins
//! that contract; here only wall-clock and pool counters may move):
//!
//! * `calc_nested_forall` — a powerset-heavy calculus query: the bound
//!   variable ranges over `{{U}}` while an inner `∀x : {{{U}}}` re-visits
//!   a 65 536-member domain per candidate. With the pool on, the
//!   domain-enumeration cache keys those members by id and enumerates
//!   once; with it off every candidate re-enumerates and re-compares
//!   tree-form. Expected ≥2×.
//! * `datalog_tc_path64_chain` — non-linear transitive closure on a
//!   64-node path whose vertices are depth-i singleton chains (the
//!   untyped-set integer encoding). The saturating fixpoint re-derives
//!   settled facts by the tens of thousands; the pooled engine skips
//!   each after an id probe while the plain engine pays materialize +
//!   deep-compare dedup. Expected ≥1.3×.
//!
//! The vendored criterion stand-in cannot interleave parameterized
//! runs or export machine-readable reports, and this ablation flips a
//! process-global knob between sides — so the harness below self-times
//! with `Instant` (alternating pooled/plain samples to cancel machine
//! drift, median of samples) and writes `BENCH_10.json` at the repo
//! root. One invocation produces both the human table and the JSON:
//!
//! ```text
//! cargo bench -p uset-bench --bench intern
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use uset_calculus::ast::{CalcQuery, CalcTerm, Formula};
use uset_calculus::eval::{enumerate_rtype, eval_query, CalcConfig};
use uset_deductive::datalog::{DatalogProgram, DlAtom, DlRule, DlTerm};
use uset_object::cons::singleton_chain;
use uset_object::rtype::RType;
use uset_object::{atom, intern, Atom, Database, Instance, Pool};

/// One interleaved pooled/plain measurement: medians over `samples`
/// alternating pairs (after one warmup run per mode), plus the pool
/// counter delta across the pooled samples.
struct Measurement {
    pooled_ms: f64,
    plain_ms: f64,
    intern_hits: u64,
    objects_interned: u64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.plain_ms / self.pooled_ms
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    xs[xs.len() / 2]
}

fn measure(label: &str, samples: usize, mut f: impl FnMut() -> usize) -> Measurement {
    // warmup: populate the pool/memo once and fault in both code paths,
    // so no sample pays one-time costs
    for on in [true, false] {
        intern::set_enabled(on);
        black_box(f());
    }
    let (mut pooled, mut plain) = (Vec::new(), Vec::new());
    let mut hits = 0u64;
    let mut interned = 0u64;
    for _ in 0..samples {
        for on in [true, false] {
            intern::set_enabled(on);
            let c0 = Pool::global().stats();
            let t = Instant::now();
            black_box(f());
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if on {
                let d = Pool::global().stats().delta_since(&c0);
                hits += d.intern_hits;
                interned += d.objects_interned;
                pooled.push(ms);
            } else {
                plain.push(ms);
            }
        }
    }
    intern::set_enabled(true);
    let m = Measurement {
        pooled_ms: median(pooled),
        plain_ms: median(plain),
        intern_hits: hits / samples as u64,
        objects_interned: interned / samples as u64,
    };
    println!(
        "ablation/intern_speedup/{label}/pooled        time: [{:.3} ms]  intern_hits={} interned={}",
        m.pooled_ms, m.intern_hits, m.objects_interned
    );
    println!(
        "ablation/intern_speedup/{label}/plain         time: [{:.3} ms]",
        m.plain_ms
    );
    println!(
        "ablation/intern_speedup/{label}/speedup       {:.2}x",
        m.speedup()
    );
    m
}

/// `s : {{U}}` such that `D(s) ∧ ∀x : {{{U}}}. ¬R(x)`, over R = two
/// atoms and D = all 16 members of `{{U}}` as unary rows. The inner
/// quantifier supplies the powerset blow-up (65 536-member domain,
/// re-enumerated per candidate without the pool's domain cache); the
/// `D(s)` probe keeps the pool's id sidecar on the membership path —
/// D is exactly at the sidecar threshold, so each probe answers by
/// interned id.
fn calc_nested_forall() -> Measurement {
    let nested2 = RType::Set(Box::new(RType::Set(Box::new(RType::Atomic))));
    let nested3 = RType::Set(Box::new(nested2.clone()));
    let q = CalcQuery::new(
        "s",
        nested2.clone(),
        Formula::Pred("D".into(), CalcTerm::var("s")).and(Formula::Forall(
            "x".into(),
            nested3,
            Box::new(Formula::Not(Box::new(Formula::Pred(
                "R".into(),
                CalcTerm::var("x"),
            )))),
        )),
    );
    let mut db = Database::empty();
    db.set("R", Instance::from_rows((0..2u64).map(|i| [atom(i)])));
    let cfg = CalcConfig::default();
    let atoms = db.adom();
    db.set(
        "D",
        Instance::from_values(enumerate_rtype(&nested2, &atoms, &cfg).unwrap()),
    );
    measure("calc_nested_forall", 3, || {
        eval_query(&q, &db, &cfg).unwrap().len()
    })
}

/// Non-linear TC on a 64-vertex path, vertices encoded as singleton
/// chains of depth i.
fn datalog_tc_path64_chain() -> Measurement {
    let v = DlTerm::var;
    let prog = DatalogProgram::new(vec![
        DlRule::new(
            DlAtom::new("T", vec![v("x"), v("y")]),
            vec![(true, DlAtom::new("E", vec![v("x"), v("y")]))],
        ),
        DlRule::new(
            DlAtom::new("T", vec![v("x"), v("z")]),
            vec![
                (true, DlAtom::new("T", vec![v("x"), v("y")])),
                (true, DlAtom::new("T", vec![v("y"), v("z")])),
            ],
        ),
    ]);
    let verts = singleton_chain(Atom::new(0), 64);
    let mut db = Database::empty();
    db.set(
        "E",
        Instance::from_rows((0..63).map(|i| [verts[i].clone(), verts[i + 1].clone()])),
    );
    measure("datalog_tc_path64_chain", 5, || {
        prog.eval_stratified_seminaive(&db, 1_000_000)
            .unwrap()
            .get("T")
            .len()
    })
}

fn json_entry(name: &str, m: &Measurement) -> String {
    format!(
        "  \"{name}\": {{\n    \"pooled_ms\": {:.3},\n    \"plain_ms\": {:.3},\n    \"speedup\": {:.2},\n    \"intern_hits\": {},\n    \"objects_interned\": {}\n  }}",
        m.pooled_ms,
        m.plain_ms,
        m.speedup(),
        m.intern_hits,
        m.objects_interned
    )
}

fn bench_intern_speedup(_c: &mut Criterion) {
    let calc = calc_nested_forall();
    let tc = datalog_tc_path64_chain();
    let json = format!(
        "{{\n  \"bench\": \"ablation/intern_speedup\",\n  \"invocation\": \"cargo bench -p uset-bench --bench intern\",\n{},\n{}\n}}\n",
        json_entry("calc_nested_forall", &calc),
        json_entry("datalog_tc_path64_chain", &tc)
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_intern_speedup);
criterion_main!(benches);
