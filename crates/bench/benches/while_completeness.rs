//! Theorem 4.1(b): `while` vs `powerset`, and the GTM compilation.
//!
//! Shapes this regenerates:
//! * while-TC is polynomial while powerset-TC is `2^(n²)` — the crossover
//!   is immediate and the powerset series stops at 3 nodes;
//! * the ordinal-chain index supply costs time quadratic-ish in length
//!   (each new element is the set of all previous ones);
//! * powerset *expressed by* while + untyped sets (no Powerset operator)
//!   tracks the native operator up to an algebraic constant;
//! * the compiled ALG+while simulation of a GTM pays a polynomial
//!   interpretation overhead over the direct GTM run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uset_algebra::derived::{chain_program_unrolled, tc_powerset_program, tc_while_program};
use uset_algebra::{eval_program, EvalConfig};
use uset_bench::{path_graph, unary};
use uset_core::gtm_to_alg::run_compiled;
use uset_core::powerset_via_while_program;
use uset_gtm::machines::swap_pairs_gtm;
use uset_gtm::query::run_gtm_query;
use uset_object::{atom, Database, Instance, Schema, Type};

fn bench_tc_while_vs_powerset(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm4.1b/tc_while_vs_powerset");
    let cfg = EvalConfig {
        fuel: 10_000_000,
        max_instance_len: 10_000_000,
    };
    for n in [2u64, 3, 4, 8, 16] {
        let db = path_graph(n);
        let w = tc_while_program("R");
        group.bench_with_input(BenchmarkId::new("while", n), &n, |b, _| {
            b.iter(|| black_box(eval_program(&w, &db, &cfg).unwrap().len()))
        });
        if n <= 3 {
            // 2^(n²) candidate relations: n = 4 would be 2^16 sets of pairs
            // through a triple unnest — the hyper-exponential wall itself
            let p = tc_powerset_program("R");
            group.bench_with_input(BenchmarkId::new("powerset", n), &n, |b, _| {
                b.iter(|| black_box(eval_program(&p, &db, &cfg).unwrap().len()))
            });
        }
    }
    group.finish();
}

fn bench_ordinal_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm4.1b/ordinal_chain");
    let cfg = EvalConfig::default();
    for len in [2usize, 4, 8, 16] {
        let prog = chain_program_unrolled("seed", len);
        let mut db = Database::empty();
        db.set("seed", Instance::from_values([atom(0)]));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(eval_program(&prog, &db, &cfg).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_powerset_native_vs_while(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm4.1b/powerset_native_vs_while");
    let cfg = EvalConfig {
        fuel: 1_000_000,
        max_instance_len: 1 << 20,
    };
    for n in [3u64, 5, 7] {
        let db = unary(n);
        let native = uset_algebra::Program::new(vec![uset_algebra::Stmt::assign(
            "ANS",
            uset_algebra::Expr::var("R").project([0]).powerset(),
        )]);
        let via_while_db = {
            // the while variant consumes bare elements
            let mut d = Database::empty();
            d.set("R", Instance::from_values((0..n).map(atom)));
            d
        };
        let via_while = powerset_via_while_program("R");
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            b.iter(|| black_box(eval_program(&native, &db, &cfg).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("while", n), &n, |b, _| {
            b.iter(|| black_box(eval_program(&via_while, &via_while_db, &cfg).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_gtm_direct_vs_compiled(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm4.1b/gtm_direct_vs_compiled");
    group.sample_size(10);
    let m = swap_pairs_gtm();
    let schema = Schema::flat([("R", 2)]);
    let target = Type::atomic_tuple(2);
    let cfg = EvalConfig {
        fuel: 100_000_000,
        max_instance_len: 10_000_000,
    };
    for n in [1u64, 2, 4] {
        let mut db = Database::empty();
        db.set(
            "R",
            Instance::from_rows((0..n).map(|i| [atom(2 * i), atom(2 * i + 1)])),
        );
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    run_gtm_query(&m, &db, &schema, &target, 10_000_000)
                        .unwrap()
                        .map(|i| i.len()),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("compiled_alg", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    run_compiled(&m, &db, &schema, &target, &cfg)
                        .unwrap()
                        .map(|i| i.len()),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tc_while_vs_powerset,
    bench_ordinal_chain,
    bench_powerset_native_vs_while,
    bench_gtm_direct_vs_compiled
);
criterion_main!(benches);
