//! Example 5.2 / Proposition 5.3: the BK "join" rule's cross-product
//! blow-up, and BK fixpoint scaling.
//!
//! Shapes this regenerates:
//! * the output of the Example 5.2 rule grows as `|π₁R₁| × |π₂R₂|` (a
//!   cross product) rather than as the join size — measured directly;
//! * principal-mode matching scales polynomially; exhaustive sub-object
//!   matching blows up with object width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uset_bk::eval::{eval_fixpoint, state_from, BindMode, BkConfig};
use uset_bk::{BkObject, BkProgram};

fn pair(a: &'static str, x: u64, b: &'static str, y: u64) -> BkObject {
    BkObject::tuple([(a, BkObject::atom(x)), (b, BkObject::atom(y))])
}

/// R1 with n tuples sharing no B values with R2 (join is empty; the BK
/// rule still derives the full cross product).
fn disjoint_state(n: u64) -> uset_bk::BkState {
    state_from([
        (
            "R1",
            (0..n)
                .map(|i| pair("A", i, "B", 1000 + i))
                .collect::<Vec<_>>(),
        ),
        (
            "R2",
            (0..n)
                .map(|i| pair("B", 2000 + i, "C", 3000 + i))
                .collect::<Vec<_>>(),
        ),
    ])
}

fn bench_join_rule_blowup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ex5.2/join_rule_blowup");
    let prog = BkProgram::join_rule();
    for n in [2u64, 4, 8, 16] {
        let st = disjoint_state(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let (out, _) = eval_fixpoint(&prog, &st, &BkConfig::default()).unwrap();
                // the join is empty, yet R holds ≥ n² ⊥-free cross tuples
                black_box(out["R"].len())
            })
        });
    }
    group.finish();
}

fn bench_bind_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ex5.2/bind_modes");
    let prog = BkProgram::join_rule();
    for n in [2u64, 4, 6] {
        let st = disjoint_state(n);
        for (name, mode) in [
            ("principal", BindMode::Principal),
            ("exhaustive", BindMode::Exhaustive),
        ] {
            let cfg = BkConfig {
                bind_mode: mode,
                max_facts: 10_000_000,
                ..BkConfig::default()
            };
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let (out, _) = eval_fixpoint(&prog, &st, &cfg).unwrap();
                    black_box(out["R"].len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_join_rule_blowup, bench_bind_modes);
criterion_main!(benches);
