//! Ablation benches for the design choices DESIGN.md §7 calls out:
//!
//! * naive vs semi-naive stratified DATALOG fixpoints (the evaluator
//!   design choice; identical results, different polynomial);
//! * naive vs semi-naive COL fixpoints (same ablation one level up, where
//!   deltas cover data-function membership as well as predicates) — work
//!   counters for one representative size are printed once so the timing
//!   numbers can be read against tuples actually derived;
//! * optimizer on/off for the Theorem 4.1(b) compiled programs (the gated
//!   mechanical code cleans up — measure the evaluation win);
//! * ordinal-chain (von Neumann, doubling size) vs singleton-nesting
//!   chain (linear size) — the index-supply representation choice that
//!   keeps the GTM simulation polynomial;
//! * analysis-driven optimizer (`uset-opt`) off vs on — dead/duplicate
//!   rule chaff stripped before evaluation, and the goal-directed
//!   magic-set query path against full-evaluate-then-filter (states
//!   asserted identical, derived tuples asserted at least halved);
//! * guard overhead — the same COL semi-naive fixpoint under an unlimited
//!   governor vs a fully budgeted one (steps + facts + value size + wall
//!   deadline); the governance layer must cost <5% on the hot loop;
//! * parallel speedup — the identical fixpoint at 1 vs N workers
//!   (`uset-par` round fan-out); states and `EvalStats` work counts are
//!   asserted bit-identical across widths before timing, so the only
//!   thing the width may move is wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uset_algebra::opt::optimize;
use uset_algebra::{eval_program, EvalConfig};
use uset_bench::path_graph;
use uset_core::gtm_to_alg::{compile_gtm, prepare_gtm_input};
use uset_deductive::col::ast::{ColLiteral, ColProgram, ColRule, ColTerm};
use uset_deductive::col::eval::{stratified_governed, stratified_with, ColConfig, ColStrategy};
use uset_deductive::datalog::{DatalogProgram, DlAtom, DlRule, DlTerm};
use uset_gtm::machines::swap_pairs_gtm;
use uset_guard::ckpt::Spec;
use uset_guard::{Budget, CkptConfig, Governor};
use uset_object::cons::{ordinal_chain, singleton_chain};
use uset_object::EvalStats;
use uset_object::{atom, Atom, Database, Instance, Schema, Value};
use uset_trace::TraceHandle;

fn tc_datalog() -> DatalogProgram {
    let v = DlTerm::var;
    DatalogProgram::new(vec![
        DlRule::new(
            DlAtom::new("T", vec![v("x"), v("y")]),
            vec![(true, DlAtom::new("E", vec![v("x"), v("y")]))],
        ),
        DlRule::new(
            DlAtom::new("T", vec![v("x"), v("z")]),
            vec![
                (true, DlAtom::new("E", vec![v("x"), v("y")])),
                (true, DlAtom::new("T", vec![v("y"), v("z")])),
            ],
        ),
    ])
}

fn bench_naive_vs_seminaive(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/naive_vs_seminaive");
    let prog = tc_datalog();
    for n in [8u64, 16, 24] {
        let mut db = Database::empty();
        db.set(
            "E",
            Instance::from_rows((0..n - 1).map(|i| [atom(i), atom(i + 1)])),
        );
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_stratified(&db, 1_000_000).unwrap().get("T").len()))
        });
        group.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    prog.eval_stratified_seminaive(&db, 1_000_000)
                        .unwrap()
                        .get("T")
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn tc_col() -> ColProgram {
    let v = ColTerm::var;
    ColProgram::new(vec![
        ColRule::pred(
            "T",
            vec![v("x"), v("y")],
            vec![ColLiteral::pred("E", vec![v("x"), v("y")])],
        ),
        ColRule::pred(
            "T",
            vec![v("x"), v("z")],
            vec![
                ColLiteral::pred("E", vec![v("x"), v("y")]),
                ColLiteral::pred("T", vec![v("y"), v("z")]),
            ],
        ),
    ])
}

fn bench_col_naive_vs_seminaive(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/col_naive_vs_seminaive");
    let prog = tc_col();
    let cfg = ColConfig::default();
    for n in [16u64, 32, 64] {
        let mut db = Database::empty();
        db.set(
            "E",
            Instance::from_rows((0..n - 1).map(|i| [atom(i), atom(i + 1)])),
        );
        if n == 64 {
            // one-off work counters so the timings can be read against
            // tuples actually derived
            let mut naive = EvalStats::default();
            let mut semi = EvalStats::default();
            stratified_with(&prog, &db, &cfg, ColStrategy::Naive, &mut naive).unwrap();
            stratified_with(&prog, &db, &cfg, ColStrategy::Seminaive, &mut semi).unwrap();
            println!("col tc path-{n} naive:     {naive}");
            println!("col tc path-{n} seminaive: {semi}");
        }
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    stratified_with(
                        &prog,
                        &db,
                        &cfg,
                        ColStrategy::Naive,
                        &mut EvalStats::default(),
                    )
                    .unwrap()
                    .pred("T")
                    .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    stratified_with(
                        &prog,
                        &db,
                        &cfg,
                        ColStrategy::Seminaive,
                        &mut EvalStats::default(),
                    )
                    .unwrap()
                    .pred("T")
                    .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_guard_overhead(c: &mut Criterion) {
    // the cost of resource governance itself: the identical COL semi-naive
    // TC fixpoint under an unlimited governor (checks compare against
    // infinity) vs one enforcing every budget axis, none of which trips
    let mut group = c.benchmark_group("ablation/guard_overhead");
    let prog = tc_col();
    let cfg = ColConfig::default();
    let unguarded = Governor::unlimited();
    let budgeted = Governor::new(
        Budget::unlimited()
            .with_steps(1_000_000)
            .with_facts(1_000_000)
            .with_value_size(1_000_000)
            .with_wall(std::time::Duration::from_secs(3600)),
    );
    for n in [32u64, 64] {
        let mut db = Database::empty();
        db.set(
            "E",
            Instance::from_rows((0..n - 1).map(|i| [atom(i), atom(i + 1)])),
        );
        for (label, governor) in [("unguarded", &unguarded), ("budgeted", &budgeted)] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        stratified_governed(
                            &prog,
                            &db,
                            &cfg,
                            ColStrategy::Seminaive,
                            governor,
                            &mut EvalStats::default(),
                        )
                        .unwrap()
                        .pred("T")
                        .len(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    // the cost of the tracing hooks when no tracer is attached: the
    // identical COL semi-naive TC fixpoint under a governor with tracing
    // off (every emit closure is skipped before being built) vs an
    // in-memory ring collector with full per-fact provenance; the
    // disabled case must cost <3% over the never-instrumented baseline
    // measured by ablation/guard_overhead/unguarded
    let mut group = c.benchmark_group("ablation/trace_overhead");
    let prog = tc_col();
    let cfg = ColConfig::default();
    assert!(!Governor::unlimited().trace.enabled());
    for n in [32u64, 64] {
        let mut db = Database::empty();
        db.set(
            "E",
            Instance::from_rows((0..n - 1).map(|i| [atom(i), atom(i + 1)])),
        );
        for enabled in [false, true] {
            let label = if enabled { "mem" } else { "disabled" };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    // a fresh ring per iteration so the collector never
                    // carries state between runs
                    let governor = if enabled {
                        Governor::unlimited().with_trace(TraceHandle::mem().0)
                    } else {
                        Governor::unlimited()
                    };
                    black_box(
                        stratified_governed(
                            &prog,
                            &db,
                            &cfg,
                            ColStrategy::Seminaive,
                            &governor,
                            &mut EvalStats::default(),
                        )
                        .unwrap()
                        .pred("T")
                        .len(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_ckpt_overhead(c: &mut Criterion) {
    // the cost of durable checkpointing: the identical DATALOG¬
    // semi-naive TC fixpoint with the knob off vs committing a snapshot
    // every 16 rounds (WAL deltas in between) into a temp directory; the
    // acceptance bar is <10% at every=16 on the path-64 closure
    let mut group = c.benchmark_group("ablation/ckpt_overhead");
    let prog = tc_datalog();
    let dir = std::env::temp_dir().join("uset-ckpt-bench");
    for n in [64u64] {
        let mut db = Database::empty();
        db.set(
            "E",
            Instance::from_rows((0..n - 1).map(|i| [atom(i), atom(i + 1)])),
        );
        for every in [0u64, 16] {
            let label = if every == 0 {
                "off".to_string()
            } else {
                format!("every{every}")
            };
            let ckpt = if every == 0 {
                CkptConfig::Off
            } else {
                CkptConfig::Spec(Spec::new(&dir).with_every(every))
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let governor = Governor::unlimited().with_ckpt_config(ckpt.clone());
                    black_box(
                        prog.eval_stratified_seminaive_governed(
                            &db,
                            &governor,
                            &mut EvalStats::default(),
                        )
                        .unwrap()
                        .get("T")
                        .len(),
                    )
                })
            });
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

/// A set-heavy COL program: TC plus reachability *sets* built by a
/// data-function membership head, plus tuples materializing those sets as
/// values. Each round's phase 1 is dominated by set-valued work — the COL
/// analogue of the powerset stress, kept finite by the path topology.
fn setheavy_col() -> ColProgram {
    let v = ColTerm::var;
    let mut rules = tc_col().rules;
    rules.push(ColRule::func_member(
        "F",
        vec![v("x")],
        v("y"),
        vec![ColLiteral::pred("T", vec![v("x"), v("y")])],
    ));
    rules.push(ColRule::pred(
        "P",
        vec![ColTerm::Tuple(vec![
            v("x"),
            ColTerm::Apply("F".into(), vec![v("x")]),
        ])],
        vec![ColLiteral::pred("E", vec![v("x"), v("y")])],
    ));
    ColProgram::new(rules)
}

/// Parallel fixpoint ablation: wall-clock at widths 1/2/4/8 over
/// *verified-identical* work (the one-off asserts below fail the whole
/// bench if any width changes the final state or the `EvalStats`
/// counters). Interpreting the numbers requires the printed core count:
/// speedup is bounded by `min(workers, cores)` and by how fat each
/// round's delta is — path graphs maximize round *count* (good for the
/// parity check) at the cost of per-round width, so on few-core hosts
/// the per-round fan-out cost can fully absorb the gain.
fn bench_par_speedup(c: &mut Criterion) {
    use uset_par::ParConfig;
    let mut group = c.benchmark_group("ablation/par_speedup");
    group.sample_size(10);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("par_speedup host parallelism: {cores} core(s)");

    // path-256 transitive closure, DATALOG¬ semi-naive rounds
    let prog = tc_datalog();
    let mut db = Database::empty();
    db.set(
        "E",
        Instance::from_rows((0..255u64).map(|i| [atom(i), atom(i + 1)])),
    );
    // one-off: widths must not change the state or the work counters —
    // the bench compares wall-clock for *identical* work
    let mut seq_stats = EvalStats::default();
    let seq = prog
        .eval_stratified_seminaive_governed(&db, &Governor::unlimited(), &mut seq_stats)
        .unwrap();
    for verify_width in [2usize, 4] {
        let gov = Governor::unlimited().with_par(ParConfig::workers(verify_width));
        let mut stats = EvalStats::default();
        let par = prog
            .eval_stratified_seminaive_governed(&db, &gov, &mut stats)
            .unwrap();
        assert_eq!(par, seq, "state differs at width {verify_width}");
        assert_eq!(
            stats, seq_stats,
            "work counters differ at width {verify_width}"
        );
    }
    println!("datalog tc path-256 work (any width): {seq_stats}");
    for workers in [1usize, 2, 4, 8] {
        let governor = Governor::unlimited().with_par(ParConfig::workers(workers));
        group.bench_with_input(
            BenchmarkId::new("datalog_tc_path256", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    black_box(
                        prog.eval_stratified_seminaive_governed(
                            &db,
                            &governor,
                            &mut EvalStats::default(),
                        )
                        .unwrap()
                        .get("T")
                        .len(),
                    )
                })
            },
        );
    }

    // set-heavy COL fixpoint (reachability sets via data functions)
    let col_prog = setheavy_col();
    let col_cfg = ColConfig::default();
    let mut db = Database::empty();
    db.set(
        "E",
        Instance::from_rows((0..95u64).map(|i| [atom(i), atom(i + 1)])),
    );
    let mut seq_stats = EvalStats::default();
    let seq = stratified_governed(
        &col_prog,
        &db,
        &col_cfg,
        ColStrategy::Seminaive,
        &Governor::unlimited(),
        &mut seq_stats,
    )
    .unwrap();
    {
        let gov = Governor::unlimited().with_par(ParConfig::workers(4));
        let mut stats = EvalStats::default();
        let par = stratified_governed(
            &col_prog,
            &db,
            &col_cfg,
            ColStrategy::Seminaive,
            &gov,
            &mut stats,
        )
        .unwrap();
        assert_eq!(par, seq, "col state differs at width 4");
        assert_eq!(stats, seq_stats, "col work counters differ at width 4");
    }
    println!("col set-heavy path-96 work (any width): {seq_stats}");
    for workers in [1usize, 2, 4, 8] {
        let governor = Governor::unlimited().with_par(ParConfig::workers(workers));
        group.bench_with_input(
            BenchmarkId::new("col_setheavy_path96", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    black_box(
                        stratified_governed(
                            &col_prog,
                            &db,
                            &col_cfg,
                            ColStrategy::Seminaive,
                            &governor,
                            &mut EvalStats::default(),
                        )
                        .unwrap()
                        .pred("T")
                        .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_optimizer_on_compiled_program(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/optimizer");
    group.sample_size(10);
    let m = swap_pairs_gtm();
    let raw = compile_gtm(&m);
    let optimized = optimize(&raw);
    let schema = Schema::flat([("R", 2)]);
    let mut db = Database::empty();
    db.set(
        "R",
        Instance::from_rows([[atom(1), atom(2)], [atom(3), atom(4)]]),
    );
    let orders: Vec<Vec<Value>> = vec![db.get("R").iter().cloned().collect()];
    let input = prepare_gtm_input(&db, &schema, &orders).unwrap();
    let cfg = EvalConfig {
        fuel: 100_000_000,
        max_instance_len: 1_000_000,
    };
    group.bench_function("raw", |b| {
        b.iter(|| black_box(eval_program(&raw, &input, &cfg).unwrap().len()))
    });
    group.bench_function("optimized", |b| {
        b.iter(|| black_box(eval_program(&optimized, &input, &cfg).unwrap().len()))
    });
    group.finish();
}

/// Analysis-driven optimizer ablation (`uset-opt`, DESIGN.md §12): the
/// same DATALOG¬ fixpoint with `USET_OPT` off vs on, on a program
/// carrying the chaff the optimizer exists to strip (an α-equivalent
/// duplicate of the recursive rule and a rule over a provably empty
/// relation), plus the goal-directed magic-set path against
/// full-evaluate-then-filter. One-off asserts pin the contract before
/// timing: identical final states, and the magic query deriving at most
/// half the tuples of the full evaluation — the numbers EXPERIMENTS.md
/// reports.
fn bench_opt_speedup(c: &mut Criterion) {
    use uset_guard::OptConfig;
    use uset_opt::{eval_stratified_seminaive, query_datalog, Goal};
    let mut group = c.benchmark_group("ablation/opt_speedup");
    group.sample_size(10);

    // chaff program: TC + α-duplicate recursive rule + dead rule
    let v = DlTerm::var;
    let mut rules = tc_datalog().rules;
    rules.push(DlRule::new(
        DlAtom::new("T", vec![v("p"), v("q")]),
        vec![
            (true, DlAtom::new("E", vec![v("p"), v("r")])),
            (true, DlAtom::new("T", vec![v("r"), v("q")])),
        ],
    ));
    rules.push(DlRule::new(
        DlAtom::new("Dead", vec![v("x")]),
        vec![
            (true, DlAtom::new("T", vec![v("x"), v("y")])),
            (true, DlAtom::new("Never", vec![v("y")])),
        ],
    ));
    let chaff = DatalogProgram::new(rules);
    let off = Governor::unlimited().with_opt(OptConfig::Off);
    let on = Governor::unlimited().with_opt(OptConfig::On);
    for n in [32u64, 64] {
        let mut db = Database::empty();
        db.set(
            "E",
            Instance::from_rows((0..n).map(|i| [atom(i), atom(i + 1)])),
        );
        // one-off: the knob must not change the state, only the work
        let mut s_off = EvalStats::default();
        let mut s_on = EvalStats::default();
        let r_off = eval_stratified_seminaive(&chaff, &db, &off, &mut s_off).unwrap();
        let r_on = eval_stratified_seminaive(&chaff, &db, &on, &mut s_on).unwrap();
        assert_eq!(r_off, r_on, "USET_OPT changed the final state");
        assert!(s_on.tuples_derived <= s_off.tuples_derived);
        if n == 64 {
            println!("datalog tc+chaff path-{n} USET_OPT=off: {s_off}");
            println!("datalog tc+chaff path-{n} USET_OPT=on:  {s_on}");
        }
        for (label, governor) in [("unopt", &off), ("opt", &on)] {
            group.bench_with_input(BenchmarkId::new(format!("chaff_{label}"), n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        eval_stratified_seminaive(&chaff, &db, governor, &mut EvalStats::default())
                            .unwrap()
                            .get("T")
                            .len(),
                    )
                })
            });
        }
    }

    // goal-directed: "who reaches the last node" on a path — the bound
    // second argument lets the magic transformation restrict derivation
    // to the single relevant column
    let prog = tc_datalog();
    for n in [64u64, 128] {
        let mut db = Database::empty();
        db.set(
            "E",
            Instance::from_rows((0..n).map(|i| [atom(i), atom(i + 1)])),
        );
        let goal = Goal::new("T", vec![None, Some(Value::Atom(Atom::new(n)))]);
        let unlimited = Governor::unlimited();
        // one-off: same rows, at most half the derived tuples
        let mut full_stats = EvalStats::default();
        let full = prog
            .eval_stratified_seminaive_governed(&db, &unlimited, &mut full_stats)
            .unwrap();
        let mut magic_stats = EvalStats::default();
        let answer = query_datalog(&prog, &db, &goal, &unlimited, &mut magic_stats).unwrap();
        assert_eq!(answer.len() as u64, n, "goal answer row count");
        assert!(
            magic_stats.tuples_derived * 2 <= full_stats.tuples_derived,
            "magic must at least halve derived tuples: {} vs {}",
            magic_stats.tuples_derived,
            full_stats.tuples_derived
        );
        if n == 128 {
            println!("datalog tc path-{n} full eval:   {full_stats}");
            println!("datalog tc path-{n} magic query: {magic_stats}");
            println!(
                "magic derived-tuple reduction: {:.1}x",
                full_stats.tuples_derived as f64 / magic_stats.tuples_derived.max(1) as f64
            );
        }
        group.bench_with_input(BenchmarkId::new("full_eval_filter", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    prog.eval_stratified_seminaive_governed(
                        &db,
                        &unlimited,
                        &mut EvalStats::default(),
                    )
                    .unwrap()
                    .get("T")
                    .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("magic_query", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    query_datalog(&prog, &db, &goal, &unlimited, &mut EvalStats::default())
                        .unwrap()
                        .len(),
                )
            })
        });
        let _ = full;
    }
    group.finish();
}

/// Incremental view maintenance ablation (`uset-ivm`, DESIGN.md §14): a
/// long-lived [`uset_ivm::DatalogSession`] absorbing a 1-edge retraction
/// (then the matching re-insertion, so the session is steady across
/// iterations) vs from-scratch re-evaluation after each delta, on the
/// path-128 transitive closure. One-off asserts pin the contract before
/// timing: the maintained state is bit-identical to recomputing on the
/// updated EDB, and maintenance derives at least 5× fewer tuples than
/// the from-scratch engine — the numbers EXPERIMENTS.md reports.
fn bench_ivm_speedup(c: &mut Criterion) {
    use uset_ivm::{DatalogSession, DeltaBatch, IvmMode, Semantics};
    let mut group = c.benchmark_group("ablation/ivm_speedup");
    group.sample_size(10);
    let prog = tc_datalog();
    let n = 128u64;
    let mut db = Database::empty();
    db.set(
        "E",
        Instance::from_rows((0..n - 1).map(|i| [atom(i), atom(i + 1)])),
    );
    let tail = Value::Tuple(vec![atom(n - 2), atom(n - 1)]);
    let retract = DeltaBatch::new().retract("E", tail.clone());
    let insert = DeltaBatch::new().insert("E", tail.clone());
    let gov = Governor::unlimited();

    // one-off: maintained ≡ recomputed, at ≥5× fewer derived tuples
    let mut sess = DatalogSession::with_mode(
        prog.clone(),
        &db,
        Semantics::StratifiedSeminaive,
        &gov,
        IvmMode::Auto,
    )
    .unwrap();
    let maintain = sess.apply(&retract).unwrap();
    assert!(!maintain.fallback, "path TC must maintain incrementally");
    let mut recompute_stats = EvalStats::default();
    let fresh =
        uset_opt::eval_stratified_seminaive(&prog, sess.edb(), &gov, &mut recompute_stats).unwrap();
    assert_eq!(
        sess.state(),
        &fresh,
        "maintained state differs from recompute"
    );
    println!("ivm tc path-{n} retract-1 maintain:  {}", maintain.stats);
    println!("ivm tc path-{n} retract-1 recompute: {recompute_stats}");
    println!(
        "ivm derived-tuple reduction: {:.1}x",
        recompute_stats.tuples_derived as f64 / maintain.stats.tuples_derived.max(1) as f64
    );
    assert!(
        maintain.stats.tuples_derived * 5 <= recompute_stats.tuples_derived,
        "maintenance must derive at least 5x fewer tuples: {} vs {}",
        maintain.stats.tuples_derived,
        recompute_stats.tuples_derived
    );
    sess.apply(&insert).unwrap();

    // timing: one retract+insert round-trip per iteration, session vs
    // two from-scratch evaluations (one per delta, as a recompute-only
    // engine would pay)
    group.bench_function("maintain_path128", |b| {
        b.iter(|| {
            sess.apply(&retract).unwrap();
            black_box(sess.apply(&insert).unwrap().idb_added)
        })
    });
    let mut db_short = db.clone();
    db_short.remove_row("E", &tail);
    group.bench_function("recompute_path128", |b| {
        b.iter(|| {
            let short = uset_opt::eval_stratified_seminaive(
                &prog,
                &db_short,
                &gov,
                &mut EvalStats::default(),
            )
            .unwrap();
            let full =
                uset_opt::eval_stratified_seminaive(&prog, &db, &gov, &mut EvalStats::default())
                    .unwrap();
            black_box(short.get("T").len() + full.get("T").len())
        })
    });
    group.finish();
}

fn bench_chain_representations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/chain_representation");
    for len in [8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::new("von_neumann", len), &len, |b, &l| {
            b.iter(|| black_box(ordinal_chain(Atom::new(0), l).last().unwrap().size()))
        });
        group.bench_with_input(BenchmarkId::new("singleton", len), &len, |b, &l| {
            b.iter(|| black_box(singleton_chain(Atom::new(0), l).last().unwrap().size()))
        });
    }
    group.finish();
}

fn bench_while_flattening_overhead(c: &mut Criterion) {
    // the Theorem 4.1(b)(iii) transformation is semantics-preserving but
    // pays a constant interpretive factor per gated statement — measure it
    let mut group = c.benchmark_group("ablation/while_flattening");
    let nested = uset_algebra::derived::tc_while_program("R");
    let flat = uset_algebra::flatten_while::flatten_to_single_while(&nested).unwrap();
    let cfg = EvalConfig::default();
    for n in [6u64, 12] {
        let db = path_graph(n);
        group.bench_with_input(BenchmarkId::new("nested_form", n), &n, |b, _| {
            b.iter(|| black_box(eval_program(&nested, &db, &cfg).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("flattened_form", n), &n, |b, _| {
            b.iter(|| black_box(eval_program(&flat, &db, &cfg).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_naive_vs_seminaive,
    bench_col_naive_vs_seminaive,
    bench_guard_overhead,
    bench_trace_overhead,
    bench_ckpt_overhead,
    bench_par_speedup,
    bench_optimizer_on_compiled_program,
    bench_opt_speedup,
    bench_ivm_speedup,
    bench_chain_representations,
    bench_while_flattening_overhead
);
criterion_main!(benches);
