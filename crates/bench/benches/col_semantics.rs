//! Theorem 5.1: COL with untyped sets under both semantics.
//!
//! Shapes this regenerates:
//! * stratified and inflationary evaluation coincide in cost and result on
//!   positive programs (on flat DATALOG¬ the two semantics differ in
//!   *power*; with untyped sets they coincide — Theorem 5.1);
//! * the history-keeping COL simulation of a GTM (Theorem 5.1) pays a
//!   higher polynomial overhead than the in-place algebra simulation
//!   (Theorem 4.1b) on the same machine — the cost of stratification
//!   without negation;
//! * the guarded chain rules supply indices at quadratic-ish cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uset_bench::path_graph;
use uset_core::gtm_to_alg::run_compiled;
use uset_core::gtm_to_col::run_col_compiled;
use uset_deductive::chain::{chain_rules, singleton_chain};
use uset_deductive::col::ast::{ColLiteral, ColProgram, ColRule, ColTerm};
use uset_deductive::col::eval::{inflationary, stratified, ColConfig};
use uset_gtm::machines::swap_pairs_gtm;
use uset_object::{atom, Atom, Database, Instance, Schema, Type};

fn tc_prog() -> ColProgram {
    let v = ColTerm::var;
    ColProgram::new(vec![
        ColRule::pred(
            "T",
            vec![v("x"), v("y")],
            vec![ColLiteral::pred("R", vec![v("x"), v("y")])],
        ),
        ColRule::pred(
            "T",
            vec![v("x"), v("z")],
            vec![
                ColLiteral::pred("R", vec![v("x"), v("y")]),
                ColLiteral::pred("T", vec![v("y"), v("z")]),
            ],
        ),
    ])
}

fn bench_stratified_vs_inflationary(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm5.1/stratified_vs_inflationary");
    let cfg = ColConfig::default();
    let prog = tc_prog();
    for n in [4u64, 8, 12] {
        let db = path_graph(n);
        group.bench_with_input(BenchmarkId::new("stratified", n), &n, |b, _| {
            b.iter(|| black_box(stratified(&prog, &db, &cfg).unwrap().pred("T").len()))
        });
        group.bench_with_input(BenchmarkId::new("inflationary", n), &n, |b, _| {
            b.iter(|| black_box(inflationary(&prog, &db, &cfg).unwrap().pred("T").len()))
        });
    }
    group.finish();
}

fn bench_chain_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm5.1/chain_rules");
    let cfg = ColConfig::default();
    for len in [4usize, 8, 16] {
        let seed = Atom::new(0);
        let allowed: Instance = singleton_chain(seed, len).into_iter().collect();
        let rules = chain_rules(
            "F",
            seed,
            vec![ColLiteral::pred("Allowed", vec![ColTerm::var("u")])],
        );
        let prog = ColProgram::new(rules);
        let mut db = Database::empty();
        db.set("Allowed", allowed);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| {
                black_box(
                    stratified(&prog, &db, &cfg)
                        .unwrap()
                        .func("F", &[uset_object::atom(0)])
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_history_vs_inplace_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm5.1/history_vs_inplace");
    group.sample_size(10);
    let m = swap_pairs_gtm();
    let schema = Schema::flat([("R", 2)]);
    let target = Type::atomic_tuple(2);
    for n in [1u64, 2] {
        let mut db = Database::empty();
        db.set(
            "R",
            Instance::from_rows((0..n).map(|i| [atom(2 * i), atom(2 * i + 1)])),
        );
        let alg_cfg = uset_algebra::EvalConfig {
            fuel: 100_000_000,
            max_instance_len: 10_000_000,
        };
        let col_cfg = ColConfig {
            max_rounds: 100_000,
            max_facts: 10_000_000,
        };
        group.bench_with_input(BenchmarkId::new("alg_inplace", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    run_compiled(&m, &db, &schema, &target, &alg_cfg)
                        .unwrap()
                        .map(|i| i.len()),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("col_history", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    run_col_compiled(&m, &db, &schema, &target, &col_cfg)
                        .unwrap()
                        .map(|i| i.len()),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stratified_vs_inflationary,
    bench_chain_rules,
    bench_history_vs_inplace_simulation
);
criterion_main!(benches);
