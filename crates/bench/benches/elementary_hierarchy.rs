//! Theorem 2.2 / Theorem 4.1(a): the elementary hierarchy.
//!
//! Each level of set nesting multiplies cost by an exponential: enumerating
//! `cons_T(X)` for `T = {…{U}…}` of depth k over n atoms costs
//! `hyp_k(n)`-ish. The series below regenerate that shape: runtime per
//! (depth, n) cell should grow hyper-exponentially in depth, and the
//! relaxed-mode (untyped) algebra should track the typed algebra on
//! identical programs (Theorem 4.1(a): ALG ≡ tsALG).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uset_algebra::{eval_program, EvalConfig, Expr, Program, Stmt};
use uset_bench::unary;
use uset_object::cons::cons_type;
use uset_object::{Atom, Type};

fn bench_cons_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm2.2/cons_depth");
    for depth in [0usize, 1, 2] {
        for n in [2u64, 3, 4] {
            // depth 2 over n=4 already enumerates 2^16 nested sets
            let atoms: std::collections::BTreeSet<Atom> = (0..n).map(Atom::new).collect();
            let ty = Type::nested_set(depth);
            group.bench_with_input(BenchmarkId::new(format!("depth{depth}"), n), &n, |b, _| {
                b.iter(|| black_box(cons_type(&ty, &atoms, 1 << 22).unwrap().len()))
            });
        }
    }
    group.finish();
}

fn bench_powerset_chain(c: &mut Criterion) {
    // powerset applied k times in the algebra: the operator behind the
    // E-hierarchy (one extra level per application)
    let mut group = c.benchmark_group("thm2.2/powerset_chain");
    for k in [1usize, 2] {
        for n in [2u64, 3, 4] {
            let mut expr = Expr::var("R").project([0]);
            for _ in 0..k {
                expr = expr.powerset();
            }
            let prog = Program::new(vec![Stmt::assign("ANS", expr)]);
            let db = unary(n);
            let cfg = EvalConfig {
                fuel: 1_000_000,
                max_instance_len: 1 << 22,
            };
            group.bench_with_input(BenchmarkId::new(format!("powerset^{k}"), n), &n, |b, _| {
                b.iter(|| black_box(eval_program(&prog, &db, &cfg).unwrap().len()))
            });
        }
    }
    group.finish();
}

fn bench_typed_vs_relaxed_mode(c: &mut Criterion) {
    // Theorem 4.1(a): the same while-free program over typed vs
    // heterogeneous intermediates — the relaxed evaluation pays no
    // asymptotic penalty (both are the same engine; the bench documents
    // the constant factor of heterogeneous unions)
    let mut group = c.benchmark_group("thm4.1a/typed_vs_relaxed");
    for n in [8u64, 16, 32] {
        let typed = Program::new(vec![Stmt::assign(
            "ANS",
            Expr::var("R").product(Expr::var("R")).project([0, 3]),
        )]);
        let relaxed = Program::new(vec![
            Stmt::assign("H", Expr::var("R").union(Expr::var("R").project([0]))),
            Stmt::assign(
                "ANS",
                Expr::var("H").product(Expr::var("H")).project([0, 1]),
            ),
        ]);
        let db = uset_bench::path_graph(n);
        let cfg = EvalConfig::default();
        group.bench_with_input(BenchmarkId::new("typed", n), &n, |b, _| {
            b.iter(|| black_box(eval_program(&typed, &db, &cfg).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("relaxed", n), &n, |b, _| {
            b.iter(|| black_box(eval_program(&relaxed, &db, &cfg).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cons_depth,
    bench_powerset_chain,
    bench_typed_vs_relaxed_mode
);
criterion_main!(benches);
