//! Shared workload generators for the benchmark harness.
//!
//! Each bench target regenerates the *shape* of one of the paper's results
//! (the paper reports no numbers — its "evaluation" is a set of theorems;
//! EXPERIMENTS.md maps each result to its bench group and records what we
//! measure).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uset_object::{atom, Database, Instance};

/// A deterministic RNG for reproducible workloads.
pub fn rng() -> StdRng {
    StdRng::seed_from_u64(0x5eed_cafe)
}

/// A path graph `0 → 1 → … → n−1` as relation `R`.
pub fn path_graph(n: u64) -> Database {
    let mut db = Database::empty();
    db.set(
        "R",
        Instance::from_rows((0..n.saturating_sub(1)).map(|i| [atom(i), atom(i + 1)])),
    );
    db
}

/// A random graph over `n` nodes with `edges` edges as relation `R`.
pub fn random_graph(n: u64, edges: usize) -> Database {
    let mut r = rng();
    let mut inst = Instance::empty();
    while inst.len() < edges {
        let a = r.gen_range(0..n);
        let b = r.gen_range(0..n);
        inst.insert(uset_object::tuple([atom(a), atom(b)]));
    }
    let mut db = Database::empty();
    db.set("R", inst);
    db
}

/// A unary relation of `n` atoms as relation `R`.
pub fn unary(n: u64) -> Database {
    let mut db = Database::empty();
    db.set("R", Instance::from_rows((0..n).map(|i| [atom(i)])));
    db
}

/// A binary relation of `n` random pairs as relation `R`.
pub fn random_pairs(n: u64) -> Database {
    let mut r = rng();
    let mut inst = Instance::empty();
    while inst.len() < n as usize {
        let a: u64 = r.gen_range(0..1_000);
        let b: u64 = r.gen_range(0..1_000);
        inst.insert(uset_object::tuple([atom(a), atom(b)]));
    }
    let mut db = Database::empty();
    db.set("R", inst);
    db
}
