//! The invention semantics of Section 6.
//!
//! For a query `Q` and database `d`:
//!
//! * `Q|ⁱ[d]` — evaluate under the limited interpretation with the active
//!   domain extended by `i` *invented* atoms ([`eval_with_invention`]);
//! * `Q|_i[d]` — `Q|ⁱ[d]` with objects containing invented values deleted
//!   ([`strip_invented`] composed with the above);
//! * finite invention `Q^fi[d] = ⋃_{0≤i<ω} Q|_i[d]` — r.e. but not
//!   computable in general; [`eval_fi`] computes the union up to a budget
//!   (exactly the approximation Example 6.2 exploits);
//! * countable invention `Q^ci[d] = Q|_ω[d]` — not even r.e.; only its
//!   finite-budget approximations are computable (Theorem 6.1), see
//!   DESIGN.md §5;
//! * **terminal invention** `Q^ti[d]` — `Q|_n[d]` for the least `n` such
//!   that `Q|ⁿ[d]` contains an invented value, `?` if there is no such `n`
//!   ([`eval_terminal`]). The paper's Theorem 6.4 shows this semantics is
//!   exactly C-equivalent; unlike fi/ci it needs no budget beyond the
//!   search cap for the (decidable-per-n) witness test.

use crate::ast::CalcQuery;
use crate::eval::{eval_query_over, extended_adom, CalcConfig, CalcError};
use std::collections::BTreeSet;
use std::time::Instant;
use uset_guard::ckpt;
use uset_guard::trace::span::{engine_end, engine_start};
use uset_guard::trace::TraceEvent;
use uset_guard::{EngineId, Governor, Guard, Trip};
use uset_object::flatten::Inventor;
use uset_object::{intern, Atom, Database, EvalStats, Instance};
use uset_par::try_par_map;

/// Engine label carried by every invention trace event. Rounds are
/// invention levels: `RoundStart::delta` is the level index `i`, and
/// `RoundEnd::delta` is what level `i` added to the accumulated answer.
const ENGINE: &str = "calculus";

/// What an interrupted invention enumeration surrenders: the union of the
/// stripped per-level answers over the invention levels that ran to
/// completion. Each `Q|_i[d]` is computed atomically, so the snapshot is
/// always a finite under-approximation of `Q^fi[d]` (for [`eval_fi`]) or
/// of the levels searched so far (for [`eval_terminal`], where no witness
/// had been found yet).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InventionPartial {
    /// Union of `Q|_i[d]` over completed levels `i < levels_done`.
    pub union: Instance,
    /// Number of invention levels that completed before the trip.
    pub levels_done: usize,
}

fn exhaust(trip: Trip, union: Instance, levels_done: usize, stats: EvalStats) -> CalcError {
    CalcError::Exhausted(Box::new(uset_guard::Exhausted::new(
        trip,
        InventionPartial { union, levels_done },
        stats,
    )))
}

/// The loop state a calculus checkpoint restores. For [`eval_fi`] this is
/// the next invention level plus the union over completed levels; for
/// [`eval_terminal`] only the next candidate level (the search
/// accumulates nothing before its witness, so `union` stays empty). A
/// `next` past the cap marks "search complete, crash landed before
/// cleanup".
struct CalcResume {
    next: usize,
    union: Instance,
}

fn calc_fingerprint(kind: &str, q: &CalcQuery, cap: usize, db: &Database) -> u64 {
    let mut e = ckpt::Enc::new();
    e.put_str(ENGINE);
    e.put_str(kind);
    e.put_str(&format!("{q:?}"));
    e.put_u64(cap as u64);
    e.put_database(db);
    ckpt::fnv64(&e.finish())
}

fn calc_encode(next: usize, union: &Instance) -> Vec<u8> {
    let mut e = ckpt::Enc::new();
    e.put_u64(next as u64);
    e.put_instance(union);
    e.finish()
}

fn calc_decode(payload: &[u8]) -> Option<CalcResume> {
    let mut d = ckpt::Dec::new(payload);
    let next = d.u64().ok()? as usize;
    let union = d.instance().ok()?;
    d.done().then_some(CalcResume { next, union })
}

fn calc_open_ckpt(
    guard: &mut Guard,
    stats: &mut EvalStats,
    kind: &str,
    q: &CalcQuery,
    cap: usize,
    db: &Database,
) -> (Option<ckpt::Session>, Option<CalcResume>) {
    let mut session = guard.ckpt_session(calc_fingerprint(kind, q, cap, db));
    let mut resume = None;
    if let Some(sess) = session.as_mut() {
        if let Some(rec) = sess.recover() {
            if let Some(r) = calc_decode(&rec.payload) {
                guard.adopt_recovery(&rec, stats);
                resume = Some(r);
            }
        }
    }
    (session, resume)
}

/// Deterministically produce `i` invented atoms (disjoint from workload
/// atoms and named constants; recognized by [`Inventor::is_invented`]).
pub fn invented_atoms(i: usize) -> Vec<Atom> {
    let mut inv = Inventor::new();
    (0..i).map(|_| inv.fresh()).collect()
}

/// `Q|ⁱ[d]`: evaluate with the active domain extended by `i` invented
/// atoms. The result may mention invented atoms.
pub fn eval_with_invention(
    q: &CalcQuery,
    db: &Database,
    i: usize,
    config: &CalcConfig,
) -> Result<Instance, CalcError> {
    let mut atoms: BTreeSet<Atom> = extended_adom(q, db);
    atoms.extend(invented_atoms(i));
    eval_query_over(q, db, &atoms, config)
}

/// Delete objects containing invented values (the `Q|_i` step). With the
/// pool enabled the per-object test reads the cached `invented` bit off
/// the interned node instead of materializing `adom()`.
pub fn strip_invented(inst: &Instance) -> Instance {
    inst.iter()
        .filter(|v| !intern::fast_has_invented(v))
        .cloned()
        .collect()
}

/// `⋃_{0 ≤ i ≤ budget} Q|_i[d]` — the finite-invention semantics,
/// truncated at `budget`. The true `Q^fi` is the limit as the budget grows
/// (r.e., not computable); callers observe convergence by increasing the
/// budget.
pub fn eval_fi(
    q: &CalcQuery,
    db: &Database,
    budget: usize,
    config: &CalcConfig,
) -> Result<Instance, CalcError> {
    eval_fi_governed(q, db, budget, config, &Governor::new(config.budget()))
}

/// [`eval_fi`] under a [`Governor`]: each invention level is one step, and
/// a trip mid-enumeration surrenders the union over the completed levels
/// (an under-approximation of `Q^fi[d]`) instead of discarding it.
pub fn eval_fi_governed(
    q: &CalcQuery,
    db: &Database,
    budget: usize,
    config: &CalcConfig,
    governor: &Governor,
) -> Result<Instance, CalcError> {
    let mut guard = governor.guard(EngineId::Calculus);
    let trace = governor.trace.clone();
    let run_start = engine_start(ENGINE, &trace);
    let mut stats = EvalStats::default();
    let mut out = Instance::empty();
    let (mut session, resume) = calc_open_ckpt(&mut guard, &mut stats, "fi", q, budget, db);
    let mut level = 0usize;
    if let Some(r) = resume {
        level = r.next;
        out = r.union;
    }
    let workers = guard.workers();
    while level <= budget {
        let (levels, level_cfg) = level_chunk(level, budget - level + 1, workers, config);
        let raws = match try_par_map(workers, &levels, |_, &i| {
            eval_with_invention(q, db, i, &level_cfg)
        }) {
            Ok(raws) => raws,
            Err(_panic) => {
                // a speculative level panicked on a worker: the pool
                // drained cleanly; the union of fully-completed levels is
                // still a sound under-approximation, so surrender it
                return Err(exhaust(guard.panic_trip(), out, level, stats));
            }
        };
        for (i, raw) in levels.iter().copied().zip(raws) {
            // the guard is consulted in the exact sequential order, so a
            // trip lands on the same level at every width; speculative
            // evals past the trip are simply dropped
            if let Err(trip) = level_step(&mut guard, &mut stats, out.len()) {
                return Err(exhaust(trip, out, i, stats));
            }
            let round = guard.steps();
            let round_t0 = trace.enabled().then(Instant::now);
            trace.emit(|| TraceEvent::RoundStart {
                engine: ENGINE.into(),
                round,
                delta: i as u64,
            });
            let raw = raw?;
            stats.tuples_derived += raw.len() as u64;
            let before = out.len();
            out.absorb(strip_invented(&raw));
            let added = (out.len() - before) as u64;
            let facts = out.len() as u64;
            if let Err(trip) = guard.check_value(out.len(), None) {
                // the union itself blew the size cap: the last
                // fully-completed level is i, and the (oversized) union is
                // still a sound under-approximation, so surrender it
                stats.rounds += 1;
                stats.observe_facts(out.len());
                return Err(exhaust(trip, out, i + 1, stats));
            }
            stats.rounds += 1;
            stats.observe_facts(out.len());
            let value_hwm = guard.value_hwm() as u64;
            trace.emit(|| TraceEvent::RoundEnd {
                engine: ENGINE.into(),
                round,
                delta: added,
                facts,
                value_hwm,
                wall_micros: round_t0.map_or(0, |t| t.elapsed().as_micros() as u64),
            });
            if let Some(sess) = session.as_mut() {
                sess.commit(&guard.round_ckpt(round, &stats, calc_encode(i + 1, &out)));
            }
        }
        level += levels.len();
    }
    engine_end(ENGINE, &trace, guard.steps(), run_start);
    if let Some(sess) = session.as_mut() {
        sess.finish();
    }
    Ok(out)
}

/// The next chunk of invention levels to evaluate speculatively, plus the
/// per-level config. With several levels left, the levels themselves are
/// the candidate space: up to `workers` of them evaluate concurrently
/// (each level sequential inside — the level fan-out already fills the
/// pool). With a single level left or a sequential policy, the level runs
/// alone and its `cons_T(X)` enumerations are split instead. Either way
/// each `Q|ⁱ[d]` is a pure function of `i`, so results are independent of
/// the split.
fn level_chunk(
    start: usize,
    remaining: usize,
    workers: usize,
    config: &CalcConfig,
) -> (Vec<usize>, CalcConfig) {
    if workers > 1 && remaining > 1 {
        let chunk = workers.min(remaining);
        (
            (start..start + chunk).collect(),
            CalcConfig {
                workers: 1,
                ..*config
            },
        )
    } else {
        (
            vec![start],
            CalcConfig {
                workers: workers.max(config.workers),
                ..*config
            },
        )
    }
}

/// Charge one invention level against the guard (a step plus a
/// cooperative checkpoint for cancellation/deadline).
fn level_step(guard: &mut Guard, stats: &mut EvalStats, current: usize) -> Result<(), Trip> {
    stats.observe_facts(current);
    guard.step()
}

/// Outcome of terminal-invention evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InventionOutcome {
    /// `Q|_n[d]` for the least `n` whose raw output contains an invented
    /// value.
    Defined {
        /// The terminal `n`.
        n: usize,
        /// The answer.
        answer: Instance,
    },
    /// No `n ≤ cap` produced an invented value: the paper's `?` (up to the
    /// search cap, which makes the r.e. search finite).
    Undefined,
}

/// `Q^ti[d]` — terminal invention, searching `n = 0, 1, …, cap`.
pub fn eval_terminal(
    q: &CalcQuery,
    db: &Database,
    cap: usize,
    config: &CalcConfig,
) -> Result<InventionOutcome, CalcError> {
    eval_terminal_governed(q, db, cap, config, &Governor::new(config.budget()))
}

/// [`eval_terminal`] under a [`Governor`]: each candidate `n` is one step.
/// A trip mid-search reports how many levels were ruled out (the partial
/// union is empty — terminal invention accumulates nothing until its
/// witness level).
pub fn eval_terminal_governed(
    q: &CalcQuery,
    db: &Database,
    cap: usize,
    config: &CalcConfig,
    governor: &Governor,
) -> Result<InventionOutcome, CalcError> {
    let mut guard = governor.guard(EngineId::Calculus);
    let trace = governor.trace.clone();
    let run_start = engine_start(ENGINE, &trace);
    let mut stats = EvalStats::default();
    let (mut session, resume) = calc_open_ckpt(&mut guard, &mut stats, "terminal", q, cap, db);
    let workers = guard.workers();
    let mut next = 0usize;
    if let Some(r) = resume {
        next = r.next;
    }
    while next <= cap {
        let (levels, level_cfg) = level_chunk(next, cap - next + 1, workers, config);
        let raws = match try_par_map(workers, &levels, |_, &n| {
            eval_with_invention(q, db, n, &level_cfg)
        }) {
            Ok(raws) => raws,
            Err(_panic) => {
                // a speculative level panicked on a worker: the pool
                // drained cleanly; `next` levels were ruled out so far
                return Err(exhaust(guard.panic_trip(), Instance::empty(), next, stats));
            }
        };
        for (n, raw) in levels.iter().copied().zip(raws) {
            // as in [`eval_fi_governed`]: guard order is sequential, and a
            // witness found mid-chunk discards the later speculative levels
            // exactly as the sequential search never runs them
            if let Err(trip) = guard.step() {
                return Err(exhaust(trip, Instance::empty(), n, stats));
            }
            let round = guard.steps();
            let round_t0 = trace.enabled().then(Instant::now);
            trace.emit(|| TraceEvent::RoundStart {
                engine: ENGINE.into(),
                round,
                delta: n as u64,
            });
            let raw = raw?;
            stats.rounds += 1;
            stats.tuples_derived += raw.len() as u64;
            stats.observe_facts(raw.len());
            let facts = raw.len() as u64;
            let value_hwm = guard.value_hwm() as u64;
            trace.emit(|| TraceEvent::RoundEnd {
                engine: ENGINE.into(),
                round,
                delta: 0,
                facts,
                value_hwm,
                wall_micros: round_t0.map_or(0, |t| t.elapsed().as_micros() as u64),
            });
            let has_invented = raw.iter().any(intern::fast_has_invented);
            if has_invented {
                engine_end(ENGINE, &trace, guard.steps(), run_start);
                if let Some(sess) = session.as_mut() {
                    sess.finish();
                }
                return Ok(InventionOutcome::Defined {
                    n,
                    answer: strip_invented(&raw),
                });
            }
            // only ruled-out levels commit: the witness level is
            // re-searched on resume and recharges identically
            if let Some(sess) = session.as_mut() {
                sess.commit(&guard.round_ckpt(
                    round,
                    &stats,
                    calc_encode(n + 1, &Instance::empty()),
                ));
            }
        }
        next += levels.len();
    }
    engine_end(ENGINE, &trace, guard.steps(), run_start);
    if let Some(sess) = session.as_mut() {
        sess.finish();
    }
    Ok(InventionOutcome::Undefined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CalcTerm, Formula};
    use uset_object::{atom, Instance, RType, Value};

    fn unary_db(atoms: &[u64]) -> Database {
        let mut db = Database::empty();
        db.set("R", Instance::from_values(atoms.iter().map(|&a| atom(a))));
        db
    }

    /// `{ x/U | x ≈ x }` — the all-atoms query; under invention it sees the
    /// invented atoms too.
    fn all_atoms_query() -> CalcQuery {
        CalcQuery::new(
            "x",
            RType::Atomic,
            Formula::Eq(CalcTerm::var("x"), CalcTerm::var("x")),
        )
    }

    #[test]
    fn invention_extends_the_domain() {
        let db = unary_db(&[1, 2]);
        let q = all_atoms_query();
        let cfg = CalcConfig::default();
        let q0 = eval_with_invention(&q, &db, 0, &cfg).unwrap();
        assert_eq!(q0.len(), 2);
        let q3 = eval_with_invention(&q, &db, 3, &cfg).unwrap();
        assert_eq!(q3.len(), 5);
        // stripping recovers the base output
        assert_eq!(strip_invented(&q3), q0);
    }

    #[test]
    fn fi_union_is_monotone_in_budget() {
        let db = unary_db(&[1]);
        let q = all_atoms_query();
        let cfg = CalcConfig::default();
        let f0 = eval_fi(&q, &db, 0, &cfg).unwrap();
        let f2 = eval_fi(&q, &db, 2, &cfg).unwrap();
        assert!(f0.is_subset(&f2));
        // for this query the stripped output never grows with i
        assert_eq!(f0, f2);
    }

    #[test]
    fn terminal_invention_defined_at_one() {
        // the all-atoms query mentions an invented atom as soon as i = 1,
        // so Q^ti = Q|_1 = adom
        let db = unary_db(&[1, 2]);
        let q = all_atoms_query();
        match eval_terminal(&q, &db, 5, &CalcConfig::default()).unwrap() {
            InventionOutcome::Defined { n, answer } => {
                assert_eq!(n, 1);
                assert_eq!(answer, Instance::from_values([atom(1), atom(2)]));
            }
            InventionOutcome::Undefined => panic!("expected defined"),
        }
    }

    #[test]
    fn terminal_invention_undefined_for_domain_bound_query() {
        // { x/U | R(x) } never outputs an invented value — Q^ti = ?
        let db = unary_db(&[1]);
        let q = CalcQuery::new(
            "x",
            RType::Atomic,
            Formula::Pred("R".into(), CalcTerm::var("x")),
        );
        assert_eq!(
            eval_terminal(&q, &db, 5, &CalcConfig::default()).unwrap(),
            InventionOutcome::Undefined
        );
    }

    #[test]
    fn terminal_invention_with_conditional_witness() {
        // { x/U | R(x) ∨ ¬∃y/U R(y) } — outputs invented atoms exactly
        // when R is empty: Q^ti is defined (empty answer) on empty R and
        // undefined otherwise. This shows ti queries can *selectively*
        // diverge, the mechanism behind Theorem 6.4's C-completeness.
        let q = CalcQuery::new(
            "x",
            RType::Atomic,
            Formula::Pred("R".into(), CalcTerm::var("x")).or(Formula::Pred(
                "R".into(),
                CalcTerm::var("y"),
            )
            .exists("y", RType::Atomic)
            .not()),
        );
        let cfg = CalcConfig::default();
        let empty = unary_db(&[]);
        match eval_terminal(&q, &empty, 5, &cfg).unwrap() {
            InventionOutcome::Defined { n, answer } => {
                assert_eq!(n, 1);
                assert!(answer.is_empty());
            }
            InventionOutcome::Undefined => panic!("expected defined on empty R"),
        }
        let nonempty = unary_db(&[1]);
        assert_eq!(
            eval_terminal(&q, &nonempty, 5, &cfg).unwrap(),
            InventionOutcome::Undefined
        );
    }

    #[test]
    fn fi_budget_trips_with_partial_union() {
        let db = unary_db(&[1, 2]);
        let q = all_atoms_query();
        let cfg = CalcConfig::default();
        let gov = Governor::new(uset_guard::Budget::unlimited().with_steps(2));
        let err = eval_fi_governed(&q, &db, 10, &cfg, &gov).unwrap_err();
        let e = err.exhausted().expect("budget trip");
        assert_eq!(e.engine(), EngineId::Calculus);
        assert_eq!(e.resource(), uset_guard::Resource::Steps);
        // levels 0 and 1 completed; their stripped union is the base answer
        assert_eq!(e.partial.levels_done, 2);
        assert_eq!(
            e.partial.union,
            eval_fi(&q, &db, 1, &cfg).expect("unbudgeted prefix")
        );
        assert_eq!(e.stats.rounds, 2);
    }

    #[test]
    fn terminal_search_cancelled_by_failpoint() {
        // a query that never invents, so the search would run to the cap
        let db = unary_db(&[1]);
        let q = CalcQuery::new(
            "x",
            RType::Atomic,
            Formula::Pred("R".into(), CalcTerm::var("x")),
        );
        let cfg = CalcConfig::default();
        let gov = Governor::new(cfg.budget()).with_failpoint(uset_guard::FailPoint::cancel_at(2));
        let err = eval_terminal_governed(&q, &db, 5, &cfg, &gov).unwrap_err();
        let e = err.exhausted().expect("cancellation trip");
        assert_eq!(e.resource(), uset_guard::Resource::Cancelled);
        // exactly one level was ruled out before the cancel landed
        assert_eq!(e.partial.levels_done, 1);
        assert!(e.partial.union.is_empty());
    }

    #[test]
    fn parallel_fi_matches_sequential_exactly() {
        let db = unary_db(&[1, 2, 3]);
        let q = all_atoms_query();
        let cfg = CalcConfig::default();
        let seq = eval_fi(&q, &db, 6, &cfg).unwrap();
        for workers in [2, 4, 7] {
            let gov = Governor::new(cfg.budget()).with_par(uset_par::ParConfig::workers(workers));
            let par = eval_fi_governed(&q, &db, 6, &cfg, &gov).unwrap();
            assert_eq!(par, seq, "workers {workers}");
        }
    }

    #[test]
    fn parallel_fi_trips_on_the_same_level_with_identical_partial() {
        let db = unary_db(&[1, 2]);
        let q = all_atoms_query();
        let cfg = CalcConfig::default();
        let budget = || uset_guard::Budget::unlimited().with_steps(2);
        let seq_err = eval_fi_governed(&q, &db, 10, &cfg, &Governor::new(budget())).unwrap_err();
        let seq = seq_err.exhausted().expect("sequential trip");
        for workers in [2, 4] {
            let gov = Governor::new(budget()).with_par(uset_par::ParConfig::workers(workers));
            let err = eval_fi_governed(&q, &db, 10, &cfg, &gov).unwrap_err();
            let e = err.exhausted().expect("parallel trip");
            // the guard is stepped in sequential order inside the chunk
            // fold, so the trip level, partial union, and stats are
            // bit-identical to the sequential run
            assert_eq!(e.resource(), uset_guard::Resource::Steps);
            assert_eq!(e.partial, seq.partial, "workers {workers}");
            assert_eq!(e.stats, seq.stats, "workers {workers}");
        }
    }

    #[test]
    fn parallel_terminal_matches_sequential_in_both_outcomes() {
        let cfg = CalcConfig::default();
        // defined at n = 1: a witness mid-chunk discards the speculative tail
        let db = unary_db(&[1, 2]);
        let q = all_atoms_query();
        let seq = eval_terminal(&q, &db, 5, &cfg).unwrap();
        assert!(matches!(seq, InventionOutcome::Defined { n: 1, .. }));
        // undefined: the whole search space is chunked through
        let bound_q = CalcQuery::new(
            "x",
            RType::Atomic,
            Formula::Pred("R".into(), CalcTerm::var("x")),
        );
        let seq_undef = eval_terminal(&bound_q, &db, 5, &cfg).unwrap();
        assert_eq!(seq_undef, InventionOutcome::Undefined);
        for workers in [2, 4] {
            let gov =
                || Governor::new(cfg.budget()).with_par(uset_par::ParConfig::workers(workers));
            assert_eq!(
                eval_terminal_governed(&q, &db, 5, &cfg, &gov()).unwrap(),
                seq,
                "workers {workers}"
            );
            assert_eq!(
                eval_terminal_governed(&bound_q, &db, 5, &cfg, &gov()).unwrap(),
                seq_undef,
                "workers {workers}"
            );
        }
    }

    #[test]
    fn parallel_terminal_failpoint_cancels_on_the_same_level() {
        // `terminal_search_cancelled_by_failpoint` at width 4: guard.step()
        // is called once per level in level order regardless of width, so
        // the cancel lands on the same level as the sequential run
        let db = unary_db(&[1]);
        let q = CalcQuery::new(
            "x",
            RType::Atomic,
            Formula::Pred("R".into(), CalcTerm::var("x")),
        );
        let cfg = CalcConfig::default();
        let gov = Governor::new(cfg.budget())
            .with_failpoint(uset_guard::FailPoint::cancel_at(2))
            .with_par(uset_par::ParConfig::workers(4));
        let err = eval_terminal_governed(&q, &db, 5, &cfg, &gov).unwrap_err();
        let e = err.exhausted().expect("cancellation trip");
        assert_eq!(e.resource(), uset_guard::Resource::Cancelled);
        assert_eq!(e.partial.levels_done, 1);
        assert!(e.partial.union.is_empty());
    }

    #[test]
    fn invented_atoms_are_disjoint_and_recognized() {
        let inv = invented_atoms(4);
        let distinct: std::collections::BTreeSet<_> = inv.iter().collect();
        assert_eq!(distinct.len(), 4);
        for a in &inv {
            assert!(uset_object::flatten::Inventor::is_invented(*a));
        }
        // deterministic across calls (the semantics is a function of i)
        assert_eq!(invented_atoms(4), inv);
    }

    #[test]
    fn strip_removes_nested_invented_values() {
        let inv = invented_atoms(1)[0];
        let inst = Instance::from_values([
            atom(1),
            Value::Set([Value::Atom(inv)].into_iter().collect()),
            uset_object::tuple([atom(2), Value::Atom(inv)]),
        ]);
        assert_eq!(strip_invented(&inst), Instance::from_values([atom(1)]));
    }
}
