//! Limited-interpretation evaluation of calculus queries.
//!
//! Quantifiers range over the constructive domain of their annotation
//! relative to the *extended active domain* `adom(d, Q)` (input atoms plus
//! the query's constants — plus any invented atoms supplied by the
//! invention semantics of [`crate::invention`]). For strict types the
//! constructive domain is finite but hyper-exponential in the set-nesting
//! depth; for rtypes mentioning `Obj` it is infinite and we enumerate it
//! bounded by construction size ([`CalcConfig::obj_size_bound`]) — the
//! documented substitution for the provably non-computable full semantics.

use crate::ast::{CalcQuery, CalcTerm, Formula};
use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;
use uset_object::cons::{cons_obj_bounded, cons_type_par};
use uset_object::{intern, Atom, Database, Instance, ObjectError, RType, Value};

/// Evaluation bounds.
#[derive(Clone, Copy, Debug)]
pub struct CalcConfig {
    /// Cap on any single constructive-domain enumeration.
    pub cons_limit: usize,
    /// Size bound for enumerating `cons_Obj` (rtypes mentioning `Obj`).
    pub obj_size_bound: usize,
    /// Worker threads for splitting `cons_T(X)` candidate spaces
    /// (`1` = sequential; the enumeration order is identical at every
    /// width). The governed invention loops set this from their
    /// [`uset_guard::Governor`]'s parallelism policy; direct callers can
    /// pin it explicitly.
    pub workers: usize,
}

impl Default for CalcConfig {
    fn default() -> Self {
        CalcConfig {
            cons_limit: 1 << 20,
            obj_size_bound: 4,
            workers: 1,
        }
    }
}

impl CalcConfig {
    /// The [`uset_guard::Budget`] equivalent of this config's knobs:
    /// `cons_limit` caps the size of any single enumerated domain or
    /// per-level answer, so it maps to `max_value_size`. `obj_size_bound`
    /// is a structural bound on object construction, not a resource limit,
    /// and stays out of the budget.
    pub fn budget(&self) -> uset_guard::Budget {
        uset_guard::Budget::unlimited().with_value_size(self.cons_limit)
    }
}

/// The calculus engine's exhaustion report (see
/// [`crate::invention::InventionPartial`] for the snapshot the invention
/// loops surrender).
pub type CalcExhausted = uset_guard::Exhausted<crate::invention::InventionPartial>;

/// Evaluation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CalcError {
    /// A constructive domain exceeded [`CalcConfig::cons_limit`].
    DomainTooLarge(String),
    /// A free variable was not the query variable.
    UnboundVariable(String),
    /// A resource budget was exhausted or the run was cancelled during an
    /// invention enumeration; carries the union accumulated over the
    /// completed invention levels.
    Exhausted(Box<CalcExhausted>),
}

impl CalcError {
    /// The exhaustion report, if this is a budget/cancellation error.
    pub fn exhausted(&self) -> Option<&CalcExhausted> {
        match self {
            CalcError::Exhausted(e) => Some(e),
            _ => None,
        }
    }
}

impl std::fmt::Display for CalcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalcError::DomainTooLarge(what) => {
                write!(f, "constructive domain too large: {what}")
            }
            CalcError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            CalcError::Exhausted(e) => write!(f, "calculus evaluation exhausted: {e}"),
        }
    }
}

impl std::error::Error for CalcError {}

/// Enumerate `cons_T(atoms)` for an rtype under the config bounds.
pub fn enumerate_rtype(
    ty: &RType,
    atoms: &BTreeSet<Atom>,
    config: &CalcConfig,
) -> Result<Vec<Value>, CalcError> {
    if let Some(strict) = ty.to_type() {
        cons_type_par(&strict, atoms, config.cons_limit, config.workers).map_err(describe)
    } else {
        // rtype mentions Obj: enumerate all bounded objects, filter to the
        // rtype (bounded stand-in for the infinite domain)
        let all =
            cons_obj_bounded(atoms, config.obj_size_bound, config.cons_limit).map_err(describe)?;
        Ok(all.into_iter().filter(|v| ty.contains(v)).collect())
    }
}

fn describe(e: ObjectError) -> CalcError {
    CalcError::DomainTooLarge(e.to_string())
}

/// Quantifier loops rebind the same variable once per (often deeply
/// nested) domain element; holding `Rc<Value>` makes each rebind a
/// pointer bump instead of a deep tree clone.
type Bindings = HashMap<String, Rc<Value>>;

/// Per-evaluation memo of quantifier domains, keyed by annotation rtype.
/// Within one [`eval_query_over`] the atom universe is fixed, so a
/// quantifier nested under `k` enclosing binding loops re-enumerates the
/// *identical* (often exponential) constructive domain once per
/// enclosing combination — the memo collapses that to once per rtype.
/// Active only while the `USET_INTERN` layer is on, so the knob cleanly
/// isolates every representation/caching change; with it off the
/// pre-caching enumeration behavior is preserved exactly.
#[derive(Default)]
struct DomainCache {
    domains: HashMap<RType, Rc<Vec<Rc<Value>>>>,
}

impl DomainCache {
    /// The quantifier domain for `ty`, memoized when interning is on.
    fn domain(
        &mut self,
        ty: &RType,
        atoms: &BTreeSet<Atom>,
        config: &CalcConfig,
    ) -> Result<Rc<Vec<Rc<Value>>>, CalcError> {
        let wrap = |vs: Vec<Value>| Rc::new(vs.into_iter().map(Rc::new).collect());
        if !intern::enabled() {
            return Ok(wrap(enumerate_rtype(ty, atoms, config)?));
        }
        if let Some(d) = self.domains.get(ty) {
            return Ok(Rc::clone(d));
        }
        let d = wrap(enumerate_rtype(ty, atoms, config)?);
        self.domains.insert(ty.clone(), Rc::clone(&d));
        Ok(d)
    }
}

/// Evaluate a term to a value, borrowing when the term is a variable or
/// constant — the atomic formulas only need `&Value` to compare or
/// probe, so a `Var` probe must not re-materialize the (possibly huge)
/// bound object. Only constructed terms allocate.
fn eval_term<'a>(t: &'a CalcTerm, b: &'a Bindings) -> Result<Cow<'a, Value>, CalcError> {
    match t {
        CalcTerm::Var(v) => b
            .get(v)
            .map(|rc| Cow::Borrowed(rc.as_ref()))
            .ok_or_else(|| CalcError::UnboundVariable(v.clone())),
        CalcTerm::Const(c) => Ok(Cow::Borrowed(c)),
        CalcTerm::Tuple(ts) => Ok(Cow::Owned(Value::Tuple(
            ts.iter()
                .map(|t| eval_term(t, b).map(Cow::into_owned))
                .collect::<Result<_, _>>()?,
        ))),
        CalcTerm::SetEnum(ts) => Ok(Cow::Owned(Value::Set(
            ts.iter()
                .map(|t| eval_term(t, b).map(Cow::into_owned))
                .collect::<Result<_, _>>()?,
        ))),
    }
}

fn eval_formula(
    f: &Formula,
    db: &Database,
    atoms: &BTreeSet<Atom>,
    b: &mut Bindings,
    config: &CalcConfig,
    cache: &mut DomainCache,
) -> Result<bool, CalcError> {
    match f {
        Formula::Eq(x, y) => Ok(eval_term(x, b)? == eval_term(y, b)?),
        Formula::Member(x, y) => {
            let xv = eval_term(x, b)?;
            let yv = eval_term(y, b)?;
            Ok(yv.as_set().is_some_and(|s| s.contains(xv.as_ref())))
        }
        Formula::Pred(p, t) => {
            let v = eval_term(t, b)?;
            // borrow the relation — an absent one reads empty, exactly
            // like the owning `get`, without cloning the instance per test
            Ok(db.get_ref(p).is_some_and(|rel| rel.contains(v.as_ref())))
        }
        Formula::And(x, y) => Ok(eval_formula(x, db, atoms, b, config, cache)?
            && eval_formula(y, db, atoms, b, config, cache)?),
        Formula::Or(x, y) => Ok(eval_formula(x, db, atoms, b, config, cache)?
            || eval_formula(y, db, atoms, b, config, cache)?),
        Formula::Not(g) => Ok(!eval_formula(g, db, atoms, b, config, cache)?),
        Formula::Exists(x, ty, g) => {
            let domain = cache.domain(ty, atoms, config)?;
            let saved = b.get(x).cloned();
            let mut found = false;
            for v in domain.iter() {
                b.insert(x.clone(), Rc::clone(v));
                if eval_formula(g, db, atoms, b, config, cache)? {
                    found = true;
                    break;
                }
            }
            restore(b, x, saved);
            Ok(found)
        }
        Formula::Forall(x, ty, g) => {
            let domain = cache.domain(ty, atoms, config)?;
            let saved = b.get(x).cloned();
            let mut all = true;
            for v in domain.iter() {
                b.insert(x.clone(), Rc::clone(v));
                if !eval_formula(g, db, atoms, b, config, cache)? {
                    all = false;
                    break;
                }
            }
            restore(b, x, saved);
            Ok(all)
        }
    }
}

fn restore(b: &mut Bindings, x: &str, saved: Option<Rc<Value>>) {
    match saved {
        Some(v) => {
            b.insert(x.to_owned(), v);
        }
        None => {
            b.remove(x);
        }
    }
}

/// The extended active domain `adom(d, Q)`: input atoms plus the query's
/// constants.
pub fn extended_adom(q: &CalcQuery, db: &Database) -> BTreeSet<Atom> {
    let mut atoms = db.adom();
    atoms.extend(q.formula.const_atoms());
    atoms
}

/// Evaluate `{x/T | φ}` under the limited interpretation with the given
/// atom universe (normally [`extended_adom`]; the invention semantics pass
/// an enlarged universe).
pub fn eval_query_over(
    q: &CalcQuery,
    db: &Database,
    atoms: &BTreeSet<Atom>,
    config: &CalcConfig,
) -> Result<Instance, CalcError> {
    let candidates = enumerate_rtype(&q.ty, atoms, config)?;
    let mut out = Instance::empty();
    let mut b = Bindings::new();
    let mut cache = DomainCache::default();
    for v in candidates {
        let rc = Rc::new(v);
        b.insert(q.var.clone(), Rc::clone(&rc));
        let pass = eval_formula(&q.formula, db, atoms, &mut b, config, &mut cache)?;
        // drop the binding before unwrapping: quantifier save/restore
        // keeps `b` balanced, so `rc` is the sole owner again here
        b.remove(&q.var);
        if pass {
            out.insert(Rc::try_unwrap(rc).expect("candidate binding released"));
        }
    }
    Ok(out)
}

/// Evaluate under the limited interpretation (`Q|₀[d]` in the §6
/// notation).
pub fn eval_query(
    q: &CalcQuery,
    db: &Database,
    config: &CalcConfig,
) -> Result<Instance, CalcError> {
    let atoms = extended_adom(q, db);
    eval_query_over(q, db, &atoms, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_object::{atom, set, tuple, Type};

    fn pair_db(rows: &[(u64, u64)]) -> Database {
        let mut db = Database::empty();
        db.set(
            "R",
            Instance::from_rows(rows.iter().map(|&(a, b)| [atom(a), atom(b)])),
        );
        db
    }

    fn t_u() -> RType {
        RType::Atomic
    }

    fn t_uu() -> RType {
        Type::atomic_tuple(2).to_rtype()
    }

    #[test]
    fn identity_query() {
        let db = pair_db(&[(1, 2), (3, 4)]);
        let q = CalcQuery::new("t", t_uu(), Formula::Pred("R".into(), CalcTerm::var("t")));
        let out = eval_query(&q, &db, &CalcConfig::default()).unwrap();
        assert_eq!(out, db.get("R"));
    }

    #[test]
    fn projection_via_tuple_terms() {
        // { x/U | ∃y/U R([x,y]) }
        let db = pair_db(&[(1, 2), (3, 4)]);
        let q = CalcQuery::new(
            "x",
            t_u(),
            Formula::Pred(
                "R".into(),
                CalcTerm::Tuple(vec![CalcTerm::var("x"), CalcTerm::var("y")]),
            )
            .exists("y", t_u()),
        );
        let out = eval_query(&q, &db, &CalcConfig::default()).unwrap();
        assert_eq!(out, Instance::from_values([atom(1), atom(3)]));
    }

    #[test]
    fn join_via_shared_variable() {
        // { t/[U,U] | ∃x y z: t ≈ [x,z] ∧ R([x,y]) ∧ R([y,z]) }
        let db = pair_db(&[(1, 2), (2, 3)]);
        let body = Formula::Eq(
            CalcTerm::var("t"),
            CalcTerm::Tuple(vec![CalcTerm::var("x"), CalcTerm::var("z")]),
        )
        .and(Formula::Pred(
            "R".into(),
            CalcTerm::Tuple(vec![CalcTerm::var("x"), CalcTerm::var("y")]),
        ))
        .and(Formula::Pred(
            "R".into(),
            CalcTerm::Tuple(vec![CalcTerm::var("y"), CalcTerm::var("z")]),
        ))
        .exists("z", t_u())
        .exists("y", t_u())
        .exists("x", t_u());
        let q = CalcQuery::new("t", t_uu(), body);
        let out = eval_query(&q, &db, &CalcConfig::default()).unwrap();
        assert_eq!(out, Instance::from_values([tuple([atom(1), atom(3)])]));
    }

    #[test]
    fn negation_is_active_domain_complement() {
        // { x/U | ¬∃y/U R([x,y]) } — atoms with no outgoing edge
        let db = pair_db(&[(1, 2)]);
        let q = CalcQuery::new(
            "x",
            t_u(),
            Formula::Pred(
                "R".into(),
                CalcTerm::Tuple(vec![CalcTerm::var("x"), CalcTerm::var("y")]),
            )
            .exists("y", t_u())
            .not(),
        );
        let out = eval_query(&q, &db, &CalcConfig::default()).unwrap();
        assert_eq!(out, Instance::from_values([atom(2)]));
    }

    #[test]
    fn set_typed_quantifier_ranges_over_powerset() {
        // { s/{U} | ∀x/U (x ∈ s → ∃y/U R([x,y])) } — all subsets of the
        // "sources" set; over adom {1,2} with R={(1,2)} the sources are {1},
        // so the answer is {{}, {1}}
        let db = pair_db(&[(1, 2)]);
        let member_implies = Formula::Member(CalcTerm::var("x"), CalcTerm::var("s"))
            .not()
            .or(Formula::Pred(
                "R".into(),
                CalcTerm::Tuple(vec![CalcTerm::var("x"), CalcTerm::var("y")]),
            )
            .exists("y", t_u()));
        let q = CalcQuery::new(
            "s",
            RType::Set(Box::new(RType::Atomic)),
            member_implies.forall("x", t_u()),
        );
        let out = eval_query(&q, &db, &CalcConfig::default()).unwrap();
        assert_eq!(
            out,
            Instance::from_values([Value::empty_set(), set([atom(1)])])
        );
    }

    #[test]
    fn cons_splitting_workers_do_not_change_answers() {
        // same query as `set_typed_quantifier_ranges_over_powerset`, with
        // the powerset enumeration split across workers: the answer (and
        // its canonical order) must be identical at every width
        let db = pair_db(&[(1, 2)]);
        let member_implies = Formula::Member(CalcTerm::var("x"), CalcTerm::var("s"))
            .not()
            .or(Formula::Pred(
                "R".into(),
                CalcTerm::Tuple(vec![CalcTerm::var("x"), CalcTerm::var("y")]),
            )
            .exists("y", t_u()));
        let q = CalcQuery::new(
            "s",
            RType::Set(Box::new(RType::Atomic)),
            member_implies.forall("x", t_u()),
        );
        let seq = eval_query(&q, &db, &CalcConfig::default()).unwrap();
        for workers in [2, 4, 7] {
            let cfg = CalcConfig {
                workers,
                ..CalcConfig::default()
            };
            assert_eq!(eval_query(&q, &db, &cfg).unwrap(), seq, "workers {workers}");
        }
    }

    #[test]
    fn constants_extend_the_domain() {
        // { x/U | x ≈ c } over an empty database still finds c
        let c = Atom::named("calc-c");
        let q = CalcQuery::new(
            "x",
            t_u(),
            Formula::Eq(CalcTerm::var("x"), CalcTerm::cst(Value::Atom(c))),
        );
        let out = eval_query(&q, &Database::empty(), &CalcConfig::default()).unwrap();
        assert_eq!(out, Instance::from_values([Value::Atom(c)]));
    }

    #[test]
    fn untyped_quantifier_is_bounded() {
        // { x/U | ∃s/{Obj} (x ∈ s) } — with any non-empty bounded cons_Obj
        // every atom is in some set, so this is the active domain
        let db = pair_db(&[(1, 2)]);
        let q = CalcQuery::new(
            "x",
            t_u(),
            Formula::Member(CalcTerm::var("x"), CalcTerm::var("s"))
                .exists("s", RType::untyped_set()),
        );
        let cfg = CalcConfig {
            obj_size_bound: 3,
            ..CalcConfig::default()
        };
        let out = eval_query(&q, &db, &cfg).unwrap();
        assert_eq!(out, Instance::from_values([atom(1), atom(2)]));
        assert!(!q.is_typed());
    }

    #[test]
    fn domain_blowup_is_reported() {
        // {{{U}}} over 5 atoms overflows the default cons limit
        let db = pair_db(&[(1, 2), (3, 4), (5, 5)]);
        let q = CalcQuery::new(
            "s",
            Type::nested_set(3).to_rtype(),
            Formula::Eq(CalcTerm::var("s"), CalcTerm::var("s")),
        );
        assert!(matches!(
            eval_query(&q, &db, &CalcConfig::default()),
            Err(CalcError::DomainTooLarge(_))
        ));
    }

    #[test]
    fn genericity_of_evaluation() {
        use uset_object::perm::Permutation;
        let db = pair_db(&[(1, 2), (2, 3)]);
        let q = CalcQuery::new(
            "x",
            t_u(),
            Formula::Pred(
                "R".into(),
                CalcTerm::Tuple(vec![CalcTerm::var("x"), CalcTerm::var("y")]),
            )
            .exists("y", t_u()),
        );
        let sigma = Permutation::from_pairs([
            (Atom::new(1), Atom::new(2)),
            (Atom::new(2), Atom::new(3)),
            (Atom::new(3), Atom::new(1)),
        ]);
        let direct = eval_query(&q, &db, &CalcConfig::default()).unwrap();
        let renamed = eval_query(&q, &sigma.apply_database(&db), &CalcConfig::default()).unwrap();
        assert_eq!(renamed, sigma.apply_instance(&direct));
    }
}
