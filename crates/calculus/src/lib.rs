//! # uset-calculus — the complex-object calculus and invention semantics
//!
//! The calculus of Hull & Su 1989 §2/§6: formulas built from `u ≈ v`,
//! `u ∈ v`, and `P(u)` with the sentential connectives and *typed*
//! quantifiers `∃x/T φ`, `∀x/T φ`; a query is `{x/T | φ}`.
//!
//! * Quantifiers annotated with strict [`Type`]s give **tsCALC**; under the
//!   *limited interpretation* (quantifiers range over the constructive
//!   domain `cons_T(adom(d, Q))`) it is E-equivalent (Theorem 2.2).
//! * Allowing rtypes — in particular `Obj` — gives **CALC**, whose
//!   constructive domains are infinite; our evaluator bounds them by
//!   construction size (see DESIGN.md §5: the unbounded language is
//!   provably non-computable, Theorems 6.1/6.3).
//! * [`invention`] implements the §6 semantics: `Q|ⁱ[d]` (evaluation with
//!   `i` invented values added to the active domain), `Q|_i[d]` (invented
//!   values stripped from the output), finite invention `Q^fi` (union over
//!   all `i` — r.e., approximated by a budget), and **terminal invention**
//!   `Q^ti`, the paper's new, exactly-C-equivalent semantics (Theorem 6.4),
//!   which is implemented exactly as defined.

pub mod ast;
pub mod eval;
pub mod invention;
pub mod safe;

pub use ast::{CalcQuery, CalcTerm, Formula};
pub use eval::{eval_query, CalcConfig, CalcError, CalcExhausted};
pub use invention::{
    eval_fi, eval_fi_governed, eval_terminal, eval_terminal_governed, eval_with_invention,
    strip_invented, InventionOutcome, InventionPartial,
};
