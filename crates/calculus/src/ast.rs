//! Calculus abstract syntax: terms, formulas, queries.

use std::fmt;
use uset_object::{RType, Value};

/// A calculus term.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CalcTerm {
    /// Variable.
    Var(String),
    /// Constant object (embeds the query's constants `C`).
    Const(Value),
    /// Tuple construction `[t1, …, tn]`.
    Tuple(Vec<CalcTerm>),
    /// Finite set enumeration `{t1, …, tn}`.
    SetEnum(Vec<CalcTerm>),
}

impl CalcTerm {
    /// Shorthand variable.
    pub fn var(name: &str) -> CalcTerm {
        CalcTerm::Var(name.to_owned())
    }

    /// Shorthand constant.
    pub fn cst(v: Value) -> CalcTerm {
        CalcTerm::Const(v)
    }

    /// Free variables, appended to `out`.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            CalcTerm::Var(v) => out.push(v.clone()),
            CalcTerm::Const(_) => {}
            CalcTerm::Tuple(ts) | CalcTerm::SetEnum(ts) => {
                for t in ts {
                    t.collect_vars(out);
                }
            }
        }
    }

    /// Atoms used by constants in the term.
    pub fn collect_const_atoms(&self, out: &mut std::collections::BTreeSet<uset_object::Atom>) {
        match self {
            CalcTerm::Var(_) => {}
            CalcTerm::Const(v) => {
                v.collect_adom(out);
            }
            CalcTerm::Tuple(ts) | CalcTerm::SetEnum(ts) => {
                for t in ts {
                    t.collect_const_atoms(out);
                }
            }
        }
    }
}

/// A calculus formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// `u ≈ v`
    Eq(CalcTerm, CalcTerm),
    /// `u ∈ v`
    Member(CalcTerm, CalcTerm),
    /// `P(u)` — `u` is a member of relation `P`.
    Pred(String, CalcTerm),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// `∃x/T φ` — typed existential (rtype-annotated; strict types give
    /// tsCALC).
    Exists(String, RType, Box<Formula>),
    /// `∀x/T φ` — typed universal.
    Forall(String, RType, Box<Formula>),
}

impl Formula {
    /// `self ∧ other`
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// `¬self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `∃x/T self`
    pub fn exists(self, var: &str, ty: RType) -> Formula {
        Formula::Exists(var.to_owned(), ty, Box::new(self))
    }

    /// `∀x/T self`
    pub fn forall(self, var: &str, ty: RType) -> Formula {
        Formula::Forall(var.to_owned(), ty, Box::new(self))
    }

    /// True iff every quantifier (and the given output type) is a strict
    /// type — i.e. the formula lies in tsCALC.
    pub fn is_typed(&self) -> bool {
        match self {
            Formula::Eq(..) | Formula::Member(..) | Formula::Pred(..) => true,
            Formula::And(a, b) | Formula::Or(a, b) => a.is_typed() && b.is_typed(),
            Formula::Not(f) => f.is_typed(),
            Formula::Exists(_, ty, f) | Formula::Forall(_, ty, f) => ty.is_strict() && f.is_typed(),
        }
    }

    /// True iff every rtype-quantified (non-strict) variable is
    /// existentially quantified under an even number of negations — the
    /// fragment CALC∃ of Theorem 6.3(b).
    pub fn is_calc_exists(&self) -> bool {
        fn rec(f: &Formula, positive: bool) -> bool {
            match f {
                Formula::Eq(..) | Formula::Member(..) | Formula::Pred(..) => true,
                Formula::And(a, b) | Formula::Or(a, b) => rec(a, positive) && rec(b, positive),
                Formula::Not(g) => rec(g, !positive),
                Formula::Exists(_, ty, g) => (ty.is_strict() || positive) && rec(g, positive),
                Formula::Forall(_, ty, g) => (ty.is_strict() || !positive) && rec(g, positive),
            }
        }
        rec(self, true)
    }

    /// Constant atoms appearing anywhere in the formula.
    pub fn const_atoms(&self) -> std::collections::BTreeSet<uset_object::Atom> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_const_atoms(&mut out);
        out
    }

    fn collect_const_atoms(&self, out: &mut std::collections::BTreeSet<uset_object::Atom>) {
        match self {
            Formula::Eq(a, b) | Formula::Member(a, b) => {
                a.collect_const_atoms(out);
                b.collect_const_atoms(out);
            }
            Formula::Pred(_, t) => t.collect_const_atoms(out),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_const_atoms(out);
                b.collect_const_atoms(out);
            }
            Formula::Not(f) => f.collect_const_atoms(out),
            Formula::Exists(_, _, f) | Formula::Forall(_, _, f) => f.collect_const_atoms(out),
        }
    }
}

/// A calculus query `{ x/T | φ }`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CalcQuery {
    /// The result variable.
    pub var: String,
    /// The result rtype (strict for tsCALC queries).
    pub ty: RType,
    /// The body formula (its free variables must be exactly `var`).
    pub formula: Formula,
}

impl CalcQuery {
    /// Build a query.
    pub fn new(var: &str, ty: RType, formula: Formula) -> CalcQuery {
        CalcQuery {
            var: var.to_owned(),
            ty,
            formula,
        }
    }

    /// True iff the query is in tsCALC (all types strict).
    pub fn is_typed(&self) -> bool {
        self.ty.is_strict() && self.formula.is_typed()
    }
}

impl fmt::Display for CalcTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalcTerm::Var(v) => write!(f, "{v}"),
            CalcTerm::Const(c) => write!(f, "{c}"),
            CalcTerm::Tuple(ts) => {
                write!(f, "[")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "]")
            }
            CalcTerm::SetEnum(ts) => {
                write!(f, "{{")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Eq(a, b) => write!(f, "{a} ≈ {b}"),
            Formula::Member(a, b) => write!(f, "{a} ∈ {b}"),
            Formula::Pred(p, t) => write!(f, "{p}({t})"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Formula::Not(g) => write!(f, "¬{g}"),
            Formula::Exists(x, ty, g) => write!(f, "∃{x}/{ty} {g}"),
            Formula::Forall(x, ty, g) => write!(f, "∀{x}/{ty} {g}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_object::atom;

    #[test]
    fn typedness_classification() {
        let typed = Formula::Pred("R".into(), CalcTerm::var("x")).exists("x", RType::Atomic);
        assert!(typed.is_typed());
        let untyped =
            Formula::Pred("R".into(), CalcTerm::var("x")).exists("x", RType::untyped_set());
        assert!(!untyped.is_typed());
    }

    #[test]
    fn calc_exists_fragment() {
        let ok = Formula::Member(CalcTerm::var("y"), CalcTerm::var("s"))
            .exists("s", RType::untyped_set());
        assert!(ok.is_calc_exists());
        // ∀ over an untyped set is outside the fragment
        let bad = Formula::Member(CalcTerm::var("y"), CalcTerm::var("s"))
            .forall("s", RType::untyped_set());
        assert!(!bad.is_calc_exists());
        // ¬∃ over untyped is a hidden ∀ — also outside
        let hidden = Formula::Member(CalcTerm::var("y"), CalcTerm::var("s"))
            .exists("s", RType::untyped_set())
            .not();
        assert!(!hidden.is_calc_exists());
        // but ¬¬∃ is fine
        let double = Formula::Member(CalcTerm::var("y"), CalcTerm::var("s"))
            .exists("s", RType::untyped_set())
            .not()
            .not();
        assert!(double.is_calc_exists());
    }

    #[test]
    fn const_atoms_collected() {
        let f = Formula::Eq(
            CalcTerm::cst(atom(7)),
            CalcTerm::Tuple(vec![CalcTerm::cst(atom(8)), CalcTerm::var("x")]),
        );
        let atoms = f.const_atoms();
        assert_eq!(atoms.len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let q = Formula::Pred("R".into(), CalcTerm::var("x")).exists("x", RType::Atomic);
        assert_eq!(q.to_string(), "∃x/U R(x)");
    }
}
