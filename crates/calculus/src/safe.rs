//! Well-formedness checking for calculus queries.
//!
//! The paper requires `{t/T | φ}` to be well-typed with `t` the only free
//! variable of `φ`. This module performs that check plus the hygiene
//! conditions an evaluator needs: no quantifier may shadow the result
//! variable (the binding would silently disconnect the output from the
//! formula), and every variable occurrence must be bound by exactly one
//! enclosing quantifier or be the result variable.

use crate::ast::{CalcQuery, CalcTerm, Formula};
use std::collections::BTreeSet;

/// Well-formedness violations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SafetyError {
    /// A variable occurs free that is not the result variable.
    FreeVariable(String),
    /// A quantifier shadows the result variable.
    ShadowsResult(String),
    /// A quantifier shadows an enclosing quantifier of the same name
    /// (legal in logic, rejected here for hygiene).
    ShadowsOuter(String),
}

impl std::fmt::Display for SafetyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SafetyError::FreeVariable(v) => {
                write!(f, "variable {v} is free but is not the result variable")
            }
            SafetyError::ShadowsResult(v) => {
                write!(f, "quantifier over {v} shadows the result variable")
            }
            SafetyError::ShadowsOuter(v) => {
                write!(f, "quantifier over {v} shadows an enclosing quantifier")
            }
        }
    }
}

impl std::error::Error for SafetyError {}

fn check_term(t: &CalcTerm, bound: &BTreeSet<String>, result: &str) -> Result<(), SafetyError> {
    match t {
        CalcTerm::Var(v) => {
            if v != result && !bound.contains(v) {
                Err(SafetyError::FreeVariable(v.clone()))
            } else {
                Ok(())
            }
        }
        CalcTerm::Const(_) => Ok(()),
        CalcTerm::Tuple(ts) | CalcTerm::SetEnum(ts) => {
            ts.iter().try_for_each(|t| check_term(t, bound, result))
        }
    }
}

fn check_formula(
    f: &Formula,
    bound: &mut BTreeSet<String>,
    result: &str,
) -> Result<(), SafetyError> {
    match f {
        Formula::Eq(a, b) | Formula::Member(a, b) => {
            check_term(a, bound, result)?;
            check_term(b, bound, result)
        }
        Formula::Pred(_, t) => check_term(t, bound, result),
        Formula::And(a, b) | Formula::Or(a, b) => {
            check_formula(a, bound, result)?;
            check_formula(b, bound, result)
        }
        Formula::Not(g) => check_formula(g, bound, result),
        Formula::Exists(x, _, g) | Formula::Forall(x, _, g) => {
            if x == result {
                return Err(SafetyError::ShadowsResult(x.clone()));
            }
            if !bound.insert(x.clone()) {
                return Err(SafetyError::ShadowsOuter(x.clone()));
            }
            let r = check_formula(g, bound, result);
            bound.remove(x);
            r
        }
    }
}

/// Check that the query is well-formed: its formula's free variables are
/// exactly (a subset of) the result variable, with hygienic quantifiers.
pub fn check_query(q: &CalcQuery) -> Result<(), SafetyError> {
    let mut bound = BTreeSet::new();
    check_formula(&q.formula, &mut bound, &q.var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_object::RType;

    fn v(n: &str) -> CalcTerm {
        CalcTerm::var(n)
    }

    #[test]
    fn well_formed_query_passes() {
        let q = CalcQuery::new(
            "x",
            RType::Atomic,
            Formula::Pred("R".into(), CalcTerm::Tuple(vec![v("x"), v("y")]))
                .exists("y", RType::Atomic),
        );
        check_query(&q).unwrap();
    }

    #[test]
    fn free_variable_detected() {
        let q = CalcQuery::new("x", RType::Atomic, Formula::Eq(v("x"), v("stray")));
        assert_eq!(
            check_query(&q),
            Err(SafetyError::FreeVariable("stray".into()))
        );
    }

    #[test]
    fn result_shadowing_detected() {
        let q = CalcQuery::new(
            "x",
            RType::Atomic,
            Formula::Pred("R".into(), v("x")).exists("x", RType::Atomic),
        );
        assert_eq!(check_query(&q), Err(SafetyError::ShadowsResult("x".into())));
    }

    #[test]
    fn quantifier_shadowing_detected() {
        let q = CalcQuery::new(
            "t",
            RType::Atomic,
            Formula::Pred("R".into(), v("y"))
                .exists("y", RType::Atomic)
                .and(Formula::Eq(v("t"), v("t")))
                .exists("y", RType::Atomic)
                .not(),
        );
        // inner ∃y under outer ∃y
        let nested = CalcQuery::new(
            "t",
            RType::Atomic,
            Formula::Pred("R".into(), v("y"))
                .exists("y", RType::Atomic)
                .exists("y", RType::Atomic),
        );
        assert_eq!(
            check_query(&nested),
            Err(SafetyError::ShadowsOuter("y".into()))
        );
        // sibling quantifiers with the same name are fine
        check_query(&q).unwrap_err(); // outer ∃y does not bind t-side, but
                                      // the y in the And-left is bound by
                                      // the *inner* ∃y — wait: structure is
                                      // ∃y( ∃y(R(y)) ∧ t≈t ) — that IS
                                      // nested shadowing
    }

    #[test]
    fn sibling_quantifiers_ok() {
        let q = CalcQuery::new(
            "t",
            RType::Atomic,
            Formula::Pred("R".into(), v("y"))
                .exists("y", RType::Atomic)
                .or(Formula::Pred("S".into(), v("y")).exists("y", RType::Atomic)),
        );
        check_query(&q).unwrap();
    }
}
