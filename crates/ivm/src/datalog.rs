//! The DATALOG¬ maintenance session: counting + DRed, stratum at a time.
//!
//! A [`DatalogSession`] materializes a program's fixpoint once (through
//! the `uset-opt` front doors, so the `USET_OPT` knob applies) and then
//! keeps it synchronized with EDB delta batches. Strata are maintained
//! in dependency order — the order [`uset_opt::maintenance_plan`] emits
//! them in — so by the time a stratum runs, every relation below it
//! already has its post-batch value in the state and its net change in
//! the batch's delta log. That is what makes negation safe: a negated
//! literal always refers to a *settled* lower stratum, and its delta is
//! the complement's delta with the signs flipped.
//!
//! Apply is atomic. Every mutation (state row, EDB row, support count)
//! is journaled in an undo log; a budget trip or evaluation error
//! replays the log backwards and returns [`IvmError::Exhausted`] with
//! the session still holding the pre-batch state.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use uset_deductive::datalog::head_binding;
use uset_deductive::{DatalogProgram, DlError};
use uset_guard::ckpt::codec::{Dec, Enc};
use uset_guard::trace::TraceEvent;
use uset_guard::{ckpt, EngineId, Governor, Guard, TraceHandle, Trip};
use uset_object::{Database, EvalStats, Instance, Value};
use uset_opt::{maintenance_plan, MaintPlan, MaintStratum, StratumPlan};
use uset_par::par_map;

use crate::delta::{DeltaBatch, DeltaLog, NormalBatch};
use crate::fire::{body_bindings, delta_bindings, head_row, View};
use crate::{ApplyReport, IvmError, IvmMode, Semantics};

/// A long-lived materialized DATALOG¬ fixpoint that absorbs EDB delta
/// batches. See the crate docs for the algorithm split.
pub struct DatalogSession {
    prog: DatalogProgram,
    semantics: Semantics,
    plan: MaintPlan,
    governor: Governor,
    /// The extensional database as of the last applied batch.
    edb: Database,
    /// The materialized state (EDB relations + derived IDB relations).
    state: Database,
    /// Per-fact derivation counts for counting strata. Counts exclude
    /// EDB-seeded occurrences: a seeded fact is an axiom and survives a
    /// count of zero.
    counts: BTreeMap<String, BTreeMap<Value, i64>>,
    /// Counters of the initial build (or the last fallback recompute).
    build_stats: EvalStats,
    /// Cumulative maintenance work across all applied batches.
    maint_stats: EvalStats,
    batches: u64,
    journal: Option<ckpt::Session>,
}

/// Internal maintenance failure, before rollback decides the public face.
enum MaintErr {
    Trip(Trip),
    Dl(DlError),
}

impl From<Trip> for MaintErr {
    fn from(t: Trip) -> MaintErr {
        MaintErr::Trip(t)
    }
}

impl From<DlError> for MaintErr {
    fn from(e: DlError) -> MaintErr {
        MaintErr::Dl(e)
    }
}

/// One reversible mutation, replayed backwards on rollback. Insert ops
/// carry whether the relation already existed (possibly empty) before
/// the insert: `remove_row` prunes a relation whose last row goes, and
/// a rollback must restore *explicitly-present-but-empty* relations —
/// `Database::PartialEq` distinguishes them from absent ones.
enum UndoOp {
    /// A row was inserted into the state.
    StateAdd(String, Value, bool),
    /// A row was removed from the state.
    StateDel(String, Value),
    /// A row was inserted into the EDB.
    EdbAdd(String, Value, bool),
    /// A row was removed from the EDB.
    EdbDel(String, Value),
    /// A support count changed; the payload is the *old* count (0 means
    /// the entry was absent).
    Count(String, Value, i64),
}

fn rollback(
    undo: Vec<UndoOp>,
    edb: &mut Database,
    state: &mut Database,
    counts: &mut BTreeMap<String, BTreeMap<Value, i64>>,
) {
    for op in undo.into_iter().rev() {
        match op {
            UndoOp::StateAdd(p, r, had_rel) => {
                state.remove_row(&p, &r);
                if had_rel && !state.contains_relation(&p) {
                    state.set(p, Instance::default());
                }
            }
            UndoOp::StateDel(p, r) => {
                state.insert_row(&p, &r);
            }
            UndoOp::EdbAdd(p, r, had_rel) => {
                edb.remove_row(&p, &r);
                if had_rel && !edb.contains_relation(&p) {
                    edb.set(p, Instance::default());
                }
            }
            UndoOp::EdbDel(p, r) => {
                edb.insert_row(&p, &r);
            }
            UndoOp::Count(p, r, old) => {
                let pc = counts.entry(p.clone()).or_default();
                if old == 0 {
                    pc.remove(&r);
                } else {
                    pc.insert(r, old);
                }
                if pc.is_empty() {
                    counts.remove(&p);
                }
            }
        }
    }
}

fn total_facts(db: &Database) -> usize {
    db.iter().map(|(_, inst)| inst.len()).sum()
}

fn eval(
    prog: &DatalogProgram,
    semantics: Semantics,
    db: &Database,
    governor: &Governor,
    stats: &mut EvalStats,
) -> Result<Database, DlError> {
    match semantics {
        Semantics::Stratified => uset_opt::eval_stratified(prog, db, governor, stats),
        Semantics::StratifiedSeminaive => {
            uset_opt::eval_stratified_seminaive(prog, db, governor, stats)
        }
        Semantics::Inflationary => uset_opt::eval_inflationary(prog, db, governor, stats),
    }
}

fn fingerprint(prog: &DatalogProgram, semantics: Semantics, db: &Database) -> u64 {
    let mut e = Enc::new();
    e.put_str(&format!("{prog:?}"));
    e.put_u8(match semantics {
        Semantics::Stratified => 0,
        Semantics::StratifiedSeminaive => 1,
        Semantics::Inflationary => 2,
    });
    e.put_database(db);
    ckpt::codec::fnv64(&e.finish())
}

/// Fold a recovered journal back into the EDB it describes.
fn decode_recovery(rec: &ckpt::Recovered) -> Option<(Database, EvalStats, u64)> {
    let mut d = Dec::new(&rec.payload);
    let mut edb = d.database().ok()?;
    for delta in &rec.deltas {
        NormalBatch::decode(delta)?.apply_to(&mut edb);
    }
    Some((edb, rec.stats, rec.round))
}

impl DatalogSession {
    /// Build the session: materialize the fixpoint, plan maintenance,
    /// and seed support counts for the counting strata. The mode comes
    /// from `USET_IVM`.
    pub fn new(
        prog: DatalogProgram,
        db: &Database,
        semantics: Semantics,
        governor: &Governor,
    ) -> Result<DatalogSession, IvmError> {
        DatalogSession::with_mode(prog, db, semantics, governor, IvmMode::from_env())
    }

    /// [`DatalogSession::new`] with an explicit mode (tests and callers
    /// that must not consult the environment).
    pub fn with_mode(
        prog: DatalogProgram,
        db: &Database,
        semantics: Semantics,
        governor: &Governor,
        mode: IvmMode,
    ) -> Result<DatalogSession, IvmError> {
        prog.check_safety().map_err(IvmError::Datalog)?;
        let governor = governor.clone();
        let mut guard = governor.guard(EngineId::Ivm);
        let mut journal = guard.ckpt_session(fingerprint(&prog, semantics, db));
        let mut edb = db.clone();
        let mut maint_stats = EvalStats::default();
        let mut batches = 0u64;
        if let Some(rec) = journal.as_mut().and_then(|j| j.recover()) {
            if let Some((redb, rstats, rround)) = decode_recovery(&rec) {
                edb = redb;
                maint_stats = rstats;
                batches = rround;
            }
        }
        let mut build_stats = EvalStats::default();
        let state =
            eval(&prog, semantics, &edb, &governor, &mut build_stats).map_err(IvmError::Datalog)?;
        let plan = match (semantics, mode) {
            (Semantics::Inflationary, _) => MaintPlan::Recompute(
                "inflationary fixpoints are not change-monotone; retraction invalidates \
                 the firing history"
                    .to_owned(),
            ),
            (_, IvmMode::Recompute) => {
                MaintPlan::Recompute("forced by USET_IVM=recompute".to_owned())
            }
            (_, IvmMode::Auto) => maintenance_plan(&prog),
        };
        let mut counts = BTreeMap::new();
        if let MaintPlan::Incremental(strata) = &plan {
            init_counts(
                &prog,
                strata,
                &state,
                &mut counts,
                &mut guard,
                &mut maint_stats,
            )
            .map_err(|e| match e {
                MaintErr::Trip(trip) => IvmError::Exhausted {
                    trip,
                    stats: maint_stats,
                },
                MaintErr::Dl(d) => IvmError::Datalog(d),
            })?;
        }
        Ok(DatalogSession {
            prog,
            semantics,
            plan,
            governor,
            edb,
            state,
            counts,
            build_stats,
            maint_stats,
            batches,
            journal,
        })
    }

    /// The materialized state (EDB relations plus derived relations),
    /// bit-identical to evaluating the program on [`Self::edb`] from
    /// scratch.
    pub fn state(&self) -> &Database {
        &self.state
    }

    /// The extensional database as of the last applied batch.
    pub fn edb(&self) -> &Database {
        &self.edb
    }

    /// The static maintenance plan.
    pub fn plan(&self) -> &MaintPlan {
        &self.plan
    }

    /// The session's semantics.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Batches applied so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Counters of the initial build (or last fallback recompute).
    pub fn build_stats(&self) -> &EvalStats {
        &self.build_stats
    }

    /// Cumulative maintenance work across applied batches.
    pub fn maint_stats(&self) -> &EvalStats {
        &self.maint_stats
    }

    /// Apply one batch atomically: on `Ok` the state equals a
    /// from-scratch evaluation of the updated EDB; on `Err` nothing
    /// changed.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<ApplyReport, IvmError> {
        let idb = self.prog.idb_predicates();
        for rel in batch.relations() {
            if idb.contains(rel) {
                return Err(IvmError::NotEdb {
                    pred: rel.to_owned(),
                });
            }
        }
        let norm = batch.normalize(&self.edb);
        let inserted = norm.inserted();
        let retracted = norm.retracted();
        let mut stats = EvalStats::default();
        let mut guard = self.governor.guard(EngineId::Ivm);
        let mut fallback = false;
        let (idb_added, idb_removed) = match self.plan.clone() {
            MaintPlan::Incremental(strata) => {
                self.apply_incremental(&strata, &norm, &mut guard, &mut stats)?
            }
            MaintPlan::Recompute(_) => {
                fallback = true;
                self.apply_recompute(&norm, &mut stats)?
            }
        };
        self.batches += 1;
        self.maint_stats.absorb(&stats);
        let batch_no = self.batches;
        self.governor.trace.emit(|| TraceEvent::DeltaApplied {
            engine: "ivm".to_owned(),
            batch: batch_no,
            inserted,
            retracted,
            idb_added,
            idb_removed,
            fallback,
        });
        if let Some(journal) = self.journal.as_mut() {
            let rc = guard.round_ckpt(self.batches, &self.maint_stats, norm.encode());
            let edb = &self.edb;
            journal.commit_delta(&rc, || {
                let mut e = Enc::new();
                e.put_database(edb);
                e.finish()
            });
        }
        Ok(ApplyReport {
            batch: self.batches,
            inserted,
            retracted,
            idb_added,
            idb_removed,
            fallback,
            stats,
        })
    }

    /// Close the checkpoint journal cleanly, if one is open.
    pub fn finish(&mut self) {
        if let Some(j) = self.journal.as_mut() {
            j.finish();
        }
    }

    fn apply_incremental(
        &mut self,
        strata: &[MaintStratum],
        norm: &NormalBatch,
        guard: &mut Guard,
        stats: &mut EvalStats,
    ) -> Result<(u64, u64), IvmError> {
        let mut undo: Vec<UndoOp> = Vec::new();
        let res = run_incremental(
            &self.prog,
            strata,
            norm,
            &mut self.edb,
            &mut self.state,
            &mut self.counts,
            guard,
            stats,
            &mut undo,
            &self.governor.trace,
        );
        match res {
            Ok(pair) => Ok(pair),
            Err(e) => {
                rollback(undo, &mut self.edb, &mut self.state, &mut self.counts);
                Err(match e {
                    MaintErr::Trip(trip) => IvmError::Exhausted {
                        trip,
                        stats: *stats,
                    },
                    MaintErr::Dl(d) => IvmError::Datalog(d),
                })
            }
        }
    }

    fn apply_recompute(
        &mut self,
        norm: &NormalBatch,
        stats: &mut EvalStats,
    ) -> Result<(u64, u64), IvmError> {
        let mut undo: Vec<UndoOp> = Vec::new();
        for (rel, rows) in &norm.removed {
            for row in rows.iter() {
                self.edb.remove_row(rel, row);
                undo.push(UndoOp::EdbDel(rel.clone(), row.clone()));
            }
        }
        for (rel, rows) in &norm.added {
            for row in rows.iter() {
                let had_rel = self.edb.contains_relation(rel);
                self.edb.insert_row(rel, row);
                undo.push(UndoOp::EdbAdd(rel.clone(), row.clone(), had_rel));
            }
        }
        let mut fresh = EvalStats::default();
        match eval(
            &self.prog,
            self.semantics,
            &self.edb,
            &self.governor,
            &mut fresh,
        ) {
            Ok(new_state) => {
                let (added, removed) = db_diff(&self.state, &new_state);
                self.state = new_state;
                self.build_stats = fresh;
                stats.absorb(&fresh);
                Ok((
                    added.saturating_sub(norm.inserted()),
                    removed.saturating_sub(norm.retracted()),
                ))
            }
            Err(e) => {
                rollback(undo, &mut self.edb, &mut self.state, &mut self.counts);
                Err(match e {
                    DlError::Exhausted(ex) => {
                        let ex = *ex;
                        IvmError::Exhausted {
                            trip: ex.trip,
                            stats: ex.stats,
                        }
                    }
                    other => IvmError::Datalog(other),
                })
            }
        }
    }
}

/// Count rows present in `new` but not `old`, and vice versa.
fn db_diff(old: &Database, new: &Database) -> (u64, u64) {
    let mut added = 0u64;
    let mut removed = 0u64;
    for (name, inst) in new.iter() {
        match old.get_ref(name) {
            Some(o) => added += inst.iter().filter(|r| !o.contains(r)).count() as u64,
            None => added += inst.len() as u64,
        }
    }
    for (name, inst) in old.iter() {
        match new.get_ref(name) {
            Some(n) => removed += inst.iter().filter(|r| !n.contains(r)).count() as u64,
            None => removed += inst.len() as u64,
        }
    }
    (added, removed)
}

/// Seed the support counts of every counting stratum by evaluating each
/// defining rule's body once against the freshly built state: the count
/// of a fact is exactly its number of (rule, binding) derivations.
fn init_counts(
    prog: &DatalogProgram,
    strata: &[MaintStratum],
    state: &Database,
    counts: &mut BTreeMap<String, BTreeMap<Value, i64>>,
    guard: &mut Guard,
    stats: &mut EvalStats,
) -> Result<(), MaintErr> {
    let log = DeltaLog::default();
    for stratum in strata {
        if stratum.plan != StratumPlan::Counting {
            continue;
        }
        let mut cache = BTreeMap::new();
        for &ri in &stratum.rules {
            guard.step()?;
            let rule = &prog.rules[ri];
            let bs = body_bindings(
                rule,
                &HashMap::new(),
                View::New,
                state,
                &log,
                &mut cache,
                stats,
            )?;
            for b in &bs {
                let row = head_row(rule, b)?;
                *counts
                    .entry(rule.head.pred.clone())
                    .or_default()
                    .entry(row)
                    .or_insert(0) += 1;
            }
        }
    }
    Ok(())
}

/// Does any rule of this stratum consume a relation the batch changed?
fn stratum_touched(prog: &DatalogProgram, stratum: &MaintStratum, log: &DeltaLog) -> bool {
    stratum.rules.iter().any(|&ri| {
        prog.rules[ri]
            .body
            .iter()
            .any(|lit| log.delta(&lit.atom.pred).is_some())
    })
}

#[allow(clippy::too_many_arguments)]
fn run_incremental(
    prog: &DatalogProgram,
    strata: &[MaintStratum],
    norm: &NormalBatch,
    edb: &mut Database,
    state: &mut Database,
    counts: &mut BTreeMap<String, BTreeMap<Value, i64>>,
    guard: &mut Guard,
    stats: &mut EvalStats,
    undo: &mut Vec<UndoOp>,
    trace: &TraceHandle,
) -> Result<(u64, u64), MaintErr> {
    guard.set_fact_base(total_facts(state))?;
    let mut log = DeltaLog::default();
    // 1. the EDB delta itself (state carries EDB relations too)
    for (rel, rows) in &norm.removed {
        for row in rows.iter() {
            state.remove_row(rel, row);
            undo.push(UndoOp::StateDel(rel.clone(), row.clone()));
            edb.remove_row(rel, row);
            undo.push(UndoOp::EdbDel(rel.clone(), row.clone()));
            guard.remove_fact()?;
            log.note_remove(rel, row.clone());
        }
    }
    for (rel, rows) in &norm.added {
        for row in rows.iter() {
            let had_state_rel = state.contains_relation(rel);
            state.insert_row(rel, row);
            undo.push(UndoOp::StateAdd(rel.clone(), row.clone(), had_state_rel));
            let had_edb_rel = edb.contains_relation(rel);
            edb.insert_row(rel, row);
            undo.push(UndoOp::EdbAdd(rel.clone(), row.clone(), had_edb_rel));
            guard.add_fact()?;
            log.note_add(rel, row.clone());
        }
    }
    // 2. strata in dependency order
    let mut idb_added = 0u64;
    let mut idb_removed = 0u64;
    for (si, stratum) in strata.iter().enumerate() {
        match stratum.plan {
            StratumPlan::Counting => {
                let (a, r) = maintain_counting(
                    prog, stratum, edb, state, counts, &mut log, guard, stats, undo,
                )?;
                idb_added += a;
                idb_removed += r;
            }
            StratumPlan::DRed => {
                let out = maintain_dred(prog, stratum, edb, state, &mut log, guard, stats, undo)?;
                idb_added += out.added;
                idb_removed += out.removed;
                if out.overdeleted > 0 || out.reinserted > 0 {
                    let (od, rd, ri) = (out.overdeleted, out.rederived, out.reinserted);
                    trace.emit(|| TraceEvent::Rederived {
                        engine: "ivm".to_owned(),
                        stratum: si,
                        overdeleted: od,
                        rederived: rd,
                        reinserted: ri,
                    });
                }
            }
        }
    }
    stats.observe_facts(total_facts(state));
    Ok((idb_added, idb_removed))
}

/// Counting maintenance for one non-recursive stratum: accumulate signed
/// derivation-count deltas through the telescoped delta rules, then
/// apply them. A fact is present iff it is EDB-seeded or its count is
/// positive.
#[allow(clippy::too_many_arguments)]
fn maintain_counting(
    prog: &DatalogProgram,
    stratum: &MaintStratum,
    edb: &Database,
    state: &mut Database,
    counts: &mut BTreeMap<String, BTreeMap<Value, i64>>,
    log: &mut DeltaLog,
    guard: &mut Guard,
    stats: &mut EvalStats,
    undo: &mut Vec<UndoOp>,
) -> Result<(u64, u64), MaintErr> {
    if !stratum_touched(prog, stratum, log) {
        return Ok((0, 0));
    }
    let mut cache = BTreeMap::new();
    let mut signed: BTreeMap<(String, Value), i64> = BTreeMap::new();
    for &ri in &stratum.rules {
        let rule = &prog.rules[ri];
        for (i, lit) in rule.body.iter().enumerate() {
            let Some(d) = log.delta(&lit.atom.pred) else {
                continue;
            };
            // a negated literal is its relation's complement: rows
            // leaving the relation are gains, rows entering are losses
            let passes: [(&BTreeSet<Value>, i64); 2] = if lit.positive {
                [(&d.added, 1), (&d.removed, -1)]
            } else {
                [(&d.removed, 1), (&d.added, -1)]
            };
            for (rows, sign) in passes {
                if rows.is_empty() {
                    continue;
                }
                guard.step()?;
                let bs = delta_bindings(
                    rule,
                    i,
                    rows,
                    View::New,
                    View::Old,
                    state,
                    log,
                    &mut cache,
                    stats,
                )?;
                for b in &bs {
                    let row = head_row(rule, b)?;
                    *signed.entry((rule.head.pred.clone(), row)).or_insert(0) += sign;
                }
            }
        }
    }
    stats.rounds += 1;
    let mut added = 0u64;
    let mut removed = 0u64;
    for ((pred, row), delta) in signed {
        if delta == 0 {
            continue;
        }
        let pc = counts.entry(pred.clone()).or_default();
        let old = pc.get(&row).copied().unwrap_or(0);
        let new = old + delta;
        debug_assert!(new >= 0, "support count of {pred} went negative");
        undo.push(UndoOp::Count(pred.clone(), row.clone(), old));
        if new == 0 {
            pc.remove(&row);
        } else {
            pc.insert(row.clone(), new);
        }
        let seeded = edb.get_ref(&pred).is_some_and(|i| i.contains(&row));
        let was = old > 0 || seeded;
        let now = new > 0 || seeded;
        if was && !now {
            state.remove_row(&pred, &row);
            undo.push(UndoOp::StateDel(pred.clone(), row.clone()));
            guard.remove_fact()?;
            log.note_remove(&pred, row);
            removed += 1;
        } else if !was && now {
            let had_rel = state.contains_relation(&pred);
            state.insert_row(&pred, &row);
            undo.push(UndoOp::StateAdd(pred.clone(), row.clone(), had_rel));
            guard.add_fact()?;
            log.note_add(&pred, row);
            added += 1;
        }
    }
    stats.observe_facts(total_facts(state));
    Ok((added, removed))
}

#[derive(Default)]
struct DredOut {
    added: u64,
    removed: u64,
    overdeleted: u64,
    rederived: u64,
    reinserted: u64,
}

fn consider_delete(
    pred: &str,
    row: Value,
    state: &Database,
    edb: &Database,
    deleted: &mut BTreeMap<String, BTreeSet<Value>>,
    pending: &mut BTreeMap<String, BTreeSet<Value>>,
) {
    if !state.get_ref(pred).is_some_and(|i| i.contains(&row)) {
        return;
    }
    // an EDB-seeded fact is an axiom, never a deletion candidate
    if edb.get_ref(pred).is_some_and(|i| i.contains(&row)) {
        return;
    }
    if deleted.get(pred).is_some_and(|s| s.contains(&row)) {
        return;
    }
    deleted
        .entry(pred.to_owned())
        .or_default()
        .insert(row.clone());
    pending.entry(pred.to_owned()).or_default().insert(row);
}

/// Can this deleted fact still be derived from the current state?
fn rederivable(
    prog: &DatalogProgram,
    stratum: &MaintStratum,
    pred: &str,
    row: &Value,
    state: &Database,
    stats: &mut EvalStats,
) -> Result<bool, DlError> {
    let log = DeltaLog::default();
    let mut cache = BTreeMap::new();
    for &ri in &stratum.rules {
        let rule = &prog.rules[ri];
        if rule.head.pred != pred {
            continue;
        }
        let Some(seed) = head_binding(&rule.head, row) else {
            continue;
        };
        let bs = body_bindings(rule, &seed, View::New, state, &log, &mut cache, stats)?;
        if !bs.is_empty() {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Delete-and-rederive for one recursive stratum.
///
/// Phase 1 computes the over-deletion set against the **old** views
/// (state is untouched until the set converges, so same-stratum
/// relations read correctly), excluding EDB-seeded axioms. Phase 2
/// repeatedly re-checks the deleted facts against the current state —
/// each pass is embarrassingly parallel over candidates and is sharded
/// across the guard's workers, with per-candidate counters absorbed in
/// canonical order so the result and stats are identical at any width.
/// Phase 3 seeds insertions from the lower relations' gains and
/// propagates them semi-naively within the stratum.
#[allow(clippy::too_many_arguments)]
fn maintain_dred(
    prog: &DatalogProgram,
    stratum: &MaintStratum,
    edb: &Database,
    state: &mut Database,
    log: &mut DeltaLog,
    guard: &mut Guard,
    stats: &mut EvalStats,
    undo: &mut Vec<UndoOp>,
) -> Result<DredOut, MaintErr> {
    let mut out = DredOut::default();
    if !stratum_touched(prog, stratum, log) {
        return Ok(out);
    }

    // ---- phase 1: over-delete at old views -------------------------
    let mut cache = BTreeMap::new();
    let mut deleted: BTreeMap<String, BTreeSet<Value>> = BTreeMap::new();
    let mut pending: BTreeMap<String, BTreeSet<Value>> = BTreeMap::new();
    for &ri in &stratum.rules {
        let rule = &prog.rules[ri];
        for (i, lit) in rule.body.iter().enumerate() {
            if stratum.preds.contains(&lit.atom.pred) {
                continue;
            }
            let Some(d) = log.delta(&lit.atom.pred) else {
                continue;
            };
            let loss = if lit.positive { &d.removed } else { &d.added };
            if loss.is_empty() {
                continue;
            }
            guard.step()?;
            let bs = delta_bindings(
                rule,
                i,
                loss,
                View::Old,
                View::Old,
                state,
                log,
                &mut cache,
                stats,
            )?;
            for b in &bs {
                let row = head_row(rule, b)?;
                consider_delete(&rule.head.pred, row, state, edb, &mut deleted, &mut pending);
            }
        }
    }
    while pending.values().any(|s| !s.is_empty()) {
        let cur = std::mem::take(&mut pending);
        stats.rounds += 1;
        for &ri in &stratum.rules {
            let rule = &prog.rules[ri];
            for (i, lit) in rule.body.iter().enumerate() {
                if !lit.positive || !stratum.preds.contains(&lit.atom.pred) {
                    continue;
                }
                let Some(rows) = cur.get(&lit.atom.pred) else {
                    continue;
                };
                if rows.is_empty() {
                    continue;
                }
                guard.step()?;
                let bs = delta_bindings(
                    rule,
                    i,
                    rows,
                    View::Old,
                    View::Old,
                    state,
                    log,
                    &mut cache,
                    stats,
                )?;
                for b in &bs {
                    let row = head_row(rule, b)?;
                    consider_delete(&rule.head.pred, row, state, edb, &mut deleted, &mut pending);
                }
            }
        }
    }
    for (pred, rows) in &deleted {
        for row in rows {
            state.remove_row(pred, row);
            undo.push(UndoOp::StateDel(pred.clone(), row.clone()));
            guard.remove_fact()?;
            out.overdeleted += 1;
        }
    }

    // ---- phase 2: rederive what still has an independent proof -----
    let mut remaining: Vec<(String, Value)> = deleted
        .iter()
        .flat_map(|(p, rs)| rs.iter().map(move |r| (p.clone(), r.clone())))
        .collect();
    let workers = guard.workers();
    while !remaining.is_empty() {
        stats.rounds += 1;
        let frozen: &Database = state;
        let results: Vec<(Result<bool, DlError>, EvalStats)> = if workers > 1 && remaining.len() > 1
        {
            par_map(workers, &remaining, |_, (pred, row)| {
                let mut s = EvalStats::default();
                let ok = rederivable(prog, stratum, pred, row, frozen, &mut s);
                (ok, s)
            })
        } else {
            remaining
                .iter()
                .map(|(pred, row)| {
                    let mut s = EvalStats::default();
                    let ok = rederivable(prog, stratum, pred, row, frozen, &mut s);
                    (ok, s)
                })
                .collect()
        };
        let mut alive = Vec::new();
        let mut progressed = false;
        for ((pred, row), (ok, s)) in remaining.into_iter().zip(results) {
            stats.absorb(&s);
            guard.step()?;
            match ok {
                Err(e) => return Err(MaintErr::Dl(e)),
                Ok(true) => {
                    let had_rel = state.contains_relation(&pred);
                    state.insert_row(&pred, &row);
                    undo.push(UndoOp::StateAdd(pred.clone(), row.clone(), had_rel));
                    guard.add_fact()?;
                    out.rederived += 1;
                    out.reinserted += 1;
                    progressed = true;
                }
                Ok(false) => alive.push((pred, row)),
            }
        }
        remaining = alive;
        if !progressed {
            break;
        }
    }

    // ---- phase 3: insertions, semi-naive within the stratum --------
    let mut cache3 = BTreeMap::new();
    let mut pending: BTreeMap<String, BTreeSet<Value>> = BTreeMap::new();
    let mut inserted_rows: Vec<(String, Value)> = Vec::new();
    for &ri in &stratum.rules {
        let rule = &prog.rules[ri];
        for (i, lit) in rule.body.iter().enumerate() {
            if stratum.preds.contains(&lit.atom.pred) {
                continue;
            }
            let Some(d) = log.delta(&lit.atom.pred) else {
                continue;
            };
            let gain = if lit.positive { &d.added } else { &d.removed };
            if gain.is_empty() {
                continue;
            }
            guard.step()?;
            let bs = delta_bindings(
                rule,
                i,
                gain,
                View::New,
                View::New,
                state,
                log,
                &mut cache3,
                stats,
            )?;
            for b in &bs {
                let row = head_row(rule, b)?;
                insert_new(
                    &rule.head.pred,
                    row,
                    state,
                    undo,
                    guard,
                    &mut pending,
                    &mut inserted_rows,
                )?;
            }
        }
    }
    while pending.values().any(|s| !s.is_empty()) {
        let cur = std::mem::take(&mut pending);
        stats.rounds += 1;
        for &ri in &stratum.rules {
            let rule = &prog.rules[ri];
            for (i, lit) in rule.body.iter().enumerate() {
                if !lit.positive || !stratum.preds.contains(&lit.atom.pred) {
                    continue;
                }
                let Some(rows) = cur.get(&lit.atom.pred) else {
                    continue;
                };
                if rows.is_empty() {
                    continue;
                }
                guard.step()?;
                let bs = delta_bindings(
                    rule,
                    i,
                    rows,
                    View::New,
                    View::New,
                    state,
                    log,
                    &mut cache3,
                    stats,
                )?;
                for b in &bs {
                    let row = head_row(rule, b)?;
                    insert_new(
                        &rule.head.pred,
                        row,
                        state,
                        undo,
                        guard,
                        &mut pending,
                        &mut inserted_rows,
                    )?;
                }
            }
        }
    }

    // ---- net bookkeeping for downstream strata ---------------------
    for (pred, rows) in &deleted {
        for row in rows {
            if !state.get_ref(pred).is_some_and(|i| i.contains(row)) {
                log.note_remove(pred, row.clone());
                out.removed += 1;
            }
        }
    }
    for (pred, row) in &inserted_rows {
        if deleted.get(pred).is_some_and(|s| s.contains(row)) {
            out.reinserted += 1; // a phase-3 restoration of an over-deleted fact
        } else {
            log.note_add(pred, row.clone());
            out.added += 1;
        }
    }
    stats.observe_facts(total_facts(state));
    Ok(out)
}

fn insert_new(
    pred: &str,
    row: Value,
    state: &mut Database,
    undo: &mut Vec<UndoOp>,
    guard: &mut Guard,
    pending: &mut BTreeMap<String, BTreeSet<Value>>,
    inserted: &mut Vec<(String, Value)>,
) -> Result<(), MaintErr> {
    if state.get_ref(pred).is_some_and(|i| i.contains(&row)) {
        return Ok(());
    }
    let had_rel = state.contains_relation(pred);
    state.insert_row(pred, &row);
    undo.push(UndoOp::StateAdd(pred.to_owned(), row.clone(), had_rel));
    guard.add_fact()?;
    pending
        .entry(pred.to_owned())
        .or_default()
        .insert(row.clone());
    inserted.push((pred.to_owned(), row));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_deductive::{DlAtom, DlRule, DlTerm};
    use uset_guard::Budget;
    use uset_object::atom;

    fn v(name: &str) -> DlTerm {
        DlTerm::var(name)
    }

    fn edge(a: u64, b: u64) -> Value {
        Value::Tuple(vec![atom(a), atom(b)])
    }

    fn tc() -> DatalogProgram {
        DatalogProgram::new(vec![
            DlRule::new(
                DlAtom::new("T", vec![v("x"), v("y")]),
                vec![(true, DlAtom::new("E", vec![v("x"), v("y")]))],
            ),
            DlRule::new(
                DlAtom::new("T", vec![v("x"), v("z")]),
                vec![
                    (true, DlAtom::new("E", vec![v("x"), v("y")])),
                    (true, DlAtom::new("T", vec![v("y"), v("z")])),
                ],
            ),
        ])
    }

    fn path_db(n: u64) -> Database {
        let mut db = Database::empty();
        db.set(
            "E",
            Instance::from_rows((0..n - 1).map(|i| [atom(i), atom(i + 1)])),
        );
        db
    }

    fn recompute(prog: &DatalogProgram, db: &Database, semantics: Semantics) -> Database {
        eval(
            prog,
            semantics,
            db,
            &Governor::unlimited(),
            &mut EvalStats::default(),
        )
        .unwrap()
    }

    #[test]
    fn counting_join_tracks_inserts_and_retracts() {
        // J(x,z) ← A(x,y), B(y,z): one counting stratum
        let prog = DatalogProgram::new(vec![DlRule::new(
            DlAtom::new("J", vec![v("x"), v("z")]),
            vec![
                (true, DlAtom::new("A", vec![v("x"), v("y")])),
                (true, DlAtom::new("B", vec![v("y"), v("z")])),
            ],
        )]);
        let mut db = Database::empty();
        db.set(
            "A",
            Instance::from_rows([[atom(0u64), atom(1u64)], [atom(5u64), atom(1u64)]]),
        );
        db.set("B", Instance::from_rows([[atom(1u64), atom(2u64)]]));
        let gov = Governor::unlimited();
        let mut s = DatalogSession::with_mode(
            prog.clone(),
            &db,
            Semantics::StratifiedSeminaive,
            &gov,
            IvmMode::Auto,
        )
        .unwrap();
        assert!(matches!(s.plan(), MaintPlan::Incremental(_)));
        // retract A(0,1): J(0,2) loses its only support; J(5,2) survives
        let rep = s
            .apply(
                &DeltaBatch::new()
                    .retract("A", edge(0, 1))
                    .insert("B", edge(1, 7)),
            )
            .unwrap();
        assert!(!rep.fallback);
        assert_eq!(
            s.state(),
            &recompute(&prog, s.edb(), Semantics::StratifiedSeminaive)
        );
        assert!(s.state().get("J").contains(&edge(5, 2)));
        assert!(!s.state().get("J").contains(&edge(0, 2)));
        assert!(s.state().get("J").contains(&edge(5, 7)));
    }

    #[test]
    fn dred_retraction_matches_recompute_and_does_less_work() {
        let prog = tc();
        let db = path_db(32);
        let gov = Governor::unlimited();
        let mut s = DatalogSession::with_mode(
            prog.clone(),
            &db,
            Semantics::StratifiedSeminaive,
            &gov,
            IvmMode::Auto,
        )
        .unwrap();
        let rep = s
            .apply(&DeltaBatch::new().retract("E", edge(30, 31)))
            .unwrap();
        assert!(!rep.fallback);
        let fresh = recompute(&prog, s.edb(), Semantics::StratifiedSeminaive);
        assert_eq!(s.state(), &fresh);
        // the single-edge retraction must touch far fewer tuples than a rebuild
        let mut full = EvalStats::default();
        eval(
            &prog,
            Semantics::StratifiedSeminaive,
            s.edb(),
            &gov,
            &mut full,
        )
        .unwrap();
        assert!(
            rep.stats.tuples_derived * 2 < full.tuples_derived,
            "maintain {} vs recompute {}",
            rep.stats.tuples_derived,
            full.tuples_derived
        );
    }

    #[test]
    fn insertion_then_retraction_roundtrips_through_negation() {
        // Bad(x) ← Block(x); Top(x) ← T(x,y), ¬Bad(x)
        let mut rules = tc().rules.clone();
        rules.push(DlRule::new(
            DlAtom::new("Bad", vec![v("x")]),
            vec![(true, DlAtom::new("Block", vec![v("x")]))],
        ));
        rules.push(DlRule::new(
            DlAtom::new("Top", vec![v("x")]),
            vec![
                (true, DlAtom::new("T", vec![v("x"), v("y")])),
                (false, DlAtom::new("Bad", vec![v("x")])),
            ],
        ));
        let prog = DatalogProgram::new(rules);
        let mut db = path_db(6);
        db.set("Block", Instance::from_rows([[atom(0u64)]]));
        let gov = Governor::unlimited();
        let mut s = DatalogSession::with_mode(
            prog.clone(),
            &db,
            Semantics::Stratified,
            &gov,
            IvmMode::Auto,
        )
        .unwrap();
        // unblocking 0 must bring Top(0) back through the negated literal
        let rep = s
            .apply(&DeltaBatch::new().retract("Block", Value::Tuple(vec![atom(0u64)])))
            .unwrap();
        assert!(!rep.fallback);
        assert_eq!(s.state(), &recompute(&prog, s.edb(), Semantics::Stratified));
        // and blocking 3 plus cutting an edge must remove Top(3)
        s.apply(
            &DeltaBatch::new()
                .insert("Block", Value::Tuple(vec![atom(3u64)]))
                .retract("E", edge(1, 2)),
        )
        .unwrap();
        assert_eq!(s.state(), &recompute(&prog, s.edb(), Semantics::Stratified));
    }

    #[test]
    fn budget_trip_rolls_the_batch_back() {
        let prog = tc();
        let db = path_db(16);
        let gov = Governor::unlimited();
        let s = DatalogSession::with_mode(
            prog.clone(),
            &db,
            Semantics::StratifiedSeminaive,
            &gov,
            IvmMode::Auto,
        )
        .unwrap();
        let before_state = s.state().clone();
        let before_edb = s.edb().clone();
        // a governor whose step budget cannot cover the maintenance pass
        let tight = Governor::new(Budget::unlimited().with_steps(3));
        let mut tight_session = DatalogSession {
            governor: tight,
            ..// move the rest of the fields over
            match DatalogSession::with_mode(
                prog,
                &db,
                Semantics::StratifiedSeminaive,
                &gov,
                IvmMode::Auto,
            ) {
                Ok(sess) => sess,
                Err(e) => panic!("{e}"),
            }
        };
        let err = tight_session
            .apply(
                &DeltaBatch::new()
                    .retract("E", edge(0, 1))
                    .insert("E", edge(20, 21)),
            )
            .unwrap_err();
        assert!(matches!(err, IvmError::Exhausted { .. }), "{err}");
        assert_eq!(tight_session.state(), &before_state, "state rolled back");
        assert_eq!(tight_session.edb(), &before_edb, "edb rolled back");
        drop(s);
    }

    #[test]
    fn idb_deltas_are_rejected() {
        let prog = tc();
        let db = path_db(4);
        let mut s = DatalogSession::with_mode(
            prog,
            &db,
            Semantics::StratifiedSeminaive,
            &Governor::unlimited(),
            IvmMode::Auto,
        )
        .unwrap();
        let err = s
            .apply(&DeltaBatch::new().insert("T", edge(0, 3)))
            .unwrap_err();
        assert!(matches!(err, IvmError::NotEdb { pred } if pred == "T"));
    }

    #[test]
    fn inflationary_sessions_fall_back_to_recompute() {
        let prog = tc();
        let db = path_db(5);
        let mut s = DatalogSession::with_mode(
            prog.clone(),
            &db,
            Semantics::Inflationary,
            &Governor::unlimited(),
            IvmMode::Auto,
        )
        .unwrap();
        assert!(matches!(s.plan(), MaintPlan::Recompute(_)));
        let rep = s
            .apply(&DeltaBatch::new().retract("E", edge(2, 3)))
            .unwrap();
        assert!(rep.fallback);
        assert_eq!(
            s.state(),
            &recompute(&prog, s.edb(), Semantics::Inflationary)
        );
    }

    #[test]
    fn forced_recompute_mode_still_agrees() {
        let prog = tc();
        let db = path_db(8);
        let mut s = DatalogSession::with_mode(
            prog.clone(),
            &db,
            Semantics::StratifiedSeminaive,
            &Governor::unlimited(),
            IvmMode::Recompute,
        )
        .unwrap();
        let rep = s
            .apply(&DeltaBatch::new().retract("E", edge(3, 4)))
            .unwrap();
        assert!(rep.fallback);
        assert_eq!(
            s.state(),
            &recompute(&prog, s.edb(), Semantics::StratifiedSeminaive)
        );
    }
}
