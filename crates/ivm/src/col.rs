//! COL maintenance sessions: recompute-on-apply, same surface.
//!
//! COL data functions accumulate **set values**: a function's graph at
//! the fixpoint folds together contributions from many derivations, and
//! a set, once unioned, does not remember which member came from where.
//! Retraction therefore has no compositional delta story — removing one
//! EDB row can shrink a set value that other rows also justify, and
//! deciding the survivor set is exactly a re-evaluation. Sessions over
//! COL keep the batch bookkeeping (normalization, atomic apply,
//! journaling, the `delta_applied` trace event with `fallback: true`)
//! and serve every batch by governed recomputation through the
//! `uset-opt` front doors.

use std::collections::BTreeSet;

use uset_deductive::col::eval::{ColConfig, ColState, ColStrategy};
use uset_deductive::{ColEvalError, ColProgram};
use uset_guard::ckpt::codec::{Dec, Enc};
use uset_guard::trace::TraceEvent;
use uset_guard::{ckpt, EngineId, Governor};
use uset_object::{Database, EvalStats, Value};

use crate::delta::{DeltaBatch, NormalBatch};
use crate::{ApplyReport, IvmError};

/// Which COL semantics the session materializes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColSemantics {
    /// Stratified (per-SCC fixpoints).
    Stratified,
    /// Inflationary single fixpoint.
    Inflationary,
}

/// Why every COL batch recomputes.
pub const COL_FALLBACK_REASON: &str =
    "COL data functions accumulate set values that do not decompose under retraction";

/// A materialized COL fixpoint that absorbs EDB delta batches by
/// governed recomputation.
pub struct ColSession {
    prog: ColProgram,
    config: ColConfig,
    strategy: ColStrategy,
    semantics: ColSemantics,
    governor: Governor,
    idb: BTreeSet<String>,
    edb: Database,
    state: ColState,
    build_stats: EvalStats,
    maint_stats: EvalStats,
    batches: u64,
    journal: Option<ckpt::Session>,
}

fn eval(
    prog: &ColProgram,
    db: &Database,
    config: &ColConfig,
    strategy: ColStrategy,
    semantics: ColSemantics,
    governor: &Governor,
    stats: &mut EvalStats,
) -> Result<ColState, ColEvalError> {
    match semantics {
        ColSemantics::Stratified => {
            uset_opt::col_stratified(prog, db, config, strategy, governor, stats)
        }
        ColSemantics::Inflationary => {
            uset_opt::col_inflationary(prog, db, config, strategy, governor, stats)
        }
    }
}

fn fingerprint(
    prog: &ColProgram,
    config: &ColConfig,
    strategy: ColStrategy,
    semantics: ColSemantics,
    db: &Database,
) -> u64 {
    let mut e = Enc::new();
    e.put_str(&format!("{prog:?}/{config:?}/{strategy:?}"));
    e.put_u8(match semantics {
        ColSemantics::Stratified => 0,
        ColSemantics::Inflationary => 1,
    });
    e.put_database(db);
    ckpt::codec::fnv64(&e.finish())
}

fn decode_recovery(rec: &ckpt::Recovered) -> Option<(Database, EvalStats, u64)> {
    let mut d = Dec::new(&rec.payload);
    let mut edb = d.database().ok()?;
    for delta in &rec.deltas {
        NormalBatch::decode(delta)?.apply_to(&mut edb);
    }
    Some((edb, rec.stats, rec.round))
}

/// Count facts (predicate rows plus function memberships) present in
/// `new` but not `old`, and vice versa.
fn col_diff(old: &ColState, new: &ColState) -> (u64, u64) {
    fn one_way(a: &ColState, b: &ColState) -> u64 {
        let mut n = 0u64;
        for (name, inst) in &a.preds {
            match b.preds.get(name) {
                Some(other) => n += inst.iter().filter(|r| !other.contains(r)).count() as u64,
                None => n += inst.len() as u64,
            }
        }
        for (func, graph) in &a.funcs {
            let other = b.funcs.get(func);
            for (args, members) in graph {
                let oset: Option<&BTreeSet<Value>> = other.and_then(|g| g.get(args));
                n += members
                    .iter()
                    .filter(|m| !oset.is_some_and(|s| s.contains(*m)))
                    .count() as u64;
            }
        }
        n
    }
    (one_way(new, old), one_way(old, new))
}

impl ColSession {
    /// Build the session: materialize the fixpoint and open the journal.
    pub fn new(
        prog: ColProgram,
        db: &Database,
        config: ColConfig,
        strategy: ColStrategy,
        semantics: ColSemantics,
        governor: &Governor,
    ) -> Result<ColSession, IvmError> {
        let governor = governor.clone();
        let idb: BTreeSet<String> = prog
            .rules
            .iter()
            .map(|r| r.head_symbol().to_owned())
            .collect();
        let guard = governor.guard(EngineId::Ivm);
        let mut journal = guard.ckpt_session(fingerprint(&prog, &config, strategy, semantics, db));
        let mut edb = db.clone();
        let mut maint_stats = EvalStats::default();
        let mut batches = 0u64;
        if let Some(rec) = journal.as_mut().and_then(|j| j.recover()) {
            if let Some((redb, rstats, rround)) = decode_recovery(&rec) {
                edb = redb;
                maint_stats = rstats;
                batches = rround;
            }
        }
        let mut build_stats = EvalStats::default();
        let state = eval(
            &prog,
            &edb,
            &config,
            strategy,
            semantics,
            &governor,
            &mut build_stats,
        )
        .map_err(IvmError::Col)?;
        Ok(ColSession {
            prog,
            config,
            strategy,
            semantics,
            governor,
            idb,
            edb,
            state,
            build_stats,
            maint_stats,
            batches,
            journal,
        })
    }

    /// The materialized state, bit-identical to evaluating the program
    /// on [`Self::edb`] from scratch.
    pub fn state(&self) -> &ColState {
        &self.state
    }

    /// The extensional database as of the last applied batch.
    pub fn edb(&self) -> &Database {
        &self.edb
    }

    /// Counters of the last recomputation.
    pub fn build_stats(&self) -> &EvalStats {
        &self.build_stats
    }

    /// Cumulative work across applied batches.
    pub fn maint_stats(&self) -> &EvalStats {
        &self.maint_stats
    }

    /// Batches applied so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Why the session recomputes every batch.
    pub fn fallback_reason(&self) -> &'static str {
        COL_FALLBACK_REASON
    }

    /// Apply one batch atomically by recomputation. On `Err` the session
    /// still holds the pre-batch state.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<ApplyReport, IvmError> {
        for rel in batch.relations() {
            if self.idb.contains(rel) {
                return Err(IvmError::NotEdb {
                    pred: rel.to_owned(),
                });
            }
        }
        let norm = batch.normalize(&self.edb);
        let inserted = norm.inserted();
        let retracted = norm.retracted();
        let before = self.edb.clone();
        norm.apply_to(&mut self.edb);
        let mut fresh = EvalStats::default();
        let new_state = match eval(
            &self.prog,
            &self.edb,
            &self.config,
            self.strategy,
            self.semantics,
            &self.governor,
            &mut fresh,
        ) {
            Ok(s) => s,
            Err(e) => {
                self.edb = before;
                return Err(match e {
                    ColEvalError::Exhausted(ex) => {
                        let ex = *ex;
                        IvmError::Exhausted {
                            trip: ex.trip,
                            stats: ex.stats,
                        }
                    }
                    other => IvmError::Col(other),
                });
            }
        };
        let (added, removed) = col_diff(&self.state, &new_state);
        let idb_added = added.saturating_sub(inserted);
        let idb_removed = removed.saturating_sub(retracted);
        self.state = new_state;
        self.build_stats = fresh;
        self.maint_stats.absorb(&fresh);
        self.batches += 1;
        let batch_no = self.batches;
        self.governor.trace.emit(|| TraceEvent::DeltaApplied {
            engine: "ivm".to_owned(),
            batch: batch_no,
            inserted,
            retracted,
            idb_added,
            idb_removed,
            fallback: true,
        });
        if let Some(journal) = self.journal.as_mut() {
            let guard = self.governor.guard(EngineId::Ivm);
            let rc = guard.round_ckpt(self.batches, &self.maint_stats, norm.encode());
            let edb = &self.edb;
            journal.commit_delta(&rc, || {
                let mut e = Enc::new();
                e.put_database(edb);
                e.finish()
            });
        }
        Ok(ApplyReport {
            batch: self.batches,
            inserted,
            retracted,
            idb_added,
            idb_removed,
            fallback: true,
            stats: fresh,
        })
    }

    /// Close the checkpoint journal cleanly, if one is open.
    pub fn finish(&mut self) {
        if let Some(j) = self.journal.as_mut() {
            j.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_deductive::col::ast::{ColLiteral, ColRule, ColTerm};
    use uset_object::{atom, Instance};

    fn v(name: &str) -> ColTerm {
        ColTerm::var(name)
    }

    // P(x,y) ← E(x,y)  (predicate projection, enough to exercise apply)
    fn prog() -> ColProgram {
        ColProgram {
            rules: vec![ColRule::pred(
                "P",
                vec![v("x"), v("y")],
                vec![ColLiteral::pred("E", vec![v("x"), v("y")])],
            )],
        }
    }

    fn edge(a: u64, b: u64) -> Value {
        Value::Tuple(vec![atom(a), atom(b)])
    }

    #[test]
    fn col_apply_recomputes_and_reports_fallback() {
        let mut db = Database::empty();
        db.set(
            "E",
            Instance::from_rows([[atom(0u64), atom(1u64)], [atom(1u64), atom(2u64)]]),
        );
        let gov = Governor::unlimited();
        let mut s = ColSession::new(
            prog(),
            &db,
            ColConfig::default(),
            ColStrategy::Seminaive,
            ColSemantics::Stratified,
            &gov,
        )
        .unwrap();
        let rep = s
            .apply(&DeltaBatch::new().retract("E", edge(0, 1)))
            .unwrap();
        assert!(rep.fallback);
        assert_eq!(rep.retracted, 1);
        assert!(!s.state().preds["P"].contains(&edge(0, 1)));
        // bit-identical to from-scratch on the updated EDB
        let mut stats = EvalStats::default();
        let fresh = eval(
            &prog(),
            s.edb(),
            &ColConfig::default(),
            ColStrategy::Seminaive,
            ColSemantics::Stratified,
            &gov,
            &mut stats,
        )
        .unwrap();
        assert_eq!(s.state(), &fresh);
        assert_eq!(s.build_stats(), &stats);
    }

    #[test]
    fn col_rejects_idb_batches() {
        let mut db = Database::empty();
        db.set("E", Instance::from_rows([[atom(0u64), atom(1u64)]]));
        let mut s = ColSession::new(
            prog(),
            &db,
            ColConfig::default(),
            ColStrategy::Naive,
            ColSemantics::Stratified,
            &Governor::unlimited(),
        )
        .unwrap();
        let err = s
            .apply(&DeltaBatch::new().insert("P", edge(7, 8)))
            .unwrap_err();
        assert!(matches!(err, IvmError::NotEdb { pred } if pred == "P"));
    }
}
