//! EDB delta batches: what a maintenance session consumes.
//!
//! A [`DeltaBatch`] is a set of insertions and retractions against the
//! extensional database. Batches are *requests*; before maintenance runs
//! they are normalized against the current EDB into a [`NormalBatch`]
//! whose rows are guaranteed effective — insertions of rows already
//! present and retractions of rows already absent are dropped, and a row
//! both retracted and inserted in the same batch nets to "present"
//! (insertions win, matching `new = (old − retracts) ∪ inserts`).
//!
//! [`DeltaLog`] is the *internal* ledger of what a batch has changed so
//! far — EDB rows first, then each settled stratum's IDB churn. It is
//! what lets later strata reconstruct the pre-batch ("old") value of any
//! relation without keeping a full copy of the previous state: `old =
//! new − added + removed`.

use std::collections::{BTreeMap, BTreeSet};
use uset_guard::ckpt::codec::{Dec, Enc};
use uset_object::{Database, Instance, Value};

/// A batch of EDB insertions and retractions, built fluently:
///
/// ```
/// use uset_ivm::DeltaBatch;
/// use uset_object::{atom, Value};
/// let edge = |a: u64, b: u64| Value::Tuple(vec![atom(a), atom(b)]);
/// let batch = DeltaBatch::new().insert("E", edge(0, 1)).retract("E", edge(1, 2));
/// assert!(!batch.is_empty());
/// ```
///
/// The batch semantics are `new = (old − retracts) ∪ inserts`: a row
/// that appears on both sides ends up present.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    inserts: BTreeMap<String, BTreeSet<Value>>,
    retracts: BTreeMap<String, BTreeSet<Value>>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> DeltaBatch {
        DeltaBatch::default()
    }

    /// Request insertion of `row` into relation `rel`.
    pub fn insert(mut self, rel: &str, row: Value) -> DeltaBatch {
        self.inserts.entry(rel.to_owned()).or_default().insert(row);
        self
    }

    /// Request retraction of `row` from relation `rel`.
    pub fn retract(mut self, rel: &str, row: Value) -> DeltaBatch {
        self.retracts.entry(rel.to_owned()).or_default().insert(row);
        self
    }

    /// True when the batch requests nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.retracts.is_empty()
    }

    /// Every relation the batch touches.
    pub fn relations(&self) -> BTreeSet<&str> {
        self.inserts
            .keys()
            .chain(self.retracts.keys())
            .map(String::as_str)
            .collect()
    }

    /// Normalize against the current EDB: keep only effective rows.
    pub(crate) fn normalize(&self, edb: &Database) -> NormalBatch {
        let mut added: BTreeMap<String, Instance> = BTreeMap::new();
        let mut removed: BTreeMap<String, Instance> = BTreeMap::new();
        for (rel, rows) in &self.inserts {
            let current = edb.get_ref(rel);
            for row in rows {
                if !current.is_some_and(|i| i.contains(row)) {
                    added.entry(rel.clone()).or_default().insert(row.clone());
                }
            }
        }
        for (rel, rows) in &self.retracts {
            let Some(current) = edb.get_ref(rel) else {
                continue;
            };
            let wins = self.inserts.get(rel);
            for row in rows {
                if current.contains(row) && !wins.is_some_and(|w| w.contains(row)) {
                    removed.entry(rel.clone()).or_default().insert(row.clone());
                }
            }
        }
        NormalBatch { added, removed }
    }
}

/// A batch normalized against a concrete EDB: `added` rows are absent
/// from it, `removed` rows are present in it, and the two are disjoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NormalBatch {
    /// Effective insertions per relation.
    pub added: BTreeMap<String, Instance>,
    /// Effective retractions per relation.
    pub removed: BTreeMap<String, Instance>,
}

impl NormalBatch {
    /// Total effective insertions.
    pub fn inserted(&self) -> u64 {
        self.added.values().map(|i| i.len() as u64).sum()
    }

    /// Total effective retractions.
    pub fn retracted(&self) -> u64 {
        self.removed.values().map(|i| i.len() as u64).sum()
    }

    /// True when nothing effective remains after normalization.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Replay the batch onto an EDB (recovery folds the journal this way).
    pub(crate) fn apply_to(&self, edb: &mut Database) {
        for (rel, rows) in &self.removed {
            for row in rows.iter() {
                edb.remove_row(rel, row);
            }
        }
        for (rel, rows) in &self.added {
            for row in rows.iter() {
                edb.insert_row(rel, row);
            }
        }
    }

    /// Serialize for the checkpoint journal's delta records.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_instance_map(&self.added);
        e.put_instance_map(&self.removed);
        e.finish()
    }

    /// Decode a journal delta record.
    pub(crate) fn decode(bytes: &[u8]) -> Option<NormalBatch> {
        let mut d = Dec::new(bytes);
        let added = d.instance_map().ok()?;
        let removed = d.instance_map().ok()?;
        Some(NormalBatch { added, removed })
    }
}

/// Net change to one relation within the current batch.
#[derive(Clone, Debug, Default)]
pub(crate) struct RelDelta {
    /// Rows present now that were absent before the batch.
    pub added: BTreeSet<Value>,
    /// Rows absent now that were present before the batch.
    pub removed: BTreeSet<Value>,
}

/// The ledger of everything the current batch has changed so far, EDB
/// and settled-strata IDB alike. `added` and `removed` stay disjoint: a
/// remove of a row noted as added cancels (and vice versa), so the
/// ledger always describes the *net* difference from the pre-batch
/// state.
#[derive(Clone, Debug, Default)]
pub(crate) struct DeltaLog {
    pub rels: BTreeMap<String, RelDelta>,
}

impl DeltaLog {
    /// Note that `row` was inserted into `rel`.
    pub fn note_add(&mut self, rel: &str, row: Value) {
        let d = self.rels.entry(rel.to_owned()).or_default();
        if !d.removed.remove(&row) {
            d.added.insert(row);
        }
    }

    /// Note that `row` was removed from `rel`.
    pub fn note_remove(&mut self, rel: &str, row: Value) {
        let d = self.rels.entry(rel.to_owned()).or_default();
        if !d.added.remove(&row) {
            d.removed.insert(row);
        }
    }

    /// The net delta for `rel`, if any.
    pub fn delta(&self, rel: &str) -> Option<&RelDelta> {
        self.rels
            .get(rel)
            .filter(|d| !(d.added.is_empty() && d.removed.is_empty()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_object::atom;

    fn edge(a: u64, b: u64) -> Value {
        Value::Tuple(vec![atom(a), atom(b)])
    }

    #[test]
    fn normalization_drops_ineffective_rows_and_lets_inserts_win() {
        let mut edb = Database::empty();
        edb.set("E", Instance::from_rows([[atom(0u64), atom(1u64)]]));
        let batch = DeltaBatch::new()
            .insert("E", edge(0, 1)) // already present: dropped
            .insert("E", edge(1, 2)) // effective
            .retract("E", edge(1, 2)) // also inserted: insert wins
            .retract("E", edge(5, 6)) // absent: dropped
            .retract("E", edge(0, 1)); // present AND not re-inserted? it IS inserted above
        let norm = batch.normalize(&edb);
        assert_eq!(norm.inserted(), 1);
        assert_eq!(norm.retracted(), 0, "insert wins over retract of (0,1)");
        assert!(norm.added["E"].contains(&edge(1, 2)));
    }

    #[test]
    fn normalized_batch_roundtrips_through_the_codec() {
        let mut edb = Database::empty();
        edb.set("E", Instance::from_rows([[atom(0u64), atom(1u64)]]));
        let norm = DeltaBatch::new()
            .insert("E", edge(3, 4))
            .retract("E", edge(0, 1))
            .normalize(&edb);
        let decoded = NormalBatch::decode(&norm.encode()).expect("roundtrip");
        assert_eq!(decoded, norm);
    }

    #[test]
    fn delta_log_cancels_opposing_notes() {
        let mut log = DeltaLog::default();
        log.note_remove("T", edge(1, 2));
        log.note_add("T", edge(1, 2)); // reinsertion cancels the removal
        assert!(log.delta("T").is_none());
        log.note_add("T", edge(3, 4));
        let d = log.delta("T").unwrap();
        assert!(d.added.contains(&edge(3, 4)) && d.removed.is_empty());
    }
}
