//! Delta-rule firing: the join loop shared by counting and DRed.
//!
//! Incremental maintenance never re-fires a rule over whole relations.
//! It fires *delta rules*: one body position is restricted to the rows
//! that changed, positions to its left read the **new** value of their
//! relation and positions to its right read the **old** value. Summing
//! over every changed position telescopes exactly to the difference
//! between the rule's new and old output — the classical identity
//!
//! ```text
//! Δ(R₁ ⋈ … ⋈ Rₙ) = Σᵢ  New(R₁..Rᵢ₋₁) ⋈ ΔRᵢ ⋈ Old(Rᵢ₊₁..Rₙ)
//! ```
//!
//! which holds with *signed* deltas (insertions count +1, deletions −1)
//! and therefore with multiplicities, the property counting maintenance
//! depends on. DRed reuses the same loop with both sides pinned to a
//! single view (all-old for over-deletion, all-new for re-insertion).
//!
//! Old values are never stored: a relation's old instance is
//! reconstructed on demand as `new − added + removed` from the batch's
//! [`DeltaLog`] and memoized in a per-phase cache. The literal order of
//! the source rule is preserved, so a program that fires without
//! unbound-variable errors from scratch fires identically here.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use uset_deductive::datalog::{instantiate, match_row_cached, DlBindings, RowCache};
use uset_deductive::{DlError, DlRule};
use uset_object::{Database, EvalStats, Instance, Value};

use crate::delta::DeltaLog;

/// Which value of a relation a body position reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum View {
    /// The current (post-change) state.
    New,
    /// The pre-batch state, reconstructed from the delta log.
    Old,
}

/// Resolve a relation under a view. `None` means "no such relation"
/// (empty): positive literals produce no bindings, negated ones pass.
fn view_instance<'a>(
    pred: &str,
    view: View,
    state: &'a Database,
    log: &DeltaLog,
    cache: &'a mut BTreeMap<String, Instance>,
) -> Option<&'a Instance> {
    match view {
        View::New => state.get_ref(pred),
        View::Old => {
            if !cache.contains_key(pred) {
                let mut inst = state.get(pred);
                if let Some(d) = log.rels.get(pred) {
                    for row in &d.added {
                        inst.remove(row);
                    }
                    for row in &d.removed {
                        inst.insert(row.clone());
                    }
                }
                cache.insert(pred.to_owned(), inst);
            }
            cache.get(pred)
        }
    }
}

/// Fire one delta rule: body position `pos` is restricted to
/// `delta_rows`, positions before it read the `left` view, positions
/// after it the `right` view. For a *negated* literal at `pos` the
/// caller passes the rows whose membership flip makes the literal's
/// truth flip (the complement's delta); the join keeps a binding when
/// its instantiated atom is one of them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn delta_bindings(
    rule: &DlRule,
    pos: usize,
    delta_rows: &BTreeSet<Value>,
    left: View,
    right: View,
    state: &Database,
    log: &DeltaLog,
    cache: &mut BTreeMap<String, Instance>,
    stats: &mut EvalStats,
) -> Result<Vec<DlBindings>, DlError> {
    let mut bindings: Vec<DlBindings> = vec![HashMap::new()];
    for (i, lit) in rule.body.iter().enumerate() {
        if bindings.is_empty() {
            break;
        }
        let mut out = Vec::new();
        if i == pos {
            if lit.positive {
                let mut rc_cache = RowCache::new();
                for b in &bindings {
                    for row in delta_rows {
                        match_row_cached(&lit.atom.args, row, b, &mut out, &mut rc_cache);
                    }
                }
            } else {
                for b in &bindings {
                    let vals: Vec<Value> = lit
                        .atom
                        .args
                        .iter()
                        .map(|t| instantiate(t, b, &lit.atom.pred))
                        .collect::<Result<_, _>>()?;
                    if delta_rows.contains(&Value::Tuple(vals)) {
                        out.push(b.clone());
                    }
                }
            }
        } else {
            let view = if i < pos { left } else { right };
            if lit.positive {
                if let Some(inst) = view_instance(&lit.atom.pred, view, state, log, cache) {
                    let mut rc_cache = RowCache::new();
                    for b in &bindings {
                        for row in inst.iter() {
                            match_row_cached(&lit.atom.args, row, b, &mut out, &mut rc_cache);
                        }
                    }
                }
            } else {
                for b in &bindings {
                    let vals: Vec<Value> = lit
                        .atom
                        .args
                        .iter()
                        .map(|t| instantiate(t, b, &lit.atom.pred))
                        .collect::<Result<_, _>>()?;
                    let tup = Value::Tuple(vals);
                    let present = view_instance(&lit.atom.pred, view, state, log, cache)
                        .is_some_and(|inst| inst.contains(&tup));
                    if !present {
                        out.push(b.clone());
                    }
                }
            }
        }
        bindings = out;
    }
    stats.rules_fired += 1;
    stats.tuples_derived += bindings.len() as u64;
    Ok(bindings)
}

/// Evaluate a full rule body from a seed binding, every position at
/// `view`. Rederivation asks "does any derivation survive?" by seeding
/// with the head binding of a deleted fact and checking non-emptiness.
#[allow(clippy::too_many_arguments)]
pub(crate) fn body_bindings(
    rule: &DlRule,
    seed: &DlBindings,
    view: View,
    state: &Database,
    log: &DeltaLog,
    cache: &mut BTreeMap<String, Instance>,
    stats: &mut EvalStats,
) -> Result<Vec<DlBindings>, DlError> {
    let mut bindings: Vec<DlBindings> = vec![seed.clone()];
    for lit in &rule.body {
        if bindings.is_empty() {
            break;
        }
        let mut out = Vec::new();
        if lit.positive {
            if let Some(inst) = view_instance(&lit.atom.pred, view, state, log, cache) {
                let mut rc_cache = RowCache::new();
                for b in &bindings {
                    for row in inst.iter() {
                        match_row_cached(&lit.atom.args, row, b, &mut out, &mut rc_cache);
                    }
                }
            }
        } else {
            for b in &bindings {
                let vals: Vec<Value> = lit
                    .atom
                    .args
                    .iter()
                    .map(|t| instantiate(t, b, &lit.atom.pred))
                    .collect::<Result<_, _>>()?;
                let tup = Value::Tuple(vals);
                let present = view_instance(&lit.atom.pred, view, state, log, cache)
                    .is_some_and(|inst| inst.contains(&tup));
                if !present {
                    out.push(b.clone());
                }
            }
        }
        bindings = out;
    }
    stats.rules_fired += 1;
    stats.tuples_derived += bindings.len() as u64;
    Ok(bindings)
}

/// Ground a rule's head under a final binding.
pub(crate) fn head_row(rule: &DlRule, b: &DlBindings) -> Result<Value, DlError> {
    let vals: Vec<Value> = rule
        .head
        .args
        .iter()
        .map(|t| instantiate(t, b, &rule.head.pred))
        .collect::<Result<_, _>>()?;
    Ok(Value::Tuple(vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_deductive::{DlAtom, DlTerm};
    use uset_object::atom;

    fn edge(a: u64, b: u64) -> Value {
        Value::Tuple(vec![atom(a), atom(b)])
    }

    // T(x,z) ← E(x,y), T(y,z)
    fn tc_rec_rule() -> DlRule {
        let v = DlTerm::var;
        DlRule::new(
            DlAtom::new("T", vec![v("x"), v("z")]),
            vec![
                (true, DlAtom::new("E", vec![v("x"), v("y")])),
                (true, DlAtom::new("T", vec![v("y"), v("z")])),
            ],
        )
    }

    #[test]
    fn old_view_reconstructs_the_pre_batch_relation() {
        let mut state = Database::empty();
        state.set("E", Instance::from_rows([[atom(0u64), atom(1u64)]]));
        let mut log = DeltaLog::default();
        // the batch added (0,1) and removed (5,6)
        log.note_add("E", edge(0, 1));
        log.note_remove("E", edge(5, 6));
        let mut cache = BTreeMap::new();
        let old = view_instance("E", View::Old, &state, &log, &mut cache).unwrap();
        assert!(!old.contains(&edge(0, 1)), "added row absent from old");
        assert!(old.contains(&edge(5, 6)), "removed row present in old");
    }

    #[test]
    fn delta_firing_joins_only_through_the_changed_rows() {
        // E = {(0,1),(1,2)}, T = {(0,1),(1,2),(0,2)}; delta: E gained (2,3).
        let mut state = Database::empty();
        state.set(
            "E",
            Instance::from_rows([[atom(0u64), atom(1u64)], [atom(1u64), atom(2u64)]]),
        );
        state.set(
            "T",
            Instance::from_rows([
                [atom(0u64), atom(1u64)],
                [atom(1u64), atom(2u64)],
                [atom(0u64), atom(2u64)],
            ]),
        );
        let log = DeltaLog::default();
        let mut cache = BTreeMap::new();
        let mut stats = EvalStats::default();
        let delta: BTreeSet<Value> = [edge(1, 2)].into();
        // restrict position 1 (the T literal) to the single delta row
        let bs = delta_bindings(
            &tc_rec_rule(),
            1,
            &delta,
            View::New,
            View::Old,
            &state,
            &log,
            &mut cache,
            &mut stats,
        )
        .unwrap();
        // E(x,1) has the single row (0,1) → one binding {x:0, y:1, z:2}
        assert_eq!(bs.len(), 1);
        assert_eq!(head_row(&tc_rec_rule(), &bs[0]).unwrap(), edge(0, 2));
        assert_eq!(stats.tuples_derived, 1);
    }
}
