//! # uset-ivm — incremental maintenance of materialized fixpoints
//!
//! The paper's query languages are *computable queries*: a DATALOG¬ or
//! COL program denotes a function from database to database, and every
//! engine in this workspace computes it from scratch. This crate adds
//! the missing lifecycle: a [`MaterializedSession`] holds a program's
//! materialized fixpoint and absorbs batches of EDB **insertions and
//! retractions** ([`DeltaBatch`]), bringing the state to exactly what a
//! from-scratch re-evaluation of the updated EDB would produce — without
//! paying for one.
//!
//! Two classical algorithms split the work along the program's
//! dependency structure (the split is planned statically by
//! [`uset_opt::maintenance_plan`]):
//!
//! * **Counting** for non-recursive strata: each derived fact carries
//!   its exact number of derivations; delta rules (see [`fire`] in the
//!   crate source) adjust the counts with signed multiplicities and a
//!   fact dies when its count reaches zero.
//! * **Delete-and-rederive (DRed)** for recursive strata: over-delete
//!   everything a retraction could have supported, rederive what still
//!   has an independent proof (shardable across [`uset_par`] workers),
//!   then propagate insertions semi-naively.
//!
//! Shapes with no sound incremental story are detected up front and
//! served by transparent recomputation: **inflationary** fixpoints are
//! not change-monotone (a retraction can invalidate the entire firing
//! history), and **COL** data functions accumulate set values that do
//! not decompose under retraction. `USET_IVM=recompute` forces the same
//! fallback everywhere ([`IvmMode`]).
//!
//! Sessions are governed ([`uset_guard`]): every delta firing, fact
//! insertion, and fact retraction charges the engine's guard, and a
//! budget trip **rolls the batch back** — apply is atomic; on error the
//! session still holds the pre-batch state. When the governor carries a
//! checkpoint spec, applied batches are journaled as logical deltas
//! ([`uset_guard::ckpt`]), so a crashed session recovers by folding the
//! journal into the EDB and rebuilding.

pub mod col;
pub mod datalog;
mod delta;
mod fire;

pub use col::{ColSemantics, ColSession};
pub use datalog::DatalogSession;
pub use delta::{DeltaBatch, NormalBatch};

use uset_deductive::{ColEvalError, DlError};
use uset_guard::Trip;
use uset_object::EvalStats;

/// Which DATALOG¬ semantics the session materializes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Semantics {
    /// Stratified, naive per-stratum fixpoints.
    Stratified,
    /// Stratified with semi-naive delta rounds.
    StratifiedSeminaive,
    /// Inflationary (fires all rules on the growing state). Not
    /// change-monotone: sessions fall back to recomputation.
    Inflationary,
}

/// The maintenance mode knob (`USET_IVM`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IvmMode {
    /// Incremental where the plan allows, recompute otherwise.
    #[default]
    Auto,
    /// Always recompute from scratch (the safety hatch).
    Recompute,
}

impl IvmMode {
    /// Read `USET_IVM`: `recompute`, `off`, or `0` force recomputation;
    /// anything else (including unset) is [`IvmMode::Auto`].
    pub fn from_env() -> IvmMode {
        match std::env::var("USET_IVM").ok().as_deref() {
            Some("recompute") | Some("off") | Some("0") => IvmMode::Recompute,
            _ => IvmMode::Auto,
        }
    }
}

/// What one [`DeltaBatch`] application did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// 1-based batch number within the session.
    pub batch: u64,
    /// Effective EDB insertions (after normalization).
    pub inserted: u64,
    /// Effective EDB retractions (after normalization).
    pub retracted: u64,
    /// Derived (IDB) facts added to the materialized state.
    pub idb_added: u64,
    /// Derived (IDB) facts removed from the materialized state.
    pub idb_removed: u64,
    /// True when the batch was served by full recomputation.
    pub fallback: bool,
    /// Work this apply performed. On the fallback path these are exactly
    /// the from-scratch engine's counters; on the incremental path they
    /// count delta firings and are (by design) much smaller.
    pub stats: EvalStats,
}

/// Maintenance failure. Apply is atomic: on any error the session still
/// holds the pre-batch state.
#[derive(Clone, Debug)]
pub enum IvmError {
    /// The batch touches a derived (IDB) predicate; sessions accept EDB
    /// deltas only.
    NotEdb {
        /// The offending predicate.
        pred: String,
    },
    /// A resource budget tripped mid-batch; the batch was rolled back.
    Exhausted {
        /// What tripped.
        trip: Trip,
        /// Work counters at the moment of the trip.
        stats: EvalStats,
    },
    /// The DATALOG¬ engine rejected the program or its evaluation.
    Datalog(DlError),
    /// The COL engine rejected the program or its evaluation.
    Col(ColEvalError),
}

impl std::fmt::Display for IvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IvmError::NotEdb { pred } => write!(
                f,
                "delta batch touches {pred}, which is derived (IDB); sessions accept EDB deltas only"
            ),
            IvmError::Exhausted { trip, stats } => {
                write!(f, "maintenance exhausted: {trip} [batch rolled back; {stats}]")
            }
            IvmError::Datalog(e) => write!(f, "datalog: {e}"),
            IvmError::Col(e) => write!(f, "col: {e}"),
        }
    }
}

impl std::error::Error for IvmError {}

/// A maintained fixpoint over either engine family, behind one `apply`
/// surface.
pub enum MaterializedSession {
    /// A DATALOG¬ session (incremental where the plan allows).
    Datalog(DatalogSession),
    /// A COL session (always recompute-on-apply).
    Col(ColSession),
}

impl MaterializedSession {
    /// Open a DATALOG¬ session (mode from `USET_IVM`).
    pub fn datalog(
        prog: uset_deductive::DatalogProgram,
        db: &uset_object::Database,
        semantics: Semantics,
        governor: &uset_guard::Governor,
    ) -> Result<MaterializedSession, IvmError> {
        DatalogSession::new(prog, db, semantics, governor).map(MaterializedSession::Datalog)
    }

    /// Open a COL session.
    pub fn col(
        prog: uset_deductive::ColProgram,
        db: &uset_object::Database,
        config: uset_deductive::ColConfig,
        strategy: uset_deductive::ColStrategy,
        semantics: ColSemantics,
        governor: &uset_guard::Governor,
    ) -> Result<MaterializedSession, IvmError> {
        ColSession::new(prog, db, config, strategy, semantics, governor)
            .map(MaterializedSession::Col)
    }

    /// Apply one delta batch.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<ApplyReport, IvmError> {
        match self {
            MaterializedSession::Datalog(s) => s.apply(batch),
            MaterializedSession::Col(s) => s.apply(batch),
        }
    }

    /// Batches applied so far.
    pub fn batches(&self) -> u64 {
        match self {
            MaterializedSession::Datalog(s) => s.batches(),
            MaterializedSession::Col(s) => s.batches(),
        }
    }

    /// Close the checkpoint journal cleanly, if one is open.
    pub fn finish(&mut self) {
        match self {
            MaterializedSession::Datalog(s) => s.finish(),
            MaterializedSession::Col(s) => s.finish(),
        }
    }

    /// The DATALOG¬ session, when that is what this is.
    pub fn as_datalog(&self) -> Option<&DatalogSession> {
        match self {
            MaterializedSession::Datalog(s) => Some(s),
            MaterializedSession::Col(_) => None,
        }
    }

    /// The COL session, when that is what this is.
    pub fn as_col(&self) -> Option<&ColSession> {
        match self {
            MaterializedSession::Col(s) => Some(s),
            MaterializedSession::Datalog(_) => None,
        }
    }
}
