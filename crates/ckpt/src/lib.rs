//! Durable checkpoints, write-ahead round logs, and crash recovery for
//! the untyped-sets engines.
//!
//! The paper's languages are C-complete, so legitimate evaluations run
//! for hours (powerset under `while`, Theorem 4.1b; deep terminal
//! invention, Theorem 6.4). `uset-guard` already makes such runs
//! *interruptible* — this crate makes them *resumable*: every
//! round-structured engine can persist its round-consistent loop state
//! through a [`Session`] and, after a crash, recover the last durable
//! round and continue **bit-identically** to an uninterrupted run —
//! final states, `EvalStats`, budget accounting, and the post-resume
//! trace tail all match.
//!
//! ## On-disk format (DESIGN.md §13)
//!
//! A session owns one directory (`<dir>/<engine>/`). It contains at most
//! one *snapshot* + *write-ahead log* pair at a time:
//!
//! * `snap-<round>.ckpt` — a full serialized round: magic + format
//!   version, engine label, run fingerprint, round header (round number,
//!   [`EvalStats`], guard counters, elapsed wall-clock), the engine's
//!   payload bytes, and a trailing CRC-32 over everything before it.
//!   Snapshots are committed atomically: written to a tmp file, synced,
//!   then renamed into place.
//! * `wal-<round>.log` — one appended record per committed round since
//!   the snapshot. Each record is `[len][body][crc32(body)]`, where the
//!   body carries a kind tag and the same round header, then either a
//!   *byte delta* against the previous round's payload (common prefix /
//!   common suffix / middle — [`Session::commit`]) or an opaque
//!   *engine-level delta* that the engine folds back into the snapshot
//!   on recovery ([`Session::commit_delta`]), so cheap rounds append
//!   cheap records. Records are appended with a single `write_all`.
//!
//! Every `every`-th commit rolls the pair: a fresh snapshot is committed
//! and a fresh (empty) WAL replaces the old one; the previous pair is
//! deleted only after the new snapshot has been renamed into place.
//!
//! Commits are buffered by default ([`SyncMode::Normal`]): completed
//! writes survive *process death* (the tested chaos model) in the page
//! cache without paying an fsync per round; a power loss may roll back
//! to an older durable prefix, never to a corrupt state. `sync=full`
//! fsyncs every commit for power-loss durability.
//!
//! ## Recovery
//!
//! [`Session::recover`] scans the directory, takes the newest snapshot
//! whose CRC (and engine label and fingerprint) verify — falling back to
//! older ones if the newest is damaged — then replays its WAL prefix:
//! records are applied in order while lengths, CRCs, and round
//! monotonicity hold; the first torn or corrupt record ends replay and
//! the invalid tail is truncated away so the next append starts from the
//! last durable round. A checkpoint that fails *any* validation is never
//! loaded.
//!
//! ## Never fail the run
//!
//! Durability must not turn a working evaluation into a failing one: all
//! I/O errors during commit poison the session (with a note on stderr)
//! and the run simply continues unprotected, exactly like `uset-trace`'s
//! degraded mode.
//!
//! The crate is dependency-free (only `uset-object`, for the state
//! types) and knows nothing about the engines; `uset-guard` re-exports
//! it and carries the knob ([`Spec`], `USET_CKPT=dir:<path>[,every=N]`)
//! on the `Governor`.

pub mod codec;

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use uset_object::EvalStats;

pub use codec::{crc32, fnv64, CodecError, Dec, Enc};

/// Magic prefix of a snapshot file: identifies the format and its
/// version in one token. Bump the trailing digit on any layout change —
/// recovery treats an unknown magic as an invalid snapshot.
pub const SNAP_MAGIC: &[u8; 8] = b"USETCKP2";

/// Default snapshot cadence: a full snapshot every this many commits,
/// WAL deltas in between.
pub const DEFAULT_EVERY: u64 = 16;

/// How hard a commit pushes bytes toward the platter.
///
/// The chaos model this crate is tested against is *process death*: the
/// evaluation is killed (or dies) between or inside commits. For that
/// model [`SyncMode::Normal`] is already durable — completed `write`s
/// and `rename`s survive the process in the page cache — and it keeps
/// the per-round commit cost down where the `ablation/ckpt_overhead`
/// bench demands (< 10% on a semi-naive transitive closure).
///
/// Power loss is a strictly harsher model: under `Normal` the kernel may
/// reorder or drop recent writes, so a machine-level crash can lose
/// recent rounds — recovery then falls back to the last prefix that
/// validates (or starts fresh), never to a corrupt state, because every
/// snapshot and record is CRC-framed. [`SyncMode::Full`] closes that gap
/// by fsyncing every commit, like SQLite's `synchronous=FULL` versus
/// `NORMAL`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncMode {
    /// Buffered writes, no per-commit fsync (the default): durable
    /// against process death, prefix-durable against power loss.
    #[default]
    Normal,
    /// fsync data and directory on every commit: durable against power
    /// loss at a heavy per-round cost.
    Full,
}

/// Checkpoint configuration: where to persist, how often to roll the
/// snapshot, and how hard to sync. Parsed from
/// `USET_CKPT=dir:<path>[,every=N][,sync=full|normal]` (or `off`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spec {
    /// Root directory; each engine gets a subdirectory under it.
    pub dir: PathBuf,
    /// Full-snapshot cadence in commits (≥ 1); WAL records in between.
    pub every: u64,
    /// Commit durability level (see [`SyncMode`]).
    pub sync: SyncMode,
}

impl Spec {
    /// A spec writing under `dir` with the default cadence.
    pub fn new(dir: impl Into<PathBuf>) -> Spec {
        Spec {
            dir: dir.into(),
            every: DEFAULT_EVERY,
            sync: SyncMode::default(),
        }
    }

    /// Override the snapshot cadence (clamped to ≥ 1).
    pub fn with_every(mut self, every: u64) -> Spec {
        self.every = every.max(1);
        self
    }

    /// Override the commit durability level.
    pub fn with_sync(mut self, sync: SyncMode) -> Spec {
        self.sync = sync;
        self
    }

    /// Read `USET_CKPT` from the environment. Unset, empty, `off`, or an
    /// unusable spec (with a note on stderr) disable checkpointing.
    pub fn from_env() -> Option<Spec> {
        match std::env::var("USET_CKPT") {
            Ok(raw) => match Spec::parse(&raw) {
                Ok(spec) => spec,
                Err(err) => {
                    eprintln!("uset-ckpt: ignoring USET_CKPT={raw:?}: {err}");
                    None
                }
            },
            Err(_) => None,
        }
    }

    /// Parse a `USET_CKPT`-style spec: `off` (or empty) → `None`,
    /// `dir:<path>[,every=N][,sync=full|normal]` → a spec. Options are
    /// peeled off the right so the path itself may contain commas.
    pub fn parse(spec: &str) -> Result<Option<Spec>, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "off" || spec == "0" {
            return Ok(None);
        }
        let mut path = spec.strip_prefix("dir:").ok_or_else(|| {
            format!("unknown ckpt spec {spec:?} (expected off | dir:<path>[,every=N][,sync=full])")
        })?;
        let mut every = DEFAULT_EVERY;
        let mut sync = SyncMode::default();
        while let Some((head, opt)) = path.rsplit_once(',') {
            if let Some(n) = opt.strip_prefix("every=") {
                every = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad every={n:?} (expected a positive integer)"))?;
                if every == 0 {
                    return Err("every=0 is not a cadence; use off to disable".into());
                }
            } else if let Some(m) = opt.strip_prefix("sync=") {
                sync = match m.trim() {
                    "full" => SyncMode::Full,
                    "normal" => SyncMode::Normal,
                    _ => return Err(format!("bad sync={m:?} (expected full or normal)")),
                };
            } else {
                break; // not an option — the comma belongs to the path
            }
            path = head;
        }
        if path.is_empty() {
            return Err("dir: needs a path (USET_CKPT=dir:/tmp/ckpt)".into());
        }
        Ok(Some(Spec::new(path).with_every(every).with_sync(sync)))
    }
}

/// Deterministic fault injection inside the checkpoint writer itself,
/// for chaos tests: damage the `record`-th WAL append (1-based) and then
/// poison the session, simulating a process that died mid-write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Chaos {
    /// Write only the first `keep_bytes` bytes of the record (a torn
    /// write), then die.
    TornWrite {
        /// 1-based WAL append to damage.
        record: u64,
        /// How many bytes of the framed record reach the disk.
        keep_bytes: usize,
    },
    /// Flip one bit of the byte at `offset` within the framed record (a
    /// silent media error), then die.
    FlipByte {
        /// 1-based WAL append to damage.
        record: u64,
        /// Byte offset within the framed record to corrupt.
        offset: usize,
    },
}

/// One committed round: the engine's loop-state payload plus the header
/// every record carries — round number, work counters, and the guard
/// meters that make budgets compose across a resume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundCkpt {
    /// Monotone round id (engine rounds, invention levels, GTM stride
    /// boundaries — each engine documents its unit).
    pub round: u64,
    /// Work counters at the end of the round.
    pub stats: EvalStats,
    /// Guard steps charged so far.
    pub steps: u64,
    /// Guard facts accounted so far.
    pub facts: u64,
    /// Guard progress ticks so far.
    pub ticks: u64,
    /// Guard value-size high-water mark so far.
    pub value_hwm: u64,
    /// Wall-clock consumed so far, in microseconds — a resumed run
    /// debits the *remaining* wall budget, not a fresh clock.
    pub elapsed_micros: u64,
    /// The engine's serialized loop state (see [`codec`]).
    pub payload: Vec<u8>,
}

/// What [`Session::recover`] found: the last durable round, ready for
/// the engine to decode and resume from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recovered {
    /// Round id of the recovered state.
    pub round: u64,
    /// Work counters as of that round.
    pub stats: EvalStats,
    /// Guard counters as of that round.
    pub steps: u64,
    /// Guard facts as of that round.
    pub facts: u64,
    /// Guard ticks as of that round.
    pub ticks: u64,
    /// Guard value-size high-water mark as of that round.
    pub value_hwm: u64,
    /// Wall-clock the interrupted run had consumed, in microseconds.
    pub elapsed_micros: u64,
    /// The serialized loop state to decode. For a session committed
    /// through [`Session::commit`] this is the *complete* state of
    /// `round`; for one committed through [`Session::commit_delta`] it
    /// is the last snapshot's complete state, with `deltas` still to
    /// fold in.
    pub payload: Vec<u8>,
    /// Engine-level delta payloads appended after the snapshot (in
    /// commit order), for the engine to fold into `payload`. Empty
    /// unless the run committed through [`Session::commit_delta`].
    pub deltas: Vec<Vec<u8>>,
}

// the 7 fixed header fields shared by snapshot bodies and WAL records
fn put_header(e: &mut Enc, rc: &RoundCkpt) {
    e.put_u64(rc.round);
    e.put_stats(&rc.stats);
    e.put_u64(rc.steps);
    e.put_u64(rc.facts);
    e.put_u64(rc.ticks);
    e.put_u64(rc.value_hwm);
    e.put_u64(rc.elapsed_micros);
}

fn take_header(d: &mut Dec<'_>) -> Result<Recovered, CodecError> {
    Ok(Recovered {
        round: d.u64()?,
        stats: d.stats()?,
        steps: d.u64()?,
        facts: d.u64()?,
        ticks: d.u64()?,
        value_hwm: d.u64()?,
        elapsed_micros: d.u64()?,
        payload: Vec::new(),
        deltas: Vec::new(),
    })
}

/// WAL record kind: the body carries a byte delta (common prefix /
/// suffix / middle) against the previous round's complete payload.
const REC_BYTE_DELTA: u8 = 0;
/// WAL record kind: the body carries an opaque engine-level delta that
/// only the engine knows how to fold into the snapshot state.
const REC_ENGINE_DELTA: u8 = 1;

/// Compute the (prefix, suffix, middle) byte delta from `old` to `new`:
/// `new = old[..prefix] ++ mid ++ old[old.len()-suffix..]`.
fn byte_delta<'a>(old: &[u8], new: &'a [u8]) -> (usize, usize, &'a [u8]) {
    let prefix = old
        .iter()
        .zip(new.iter())
        .take_while(|(a, b)| a == b)
        .count();
    let max_suffix = old.len().min(new.len()) - prefix;
    let suffix = old[prefix..]
        .iter()
        .rev()
        .zip(new[prefix..].iter().rev())
        .take(max_suffix)
        .take_while(|(a, b)| a == b)
        .count();
    (prefix, suffix, &new[prefix..new.len() - suffix])
}

fn apply_delta(old: &[u8], prefix: usize, suffix: usize, mid: &[u8]) -> Option<Vec<u8>> {
    if prefix.checked_add(suffix)? > old.len() {
        return None;
    }
    let mut out = Vec::with_capacity(prefix + mid.len() + suffix);
    out.extend_from_slice(&old[..prefix]);
    out.extend_from_slice(mid);
    out.extend_from_slice(&old[old.len() - suffix..]);
    Some(out)
}

fn snap_path(dir: &Path, round: u64) -> PathBuf {
    dir.join(format!("snap-{round:020}.ckpt"))
}

fn wal_path(dir: &Path, round: u64) -> PathBuf {
    dir.join(format!("wal-{round:020}.log"))
}

/// Parse `snap-<round>.ckpt` / `wal-<round>.log` names back to rounds.
fn parse_round(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

// best-effort directory fsync so a rename is durable before we delete
// the files it replaces; not all platforms support it, so errors are
// ignored (the commit protocol is still crash-safe, just not
// power-loss-safe on those platforms)
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// One engine run's checkpoint writer/recoverer over a directory.
///
/// Lifecycle: [`Session::open`] → [`Session::recover`] (optional) → one
/// [`Session::commit`] per completed round → [`Session::finish`] on
/// successful completion (which clears the directory so a later fresh
/// run does not resume a finished computation).
#[derive(Debug)]
pub struct Session {
    dir: PathBuf,
    engine: String,
    fingerprint: u64,
    every: u64,
    sync: SyncMode,
    /// Open WAL appender (None until the first snapshot commits).
    wal: Option<File>,
    /// WAL appends since the last snapshot.
    since_snap: u64,
    /// Round of the current snapshot/WAL pair.
    snap_round: u64,
    /// Last committed round id (monotonicity check).
    last_round: Option<u64>,
    /// Payload bytes of the last committed round (delta base).
    prev_payload: Vec<u8>,
    /// WAL appends so far (drives [`Chaos`] triggering).
    appends: u64,
    chaos: Option<Chaos>,
    poisoned: bool,
}

impl Session {
    /// Open (creating the directory) a session for `engine` under
    /// `spec.dir`. The `fingerprint` identifies the computation — hash
    /// of the program and input — so recovery never resumes a checkpoint
    /// belonging to a *different* computation that happened to share the
    /// directory. Returns `None` (with a note on stderr) if the
    /// directory cannot be created.
    pub fn open(spec: &Spec, engine: &str, fingerprint: u64) -> Option<Session> {
        let dir = spec.dir.join(engine);
        if let Err(err) = fs::create_dir_all(&dir) {
            eprintln!("uset-ckpt: cannot create {}: {err}", dir.display());
            return None;
        }
        Some(Session {
            dir,
            engine: engine.to_owned(),
            fingerprint,
            every: spec.every.max(1),
            sync: spec.sync,
            wal: None,
            since_snap: 0,
            snap_round: 0,
            last_round: None,
            prev_payload: Vec::new(),
            appends: 0,
            chaos: None,
            poisoned: false,
        })
    }

    /// Arm deterministic writer-side fault injection (chaos tests only).
    pub fn with_chaos(mut self, chaos: Chaos) -> Session {
        self.chaos = Some(chaos);
        self
    }

    /// True once an I/O error (or injected crash) stopped this session
    /// from persisting; the run continues, unprotected.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The directory this session persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn poison(&mut self, what: &str, err: &dyn std::fmt::Display) {
        if !self.poisoned {
            eprintln!(
                "uset-ckpt: {what} failed in {}: {err}; checkpointing disabled for this run",
                self.dir.display()
            );
        }
        self.poisoned = true;
        self.wal = None;
    }

    /// Scan the directory for the newest valid snapshot of *this*
    /// computation, replay its WAL's valid prefix, truncate any torn or
    /// corrupt tail, and return the last durable round. `None` means no
    /// usable checkpoint — start fresh. Also positions the session so
    /// subsequent [`Session::commit`] calls append after the recovered
    /// round.
    pub fn recover(&mut self) -> Option<Recovered> {
        if self.poisoned {
            return None;
        }
        // stale tmp files are uncommitted by construction
        let mut snaps: Vec<u64> = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return None,
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("tmp-") {
                let _ = fs::remove_file(entry.path());
            } else if let Some(r) = parse_round(&name, "snap-", ".ckpt") {
                snaps.push(r);
            }
        }
        snaps.sort_unstable_by(|a, b| b.cmp(a));
        for round in snaps {
            if let Some(rec) = self.try_recover_from(round) {
                return Some(rec);
            }
        }
        None
    }

    fn try_recover_from(&mut self, round: u64) -> Option<Recovered> {
        let bytes = fs::read(snap_path(&self.dir, round)).ok()?;
        let rec = self.validate_snapshot(&bytes)?;
        if rec.round != round {
            return None;
        }
        // replay the WAL's valid prefix
        let wal = wal_path(&self.dir, round);
        let (rec, valid_len) = match fs::read(&wal) {
            Ok(log) => self.replay_wal(rec, &log),
            // a missing WAL means the snapshot committed but the fresh
            // WAL create did not survive; the snapshot alone is durable
            Err(_) => {
                let _ = File::create(&wal);
                self.since_snap = 0;
                (rec, 0)
            }
        };
        // truncate the torn/corrupt tail so appends resume after the
        // last durable record
        let appender = OpenOptions::new().append(true).open(&wal).ok()?;
        if let Ok(meta) = appender.metadata() {
            if meta.len() > valid_len {
                let _ = appender.set_len(valid_len);
            }
        }
        self.wal = Some(appender);
        self.snap_round = round;
        self.prev_payload = rec.payload.clone();
        self.last_round = Some(rec.round);
        Some(rec)
    }

    /// Validate one snapshot file: magic, engine, fingerprint, CRC.
    fn validate_snapshot(&self, bytes: &[u8]) -> Option<Recovered> {
        if bytes.len() < SNAP_MAGIC.len() + 4 || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
            return None;
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().ok()?);
        if crc32(body) != stored {
            return None;
        }
        let mut d = Dec::new(&body[SNAP_MAGIC.len()..]);
        let engine = d.str().ok()?;
        let fingerprint = d.u64().ok()?;
        if engine != self.engine || fingerprint != self.fingerprint {
            return None;
        }
        let mut rec = take_header(&mut d).ok()?;
        rec.payload = d.bytes().ok()?.to_vec();
        d.done().then_some(rec)
    }

    /// Replay the valid prefix of a WAL against `base`; returns the
    /// resulting state and the byte length of the valid prefix.
    fn replay_wal(&mut self, mut base: Recovered, log: &[u8]) -> (Recovered, u64) {
        let mut offset = 0usize;
        let mut replayed = 0u64;
        loop {
            let rest = &log[offset..];
            if rest.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            if rest.len() < 4 + len + 4 {
                break; // torn tail
            }
            let body = &rest[4..4 + len];
            let stored = u32::from_le_bytes(rest[4 + len..4 + len + 4].try_into().expect("4"));
            if crc32(body) != stored {
                break; // corrupt record
            }
            let mut d = Dec::new(body);
            let Ok(kind) = d.u8() else { break };
            let Ok(mut rec) = take_header(&mut d) else {
                break;
            };
            if rec.round <= base.round {
                break; // non-monotone: not a continuation of this state
            }
            match kind {
                REC_BYTE_DELTA => {
                    // one engine drives one WAL with one commit kind; a
                    // byte delta after engine deltas would apply against
                    // a stale base, so treat the mix as a corrupt tail
                    if !base.deltas.is_empty() {
                        break;
                    }
                    let (Ok(prefix), Ok(suffix)) = (d.u64(), d.u64()) else {
                        break;
                    };
                    let Ok(mid) = d.bytes() else { break };
                    if !d.done() {
                        break;
                    }
                    let Some(payload) =
                        apply_delta(&base.payload, prefix as usize, suffix as usize, mid)
                    else {
                        break;
                    };
                    rec.payload = payload;
                }
                REC_ENGINE_DELTA => {
                    let Ok(dp) = d.bytes() else { break };
                    if !d.done() {
                        break;
                    }
                    // the snapshot payload rides along unchanged; the
                    // engine folds the accumulated deltas itself
                    rec.payload = std::mem::take(&mut base.payload);
                    rec.deltas = std::mem::take(&mut base.deltas);
                    rec.deltas.push(dp.to_vec());
                }
                _ => break, // unknown kind: corrupt tail
            }
            base = rec;
            offset += 4 + len + 4;
            replayed += 1;
        }
        self.since_snap = replayed;
        (base, offset as u64)
    }

    /// True when the monotonicity invariant admits committing `round`.
    fn precheck(&mut self, round: u64) -> bool {
        if self.poisoned {
            return false;
        }
        if let Some(last) = self.last_round {
            if round <= last {
                self.poison(
                    "commit",
                    &format!("non-monotone round {round} after {last}"),
                );
                return false;
            }
        }
        true
    }

    /// True when the next commit must roll a fresh snapshot/WAL pair.
    fn snapshot_due(&self) -> bool {
        self.wal.is_none() || self.since_snap + 1 >= self.every
    }

    /// Persist one completed round whose `payload` is the **complete**
    /// serialized state. Every `every`-th commit (and the first) writes
    /// a full snapshot atomically and starts a fresh WAL; the rest
    /// append a byte-delta record against the previous payload. Never
    /// fails the run: errors poison the session and evaluation continues
    /// unprotected.
    pub fn commit(&mut self, rc: &RoundCkpt) {
        if !self.precheck(rc.round) {
            return;
        }
        if self.snapshot_due() {
            self.commit_snapshot(rc);
        } else {
            self.append_wal(rc);
        }
        if !self.poisoned {
            self.prev_payload = rc.payload.clone();
            self.last_round = Some(rc.round);
        }
    }

    /// Persist one completed round whose `payload` is an **engine-level
    /// delta** — just what changed this round, in a format only the
    /// engine understands. On snapshot rounds the session calls `full`
    /// for the complete state instead; in between it appends the small
    /// delta as-is, so a cheap round costs O(delta), not O(state).
    /// Recovery hands the deltas back on [`Recovered::deltas`] for the
    /// engine to fold. A session must stick to one commit kind for its
    /// whole run.
    pub fn commit_delta(&mut self, rc: &RoundCkpt, full: impl FnOnce() -> Vec<u8>) {
        if !self.precheck(rc.round) {
            return;
        }
        if self.snapshot_due() {
            self.commit_snapshot_with(rc, &full());
        } else {
            self.append_wal_engine_delta(rc);
        }
        if !self.poisoned {
            self.last_round = Some(rc.round);
        }
    }

    fn commit_snapshot(&mut self, rc: &RoundCkpt) {
        self.commit_snapshot_with(rc, &rc.payload);
    }

    /// Write the snapshot for `rc`'s round with an explicit `payload`
    /// (the complete state — for [`Session::commit_delta`] sessions the
    /// round's `rc.payload` only holds the delta).
    fn commit_snapshot_with(&mut self, rc: &RoundCkpt, payload: &[u8]) {
        let mut e = Enc::new();
        e.put_str(&self.engine);
        e.put_u64(self.fingerprint);
        put_header(&mut e, rc);
        e.put_bytes(payload);
        let body = e.finish();
        let mut framed = Vec::with_capacity(SNAP_MAGIC.len() + body.len() + 4);
        framed.extend_from_slice(SNAP_MAGIC);
        framed.extend_from_slice(&body);
        let crc = crc32(&framed);
        framed.extend_from_slice(&crc.to_le_bytes());

        let tmp = self.dir.join(format!("tmp-snap-{:020}", rc.round));
        let sync = self.sync == SyncMode::Full;
        let write = (|| -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&framed)?;
            if sync {
                f.sync_all()?;
            }
            fs::rename(&tmp, snap_path(&self.dir, rc.round))?;
            if sync {
                sync_dir(&self.dir);
            }
            let wal = File::create(wal_path(&self.dir, rc.round))?;
            if sync {
                wal.sync_all()?;
            }
            self.wal = Some(
                OpenOptions::new()
                    .append(true)
                    .open(wal_path(&self.dir, rc.round))?,
            );
            Ok(())
        })();
        if let Err(err) = write {
            let _ = fs::remove_file(&tmp);
            self.poison("snapshot", &err);
            return;
        }
        // the new pair is durable; older pairs are now garbage
        let old_snap = self.snap_round;
        if old_snap != rc.round {
            let _ = fs::remove_file(snap_path(&self.dir, old_snap));
            let _ = fs::remove_file(wal_path(&self.dir, old_snap));
        }
        self.snap_round = rc.round;
        self.since_snap = 0;
    }

    fn append_wal(&mut self, rc: &RoundCkpt) {
        let (prefix, suffix, mid) = byte_delta(&self.prev_payload, &rc.payload);
        let mut e = Enc::new();
        e.put_u8(REC_BYTE_DELTA);
        put_header(&mut e, rc);
        e.put_u64(prefix as u64);
        e.put_u64(suffix as u64);
        e.put_bytes(mid);
        self.append_record(e.finish());
    }

    fn append_wal_engine_delta(&mut self, rc: &RoundCkpt) {
        let mut e = Enc::new();
        e.put_u8(REC_ENGINE_DELTA);
        put_header(&mut e, rc);
        e.put_bytes(&rc.payload);
        self.append_record(e.finish());
    }

    /// Frame (`[len][body][crc32(body)]`), chaos-damage if armed, and
    /// append one WAL record.
    fn append_record(&mut self, body: Vec<u8>) {
        let mut framed = Vec::with_capacity(body.len() + 8);
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        let crc = crc32(&body);
        framed.extend_from_slice(&body);
        framed.extend_from_slice(&crc.to_le_bytes());

        self.appends += 1;
        let mut die_after_write = false;
        match self.chaos {
            Some(Chaos::TornWrite { record, keep_bytes }) if record == self.appends => {
                framed.truncate(keep_bytes.min(framed.len()));
                die_after_write = true;
            }
            Some(Chaos::FlipByte { record, offset }) if record == self.appends => {
                let at = offset.min(framed.len().saturating_sub(1));
                if let Some(b) = framed.get_mut(at) {
                    *b ^= 0x40;
                }
                die_after_write = true;
            }
            _ => {}
        }

        let Some(wal) = self.wal.as_mut() else {
            self.poison("wal append", &"no open WAL");
            return;
        };
        let mut write = wal.write_all(&framed);
        if write.is_ok() && self.sync == SyncMode::Full {
            write = wal.sync_data();
        }
        if let Err(err) = write {
            self.poison("wal append", &err);
            return;
        }
        if die_after_write {
            // simulate the process dying mid-write: nothing after this
            // record ever reaches the disk
            self.poison("chaos injection", &"simulated crash");
            return;
        }
        self.since_snap += 1;
    }

    /// The run completed: clear the directory so a later fresh run of
    /// the same computation starts from scratch instead of "resuming" a
    /// finished one.
    pub fn finish(&mut self) {
        if self.poisoned {
            return;
        }
        self.wal = None;
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("uset-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn rc(round: u64, payload: &[u8]) -> RoundCkpt {
        RoundCkpt {
            round,
            stats: EvalStats {
                rounds: round,
                rules_fired: round * 2,
                tuples_derived: round * 3,
                index_probes: 0,
                scan_fallbacks: 0,
                peak_facts: payload.len(),
                ..EvalStats::default()
            },
            steps: round,
            facts: round * 10,
            ticks: round * 11,
            value_hwm: 7,
            elapsed_micros: round * 1000,
            payload: payload.to_vec(),
        }
    }

    fn payload_for(round: u64) -> Vec<u8> {
        // shared prefix/suffix with per-round middle, exercising deltas
        let mut p = vec![0xAA; 32];
        p.extend_from_slice(&round.to_le_bytes());
        p.extend_from_slice(&[0xBB; 32]);
        p
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(Spec::parse("").unwrap(), None);
        assert_eq!(Spec::parse("off").unwrap(), None);
        let s = Spec::parse("dir:/tmp/x").unwrap().unwrap();
        assert_eq!(s.dir, PathBuf::from("/tmp/x"));
        assert_eq!(s.every, DEFAULT_EVERY);
        let s = Spec::parse("dir:/tmp/x,every=4").unwrap().unwrap();
        assert_eq!(s.every, 4);
        assert_eq!(s.sync, SyncMode::Normal);
        let s = Spec::parse("dir:/tmp/x,every=4,sync=full")
            .unwrap()
            .unwrap();
        assert_eq!(s.every, 4);
        assert_eq!(s.sync, SyncMode::Full);
        let s = Spec::parse("dir:/tmp/x,sync=full").unwrap().unwrap();
        assert_eq!(s.dir, PathBuf::from("/tmp/x"));
        assert_eq!(s.sync, SyncMode::Full);
        let s = Spec::parse("dir:/tmp/x,sync=normal").unwrap().unwrap();
        assert_eq!(s.sync, SyncMode::Normal);
        // a comma that is not an option stays part of the path
        let s = Spec::parse("dir:/tmp/a,b,every=2").unwrap().unwrap();
        assert_eq!(s.dir, PathBuf::from("/tmp/a,b"));
        assert_eq!(s.every, 2);
        assert!(Spec::parse("dir:").is_err());
        assert!(Spec::parse("dir:/x,every=0").is_err());
        assert!(Spec::parse("dir:/x,sync=paranoid").is_err());
        assert!(Spec::parse("nonsense").is_err());
    }

    #[test]
    fn byte_delta_roundtrips() {
        let cases: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (vec![], vec![]),
            (vec![], vec![1, 2, 3]),
            (vec![1, 2, 3], vec![]),
            (vec![1, 2, 3, 4], vec![1, 2, 9, 4]),
            (vec![1, 2, 3], vec![1, 2, 3]),
            (vec![5, 5, 5, 5], vec![5, 5]),
            (vec![5, 5], vec![5, 5, 5, 5]),
        ];
        for (old, new) in cases {
            let (p, s, mid) = byte_delta(&old, &new);
            let back = apply_delta(&old, p, s, mid).unwrap();
            assert_eq!(back, new, "old={old:?} new={new:?}");
        }
    }

    #[test]
    fn commit_recover_roundtrip_across_snapshots_and_wal() {
        let dir = tmpdir("roundtrip");
        let spec = Spec::new(&dir).with_every(4);
        let mut s = Session::open(&spec, "datalog", 42).unwrap();
        assert!(s.recover().is_none(), "fresh dir has nothing to recover");
        for round in 1..=10 {
            s.commit(&rc(round, &payload_for(round)));
            assert!(!s.is_poisoned());
            // a brand-new session (fresh process) must recover exactly
            // this round
            let mut r = Session::open(&spec, "datalog", 42).unwrap();
            let got = r.recover().expect("recoverable");
            assert_eq!(got.round, round);
            assert_eq!(got.payload, payload_for(round));
            assert_eq!(got.stats.rules_fired, round * 2);
            assert_eq!(got.facts, round * 10);
            assert_eq!(got.elapsed_micros, round * 1000);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_session_continues_committing() {
        let dir = tmpdir("continue");
        let spec = Spec::new(&dir).with_every(3);
        let mut s = Session::open(&spec, "col", 7).unwrap();
        for round in 1..=5 {
            s.commit(&rc(round, &payload_for(round)));
        }
        drop(s);
        let mut s2 = Session::open(&spec, "col", 7).unwrap();
        assert_eq!(s2.recover().unwrap().round, 5);
        for round in 6..=9 {
            s2.commit(&rc(round, &payload_for(round)));
        }
        let mut s3 = Session::open(&spec, "col", 7).unwrap();
        assert_eq!(s3.recover().unwrap().round, 9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_and_engine_mismatches_never_resume() {
        let dir = tmpdir("fingerprint");
        let spec = Spec::new(&dir);
        let mut s = Session::open(&spec, "datalog", 1).unwrap();
        s.commit(&rc(1, b"state"));
        // different computation, same engine: no resume
        let mut other = Session::open(&spec, "datalog", 2).unwrap();
        assert!(other.recover().is_none());
        // same fingerprint, different engine: separate subdir, no resume
        let mut eng = Session::open(&spec, "col", 1).unwrap();
        assert!(eng.recover().is_none());
        // the original still recovers
        let mut same = Session::open(&spec, "datalog", 1).unwrap();
        assert_eq!(same.recover().unwrap().round, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_byte_of_the_last_wal_record_rolls_back() {
        let dir = tmpdir("torn");
        let spec = Spec::new(&dir).with_every(100);
        let mut s = Session::open(&spec, "bk", 9).unwrap();
        for round in 1..=3 {
            s.commit(&rc(round, &payload_for(round)));
        }
        let wal = wal_path(&s.dir, 1);
        let full = fs::read(&wal).unwrap();
        // round 1 is the snapshot; the WAL holds rounds 2 and 3, so the
        // last record starts where record 1 (round 2) ends
        let rec1_len = u32::from_le_bytes(full[..4].try_into().unwrap()) as usize + 8;
        let last_start = rec1_len;
        assert!(last_start < full.len());
        for cut in last_start..full.len() {
            fs::write(&wal, &full[..cut]).unwrap();
            let mut r = Session::open(&spec, "bk", 9).unwrap();
            let got = r.recover().expect("snapshot+valid prefix still recover");
            assert_eq!(got.round, 2, "cut at {cut} must roll back to round 2");
            assert_eq!(got.payload, payload_for(2));
        }
        // untruncated recovers the full round 3
        fs::write(&wal, &full).unwrap();
        let mut r = Session::open(&spec, "bk", 9).unwrap();
        assert_eq!(r.recover().unwrap().round, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_bit_flips_in_any_record_are_detected() {
        let dir = tmpdir("flip");
        let spec = Spec::new(&dir).with_every(100);
        let mut s = Session::open(&spec, "gtm", 3).unwrap();
        for round in 1..=3 {
            s.commit(&rc(round, &payload_for(round)));
        }
        let wal = wal_path(&s.dir, 1);
        let full = fs::read(&wal).unwrap();
        // flip one byte in each framed record; recovery must never
        // surface a state that embeds the corruption
        let rec1_len = u32::from_le_bytes(full[..4].try_into().unwrap()) as usize + 8;
        for &offset in &[5usize, rec1_len / 2, rec1_len + 5, full.len() - 1] {
            let mut bad = full.clone();
            bad[offset] ^= 0x01;
            fs::write(&wal, &bad).unwrap();
            let mut r = Session::open(&spec, "gtm", 3).unwrap();
            if let Some(got) = r.recover() {
                // recovery may legitimately return an *earlier* valid
                // round, but never a corrupted payload
                assert!(got.round < 3 || got.payload == payload_for(got.round));
                assert!((1..=3).contains(&got.round));
                assert_eq!(got.payload, payload_for(got.round));
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_falls_back_or_starts_fresh() {
        let dir = tmpdir("snapcorrupt");
        let spec = Spec::new(&dir).with_every(2);
        let mut s = Session::open(&spec, "algebra", 5).unwrap();
        for round in 1..=4 {
            // every=2 → snapshots at rounds 1 and 3 (commits 1 and 3)
            s.commit(&rc(round, &payload_for(round)));
        }
        // corrupt the live snapshot; only one pair is retained, so
        // recovery must refuse it and start fresh — never load it
        let snap = snap_path(&s.dir, 3);
        let mut bytes = fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&snap, &bytes).unwrap();
        let mut r = Session::open(&spec, "algebra", 5).unwrap();
        assert!(r.recover().is_none(), "corrupt snapshot must not load");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_torn_write_dies_and_recovers_to_previous_round() {
        let dir = tmpdir("chaos-torn");
        let spec = Spec::new(&dir).with_every(100);
        let mut s = Session::open(&spec, "calculus", 1)
            .unwrap()
            .with_chaos(Chaos::TornWrite {
                record: 2,
                keep_bytes: 7,
            });
        s.commit(&rc(1, &payload_for(1))); // snapshot
        s.commit(&rc(2, &payload_for(2))); // wal record 1, intact
        s.commit(&rc(3, &payload_for(3))); // wal record 2, torn + death
        assert!(s.is_poisoned());
        s.commit(&rc(4, &payload_for(4))); // ignored: the process is "dead"
        let mut r = Session::open(&spec, "calculus", 1).unwrap();
        let got = r.recover().unwrap();
        assert_eq!(got.round, 2);
        assert_eq!(got.payload, payload_for(2));
        // and the truncated tail was discarded: committing after
        // recovery yields a clean round 3
        r.commit(&rc(3, &payload_for(3)));
        let mut r2 = Session::open(&spec, "calculus", 1).unwrap();
        assert_eq!(r2.recover().unwrap().round, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_flip_byte_dies_and_recovery_rejects_the_record() {
        let dir = tmpdir("chaos-flip");
        let spec = Spec::new(&dir).with_every(100);
        let mut s = Session::open(&spec, "datalog", 1)
            .unwrap()
            .with_chaos(Chaos::FlipByte {
                record: 1,
                offset: 10,
            });
        s.commit(&rc(1, &payload_for(1))); // snapshot
        s.commit(&rc(2, &payload_for(2))); // wal record 1, corrupted + death
        assert!(s.is_poisoned());
        let mut r = Session::open(&spec, "datalog", 1).unwrap();
        let got = r.recover().unwrap();
        assert_eq!(got.round, 1, "corrupt record must be rejected");
        assert_eq!(got.payload, payload_for(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_clears_the_directory() {
        let dir = tmpdir("finish");
        let spec = Spec::new(&dir);
        let mut s = Session::open(&spec, "datalog", 1).unwrap();
        s.commit(&rc(1, b"x"));
        s.finish();
        let mut r = Session::open(&spec, "datalog", 1).unwrap();
        assert!(r.recover().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_delta_recovers_snapshot_plus_delta_suffix() {
        let dir = tmpdir("engine-delta");
        let spec = Spec::new(&dir).with_every(4);
        let mut s = Session::open(&spec, "datalog", 9).unwrap();
        // the "full" payload is the concatenation of all deltas so far,
        // which lets the test check the fold inputs exactly
        let mut full: Vec<u8> = Vec::new();
        let mut snapshots = 0;
        for round in 1..=10u64 {
            let delta = vec![round as u8; 3];
            full.extend_from_slice(&delta);
            let snap = full.clone();
            let mut called = false;
            s.commit_delta(&rc(round, &delta), || {
                called = true;
                snap
            });
            if called {
                snapshots += 1;
            }
            assert!(!s.is_poisoned());

            let mut rec_s = Session::open(&spec, "datalog", 9).unwrap();
            let got = rec_s.recover().expect("recoverable");
            assert_eq!(got.round, round);
            assert_eq!(got.stats.rules_fired, round * 2);
            // snapshot payload ++ recovered deltas == the full state
            let mut folded = got.payload.clone();
            for d in &got.deltas {
                folded.extend_from_slice(d);
            }
            assert_eq!(folded, full, "round {round}");
        }
        // every=4 over 10 commits: snapshots at rounds 1, 5, 9
        assert_eq!(snapshots, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_delta_session_continues_after_recovery() {
        let dir = tmpdir("engine-delta-continue");
        let spec = Spec::new(&dir).with_every(3);
        let mut s = Session::open(&spec, "datalog", 4).unwrap();
        for round in 1..=4u64 {
            s.commit_delta(&rc(round, &[round as u8]), || vec![0xF0, round as u8]);
        }
        drop(s);
        let mut s2 = Session::open(&spec, "datalog", 4).unwrap();
        let got = s2.recover().unwrap();
        assert_eq!(got.round, 4);
        assert_eq!(got.payload, vec![0xF0, 4u8], "round 4 rolled a snapshot");
        assert!(got.deltas.is_empty());
        for round in 5..=6u64 {
            s2.commit_delta(&rc(round, &[round as u8]), || vec![0xF0, round as u8]);
        }
        let mut s3 = Session::open(&spec, "datalog", 4).unwrap();
        let got = s3.recover().unwrap();
        assert_eq!(got.round, 6);
        assert_eq!(got.payload, vec![0xF0, 4u8]);
        assert_eq!(got.deltas, vec![vec![5u8], vec![6u8]]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_engine_delta_record_rolls_back_to_previous_round() {
        let dir = tmpdir("engine-delta-torn");
        let spec = Spec::new(&dir).with_every(100);
        let mut s = Session::open(&spec, "datalog", 2)
            .unwrap()
            .with_chaos(Chaos::TornWrite {
                record: 2,
                keep_bytes: 9,
            });
        s.commit_delta(&rc(1, &[1]), || vec![0xAA]); // snapshot
        s.commit_delta(&rc(2, &[2]), || unreachable!()); // intact record
        s.commit_delta(&rc(3, &[3]), || unreachable!()); // torn + death
        assert!(s.is_poisoned());
        let mut r = Session::open(&spec, "datalog", 2).unwrap();
        let got = r.recover().unwrap();
        assert_eq!(got.round, 2);
        assert_eq!(got.payload, vec![0xAA]);
        assert_eq!(got.deltas, vec![vec![2u8]]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_full_mode_commits_and_recovers_identically() {
        let dir = tmpdir("sync-full");
        let spec = Spec::new(&dir).with_every(2).with_sync(SyncMode::Full);
        let mut s = Session::open(&spec, "datalog", 8).unwrap();
        for round in 1..=5 {
            s.commit(&rc(round, &payload_for(round)));
            assert!(!s.is_poisoned());
        }
        let mut r = Session::open(&spec, "datalog", 8).unwrap();
        let got = r.recover().unwrap();
        assert_eq!(got.round, 5);
        assert_eq!(got.payload, payload_for(5));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_monotone_commit_poisons_instead_of_corrupting() {
        let dir = tmpdir("monotone");
        let spec = Spec::new(&dir);
        let mut s = Session::open(&spec, "datalog", 1).unwrap();
        s.commit(&rc(5, b"five"));
        s.commit(&rc(5, b"again"));
        assert!(s.is_poisoned());
        let mut r = Session::open(&spec, "datalog", 1).unwrap();
        assert_eq!(r.recover().unwrap().round, 5);
        let _ = fs::remove_dir_all(&dir);
    }
}
