//! Deterministic byte codec for checkpoint payloads.
//!
//! Everything a checkpoint stores is reduced to bytes through this module
//! so the durability layer ([`crate::Session`]) can stay agnostic of what
//! it persists. Two properties matter more than compactness:
//!
//! 1. **Determinism** — the same logical state encodes to the same bytes
//!    in every process. All engine states are ordered containers
//!    (`BTreeMap`/`BTreeSet`), so iteration order is canonical; the only
//!    hazard is [`Atom`]: named atoms carry *process-local* interner ids
//!    assigned in first-use order, so they are encoded **by name** and
//!    re-interned on decode. Anonymous (invented) atoms are encoded by
//!    raw id, which is stable because invention is deterministic.
//! 2. **Fail-closed decoding** — a decoder never panics and never reads
//!    past its input; every malformed prefix surfaces as a
//!    [`CodecError`]. Corruption is normally caught by the record CRC
//!    first, but the decoder is the second line of defense.
//!
//! Integers are fixed-width little-endian (`u64`), strings and byte
//! blobs are length-prefixed. No varints: the payloads are dwarfed by
//! the states they encode, and fixed widths keep torn-record detection
//! trivial.

//! **Structural sharing** (PR 10): when the `USET_INTERN` layer is on,
//! an encoder deduplicates repeated subtrees — the first occurrence of a
//! large node (structural size ≥ [`SHARE_MIN_SIZE`]) is written in full
//! and assigned the next *post-order sequence number*; later occurrences
//! write tag 3 + that number. The numbering depends only on structural
//! content and encode order (pool ids are **never** written), so the
//! bytes stay deterministic across processes and parallel widths.
//! Decoders always accept tag 3 regardless of the knob, so payloads are
//! knob-portable; with the knob off an encoder emits exactly the
//! pre-sharing byte stream.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use uset_object::intern::{self, FxBuildHasher};
use uset_object::{Atom, Database, EvalStats, Instance, ObjRef, Pool, Value};

/// Minimum structural size ([`Value::size`]) for a subtree to join the
/// sharing table. Small nodes (atoms, short flat tuples) cost more to
/// track than a backref saves, and keeping the table sparse bounds the
/// decoder's bookkeeping.
const SHARE_MIN_SIZE: u64 = 8;

/// A decoding failure: offset and a static description of what was
/// expected. The byte offset points at the first unreadable position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset at which decoding failed.
    pub at: usize,
    /// What the decoder was trying to read.
    pub expected: &'static str,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint decode: {} at byte {}",
            self.expected, self.at
        )
    }
}

impl std::error::Error for CodecError {}

/// Byte-appending encoder. All `put_*` methods are infallible.
#[derive(Debug)]
pub struct Enc {
    buf: Vec<u8>,
    /// Subtree-sharing table, present iff interning was on when this
    /// encoder was created (snapshotted once so a mid-encode knob flip
    /// cannot produce a mixed stream). Maps pool id → post-order
    /// sequence number of the node's first occurrence in this stream.
    share: Option<HashMap<ObjRef, u64, FxBuildHasher>>,
}

impl Default for Enc {
    fn default() -> Enc {
        Enc {
            buf: Vec::new(),
            share: intern::enabled().then(HashMap::default),
        }
    }
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Take the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Fixed-width little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` widened to u64.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// An [`Atom`]: named atoms by name (process-portable), anonymous
    /// atoms by raw id.
    pub fn put_atom(&mut self, a: Atom) {
        match a.name() {
            Some(name) => {
                self.put_u8(1);
                self.put_str(&name);
            }
            None => {
                self.put_u8(0);
                self.put_u64(a.id());
            }
        }
    }

    /// A [`Value`] tree (a DAG on the wire when sharing is on).
    pub fn put_value(&mut self, v: &Value) {
        if self.share.is_some() {
            self.put_value_shared(v);
        } else {
            self.put_value_plain(v);
        }
    }

    /// The pre-sharing encoding: a pure tree walk, byte-for-byte the
    /// `USET_INTERN=off` stream.
    fn put_value_plain(&mut self, v: &Value) {
        match v {
            Value::Atom(a) => {
                self.put_u8(0);
                self.put_atom(*a);
            }
            Value::Tuple(items) => {
                self.put_u8(1);
                self.put_usize(items.len());
                for item in items {
                    self.put_value_plain(item);
                }
            }
            Value::Set(items) => {
                self.put_u8(2);
                self.put_usize(items.len());
                for item in items {
                    self.put_value_plain(item);
                }
            }
        }
    }

    /// Sharing encoding: each distinct subtree of size ≥
    /// [`SHARE_MIN_SIZE`] is written once; repeats become tag-3
    /// backrefs to its post-order sequence number.
    fn put_value_shared(&mut self, v: &Value) {
        let pool = Pool::global();
        let id = pool.intern(v);
        let shareable = pool.meta(id).size >= SHARE_MIN_SIZE;
        if shareable {
            let table = self.share.as_ref().expect("shared path implies table");
            if let Some(&seq) = table.get(&id) {
                self.put_u8(3);
                self.put_u64(seq);
                return;
            }
        }
        match v {
            Value::Atom(a) => {
                self.put_u8(0);
                self.put_atom(*a);
            }
            Value::Tuple(items) => {
                self.put_u8(1);
                self.put_usize(items.len());
                for item in items {
                    self.put_value_shared(item);
                }
            }
            Value::Set(items) => {
                self.put_u8(2);
                self.put_usize(items.len());
                for item in items {
                    self.put_value_shared(item);
                }
            }
        }
        if shareable {
            // Post-order numbering: children (encoded just above) took
            // earlier numbers, exactly mirroring the decoder, which can
            // only record a node after constructing it.
            let table = self.share.as_mut().expect("shared path implies table");
            let seq = table.len() as u64;
            table.insert(id, seq);
        }
    }

    /// An [`Instance`] (ordered set of values).
    pub fn put_instance(&mut self, inst: &Instance) {
        self.put_usize(inst.len());
        for v in inst.iter() {
            self.put_value(v);
        }
    }

    /// A whole [`Database`] (ordered relation name → instance map).
    pub fn put_database(&mut self, db: &Database) {
        let rels: Vec<_> = db.iter().collect();
        self.put_usize(rels.len());
        for (name, inst) in rels {
            self.put_str(name);
            self.put_instance(inst);
        }
    }

    /// A name → instance map (the shape of strata deltas and algebra
    /// environments).
    pub fn put_instance_map(&mut self, m: &BTreeMap<String, Instance>) {
        self.put_usize(m.len());
        for (name, inst) in m {
            self.put_str(name);
            self.put_instance(inst);
        }
    }

    /// [`EvalStats`] work counters.
    pub fn put_stats(&mut self, s: &EvalStats) {
        self.put_u64(s.rounds);
        self.put_u64(s.rules_fired);
        self.put_u64(s.tuples_derived);
        self.put_u64(s.index_probes);
        self.put_u64(s.scan_fallbacks);
        self.put_usize(s.peak_facts);
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    b: &'a [u8],
    i: usize,
    /// Decoded subtrees of size ≥ [`SHARE_MIN_SIZE`] in post-order —
    /// the mirror of the encoder's sharing table, maintained
    /// unconditionally so any decoder accepts tag-3 backrefs no matter
    /// which knob setting wrote the payload.
    seen: Vec<Value>,
}

impl<'a> Dec<'a> {
    /// Decoder over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec {
            b: bytes,
            i: 0,
            seen: Vec::new(),
        }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.i
    }

    /// True when every byte was consumed (complete decodes should end
    /// here; trailing garbage means a mismatched payload).
    pub fn done(&self) -> bool {
        self.i == self.b.len()
    }

    fn err(&self, expected: &'static str) -> CodecError {
        CodecError {
            at: self.i,
            expected,
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self.i.checked_add(n).ok_or_else(|| self.err(what))?;
        if end > self.b.len() {
            return Err(self.err(what));
        }
        let s = &self.b[self.i..end];
        self.i = end;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Fixed-width little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// A u64 narrowed to usize, rejecting values that cannot fit (or are
    /// implausibly larger than the remaining input, which catches
    /// corrupted length prefixes before they drive huge allocations).
    pub fn len_prefix(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        let n = usize::try_from(v).map_err(|_| self.err("length prefix"))?;
        // any honest length-prefixed collection needs ≥1 byte per element
        if n > self.b.len() - self.i.min(self.b.len()) {
            return Err(self.err("length prefix"));
        }
        Ok(n)
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.len_prefix()?;
        self.take(n, "bytes")
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| self.err("utf-8 string"))
    }

    /// An [`Atom`]; named atoms are re-interned in this process.
    pub fn atom(&mut self) -> Result<Atom, CodecError> {
        match self.u8()? {
            1 => Ok(Atom::named(&self.str()?)),
            0 => Ok(Atom::from_raw(self.u64()?)),
            _ => Err(self.err("atom tag")),
        }
    }

    /// Record a constructed node in the sharing table iff the encoder
    /// would have (same size criterion, same post-order) — keeping both
    /// numberings aligned without any table data on the wire.
    fn record_shared(&mut self, v: &Value) {
        if v.size() as u64 >= SHARE_MIN_SIZE {
            self.seen.push(v.clone());
        }
    }

    /// A [`Value`] tree (or DAG via tag-3 backrefs).
    pub fn value(&mut self) -> Result<Value, CodecError> {
        match self.u8()? {
            0 => Ok(Value::Atom(self.atom()?)),
            1 => {
                let n = self.len_prefix()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                let v = Value::Tuple(items);
                self.record_shared(&v);
                Ok(v)
            }
            2 => {
                let n = self.len_prefix()?;
                let mut items = BTreeSet::new();
                for _ in 0..n {
                    items.insert(self.value()?);
                }
                let v = Value::Set(items);
                self.record_shared(&v);
                Ok(v)
            }
            3 => {
                // A backref resolves to an already-decoded subtree; it
                // is *not* re-recorded (the encoder inserts each node
                // only once). An out-of-range number is corruption.
                let seq = self.u64()?;
                usize::try_from(seq)
                    .ok()
                    .and_then(|k| self.seen.get(k).cloned())
                    .ok_or_else(|| self.err("backref"))
            }
            _ => Err(self.err("value tag")),
        }
    }

    /// An [`Instance`].
    pub fn instance(&mut self) -> Result<Instance, CodecError> {
        let n = self.len_prefix()?;
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(self.value()?);
        }
        Ok(Instance::from_values(vals))
    }

    /// A [`Database`].
    pub fn database(&mut self) -> Result<Database, CodecError> {
        let n = self.len_prefix()?;
        let mut db = Database::empty();
        for _ in 0..n {
            let name = self.str()?;
            let inst = self.instance()?;
            db.set(&name, inst);
        }
        Ok(db)
    }

    /// A name → instance map.
    pub fn instance_map(&mut self) -> Result<BTreeMap<String, Instance>, CodecError> {
        let n = self.len_prefix()?;
        let mut m = BTreeMap::new();
        for _ in 0..n {
            let name = self.str()?;
            let inst = self.instance()?;
            m.insert(name, inst);
        }
        Ok(m)
    }

    /// [`EvalStats`] work counters. Only the six work counters are
    /// persisted: the advisory `intern_*` attribution legitimately
    /// differs between a killed and a resumed process (the pool
    /// re-warms), so a resumed run reconstructs it as zero.
    pub fn stats(&mut self) -> Result<EvalStats, CodecError> {
        Ok(EvalStats {
            rounds: self.u64()?,
            rules_fired: self.u64()?,
            tuples_derived: self.u64()?,
            index_probes: self.u64()?,
            scan_fallbacks: self.u64()?,
            peak_facts: usize::try_from(self.u64()?).map_err(|_| self.err("peak_facts"))?,
            ..EvalStats::default()
        })
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven, hand-rolled —
/// the durability layer must not pull in an external hash crate. Uses
/// slicing-by-8 so checksumming a snapshot stays well under the commit
/// budget that the `ablation/ckpt_overhead` bench enforces.
pub fn crc32(bytes: &[u8]) -> u32 {
    const T: [[u32; 256]; 8] = crc32_tables();
    let mut crc: u32 = 0xFFFF_FFFF;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(c[4..].try_into().expect("4 bytes"));
        crc = T[7][(lo & 0xFF) as usize]
            ^ T[6][((lo >> 8) & 0xFF) as usize]
            ^ T[5][((lo >> 16) & 0xFF) as usize]
            ^ T[4][(lo >> 24) as usize]
            ^ T[3][(hi & 0xFF) as usize]
            ^ T[2][((hi >> 8) & 0xFF) as usize]
            ^ T[1][((hi >> 16) & 0xFF) as usize]
            ^ T[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ T[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][n] = c;
        n += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut n = 0;
        while n < 256 {
            t[k][n] = (t[k - 1][n] >> 8) ^ t[0][(t[k - 1][n] & 0xFF) as usize];
            n += 1;
        }
        k += 1;
    }
    t
}

/// FNV-1a 64-bit hash — used for run *fingerprints* (does this
/// checkpoint dir belong to the computation now starting?), not for
/// integrity (that is [`crc32`]'s job).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use uset_object::atom;

    #[test]
    fn crc32_known_vectors() {
        // standard IEEE CRC-32 check values
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_sliced_matches_bytewise_reference_at_every_length() {
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc: u32 = 0xFFFF_FFFF;
            for &b in bytes {
                let mut c = (crc ^ b as u32) & 0xFF;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
                crc = (crc >> 8) ^ c;
            }
            !crc
        }
        // a bytewise model double-checks the slicing-by-8 fast path,
        // including every remainder length 0..8
        let data: Vec<u8> = (0u32..64)
            .map(|i| (i.wrapping_mul(37) ^ 0x5A) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn value_roundtrip_including_named_atoms() {
        let v = Value::Set(
            [
                Value::Atom(Atom::named("alpha")),
                Value::Tuple(vec![atom(3), Value::Atom(Atom::named("beta"))]),
                Value::Set([atom(1), atom(2)].into_iter().collect()),
            ]
            .into_iter()
            .collect(),
        );
        let mut e = Enc::new();
        e.put_value(&v);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.value().unwrap(), v);
        assert!(d.done());
    }

    #[test]
    fn database_roundtrip() {
        let mut db = Database::empty();
        db.set(
            "E",
            Instance::from_rows((0..5u64).map(|i| [atom(i), atom(i + 1)])),
        );
        db.set(
            "N",
            Instance::from_values(vec![Value::Atom(Atom::named("x"))]),
        );
        let mut e = Enc::new();
        e.put_database(&db);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.database().unwrap(), db);
        assert!(d.done());
    }

    #[test]
    fn stats_roundtrip() {
        let s = EvalStats {
            rounds: 1,
            rules_fired: 2,
            tuples_derived: 3,
            index_probes: 4,
            scan_fallbacks: 5,
            peak_facts: 6,
            ..EvalStats::default()
        };
        let mut e = Enc::new();
        e.put_stats(&s);
        let bytes = e.finish();
        assert_eq!(Dec::new(&bytes).stats().unwrap(), s);
    }

    #[test]
    fn decoder_rejects_truncation_at_every_boundary() {
        let mut e = Enc::new();
        e.put_value(&Value::Tuple(vec![
            Value::Atom(Atom::named("long-ish-name")),
            atom(7),
        ]));
        let bytes = e.finish();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(d.value().is_err(), "cut at {cut} must not decode");
        }
        // and the full input decodes
        assert!(Dec::new(&bytes).value().is_ok());
    }

    #[test]
    fn decoder_rejects_bad_tags_and_absurd_lengths() {
        let mut d = Dec::new(&[9]);
        assert!(d.value().is_err());
        // a length prefix larger than the remaining input is rejected
        // before any allocation
        let mut e = Enc::new();
        e.put_u64(u64::MAX);
        let bytes = e.finish();
        assert!(Dec::new(&bytes).len_prefix().is_err());
    }

    /// A value whose subtrees repeat (the powerset shape): the shared
    /// encoding must be smaller than the plain one, decode to the same
    /// value through either knob, and the plain stream must be
    /// byte-identical to the pre-sharing format.
    #[test]
    fn shared_encoding_roundtrips_and_dedups() {
        use uset_object::{set, tuple};
        let big = tuple([
            atom(1),
            atom(2),
            atom(3),
            atom(4),
            set([atom(5), atom(6), atom(7)]),
        ]);
        // the same big subtree appears three times
        let v = Value::Set(
            [
                tuple([atom(0), big.clone()]),
                tuple([atom(9), big.clone()]),
                big.clone(),
            ]
            .into_iter()
            .collect(),
        );

        let was = uset_object::intern::enabled();
        uset_object::intern::set_enabled(false);
        let mut plain = Enc::new();
        plain.put_value(&v);
        let plain_bytes = plain.finish();

        uset_object::intern::set_enabled(true);
        let mut shared = Enc::new();
        shared.put_value(&v);
        let shared_bytes = shared.finish();
        uset_object::intern::set_enabled(was);

        assert!(
            shared_bytes.len() < plain_bytes.len(),
            "sharing must shrink a repeat-heavy payload ({} vs {})",
            shared_bytes.len(),
            plain_bytes.len()
        );
        // both streams decode to the same value, with any decoder
        let mut d1 = Dec::new(&plain_bytes);
        assert_eq!(d1.value().unwrap(), v);
        assert!(d1.done());
        let mut d2 = Dec::new(&shared_bytes);
        assert_eq!(d2.value().unwrap(), v);
        assert!(d2.done());
    }

    /// A backref pointing past the table (corruption) fails closed.
    #[test]
    fn decoder_rejects_dangling_backref() {
        let mut e = Enc::new();
        e.put_u8(3);
        e.put_u64(0); // nothing recorded yet: dangling
        let bytes = e.finish();
        assert!(Dec::new(&bytes).value().is_err());
    }

    /// Instances and databases dedup across members/relations too (one
    /// shared table per encoder, not per value).
    #[test]
    fn shared_encoding_spans_containers() {
        use uset_object::set;
        let member = set([
            atom(1),
            atom(2),
            atom(3),
            atom(4),
            atom(5),
            atom(6),
            atom(7),
        ]);
        let inst = Instance::from_values([
            Value::Tuple(vec![atom(1), member.clone()]),
            Value::Tuple(vec![atom(2), member.clone()]),
            Value::Tuple(vec![atom(3), member.clone()]),
        ]);
        let was = uset_object::intern::enabled();
        uset_object::intern::set_enabled(true);
        let mut e = Enc::new();
        e.put_instance(&inst);
        let bytes = e.finish();
        uset_object::intern::set_enabled(false);
        let mut plain = Enc::new();
        plain.put_instance(&inst);
        let plain_bytes = plain.finish();
        uset_object::intern::set_enabled(was);
        assert!(bytes.len() < plain_bytes.len());
        let mut d = Dec::new(&bytes);
        assert_eq!(d.instance().unwrap(), inst);
        assert!(d.done());
    }
}
